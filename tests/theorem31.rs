//! Theorem 3.1 checked on the real workload DAGs (not just synthetic ones):
//! a PDF execution on P cores with a shared ideal cache of size C + P·D
//! incurs at most as many misses as the sequential execution with cache C.

use ccs::prelude::*;
use ccs::sched::theory::{pdf_ideal_misses, sequential_misses, theorem31_capacity};

fn check(comp: &ccs::dag::Computation, c_lines: u64, cores: usize) {
    let m1 = sequential_misses(comp, c_lines);
    let cp = theorem31_capacity(comp, c_lines, cores);
    let mp = pdf_ideal_misses(comp, cores, cp);
    assert!(
        mp <= m1,
        "PDF misses {mp} exceed sequential misses {m1} (P={cores}, C={c_lines} lines)"
    );
}

#[test]
fn theorem31_holds_for_mergesort() {
    let comp = ccs::workloads::mergesort::build(
        &MergesortParams::new(1 << 13).with_task_working_set(4 * 1024),
    );
    for cores in [2usize, 4] {
        check(&comp, 64, cores);
    }
}

#[test]
fn theorem31_holds_for_hashjoin() {
    let comp = ccs::workloads::hashjoin::build(&HashJoinParams {
        build_bytes: 128 * 1024,
        sub_partition_bytes: 32 * 1024,
        probe_tasks_per_subpartition: 4,
        ..HashJoinParams::new(128 * 1024)
    });
    check(&comp, 128, 4);
}

#[test]
fn theorem31_holds_for_lu() {
    let comp = ccs::workloads::lu::build(&LuParams::new(128).with_block(32));
    check(&comp, 256, 4);
}

#[test]
fn mergesort_miss_model_matches_simulation_shape() {
    // The Section 3 model says PDF misses ≈ (N/B)·log2(N/C_P): check the
    // simulated sequential misses sit within a factor of ~2.5 of the model
    // (the generator's copy-back pass adds a constant factor).
    use ccs::sched::theory::MergesortModel;
    let n_items = 1u64 << 14;
    let comp = ccs::workloads::mergesort::build(
        &MergesortParams::new(n_items).with_task_working_set(2 * 1024),
    );
    let cache_bytes = 8 * 1024u64;
    let m = sequential_misses(&comp, cache_bytes / 128);
    let model = MergesortModel {
        n_items,
        item_bytes: 4,
        line_bytes: 128,
    }
    .misses_with_cache(cache_bytes);
    let ratio = m as f64 / model;
    assert!(
        ratio > 0.5 && ratio < 4.0,
        "simulated {m} vs model {model:.0}: ratio {ratio}"
    );
}
