//! Trace-pool equivalence: the flat structure-of-arrays arena must replay
//! the exact `(pre_compute, addr, size, kind)` sequence of the legacy
//! per-task `TaskTrace` representation, for every registered workload and
//! for arbitrary builder call sequences; and the CSR `Dag` adjacency must
//! equal an independently built nested-list adjacency.

use ccs_dag::synth::{random_computation, SynthParams};
use ccs_dag::{
    AccessKind, Computation, ComputationBuilder, Dag, GroupMeta, MemRef, SpKind, TaskId,
    TraceBuilder, STEP_ID_MASK, STEP_WRITE_BIT,
};
use ccs_workloads::{BuildCtx, WorkloadRegistry};
use proptest::prelude::*;

/// Every op of every task, flattened in task-id order, as plain tuples.
fn pooled_sequence(comp: &Computation) -> Vec<(u32, u64, u32, bool)> {
    (0..comp.num_tasks() as u32)
        .flat_map(|t| {
            comp.trace(TaskId(t))
                .ops()
                .map(|op| {
                    (
                        op.pre_compute,
                        op.mem.addr,
                        op.mem.size,
                        op.mem.kind.is_write(),
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// The same sequence through the *legacy* per-task `TaskTrace` form (each
/// task's trace materialised back out of the pool — the representation the
/// reference engine consumes).
fn legacy_sequence(comp: &Computation) -> Vec<(u32, u64, u32, bool)> {
    (0..comp.num_tasks() as u32)
        .flat_map(|t| {
            let trace = comp.trace(TaskId(t)).to_task_trace();
            trace
                .ops()
                .iter()
                .map(|op| {
                    (
                        op.pre_compute,
                        op.mem.addr,
                        op.mem.size,
                        op.mem.kind.is_write(),
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Pool invariants that make the flat layout trustworthy: per-task ranges
/// tile the pool contiguously in task-id order, cached `work` matches a
/// recount, and the task count of ops matches the pool length.
fn assert_pool_invariants(comp: &Computation) {
    let mut cursor = 0u32;
    for t in 0..comp.num_tasks() as u32 {
        let task = comp.task(TaskId(t));
        assert_eq!(task.ops.start, cursor, "task {t} range not contiguous");
        assert!(task.ops.end >= task.ops.start);
        cursor = task.ops.end;
        let view = comp.trace(TaskId(t));
        assert_eq!(view.num_refs(), task.ops.len());
        assert_eq!(view.instructions(), task.work, "task {t} work drifted");
        assert_eq!(view.post_compute(), task.post_compute);
    }
    assert_eq!(cursor as usize, comp.trace_pool().len(), "pool not tiled");
    assert_eq!(comp.total_refs(), comp.trace_pool().len() as u64);
}

/// The compiled line stream must expand exactly like `MemRef::lines` over
/// the pooled ops: same line addresses, same write flags, the op's
/// `pre_compute` on its first line and zero on straddle continuations.
fn assert_stream_matches(comp: &Computation, line_size: u64) {
    let stream = comp.line_stream(line_size);
    let mut expect: Vec<(u32, u64, bool)> = Vec::new();
    for t in 0..comp.num_tasks() as u32 {
        let (start, end) = stream.range(TaskId(t));
        assert_eq!(expect.len(), start, "task {t} stream range misaligned");
        for op in comp.trace(TaskId(t)).ops() {
            let mut pre = op.pre_compute;
            for line in op.mem.lines(line_size) {
                expect.push((pre, line, op.mem.kind.is_write()));
                pre = 0;
            }
        }
        assert_eq!(expect.len(), end, "task {t} stream range misaligned");
    }
    let got: Vec<(u32, u64, bool)> = (0..stream.num_steps())
        .map(|i| {
            let word = stream.packed()[i];
            let step = ccs_dag::LineStream::step_of(word);
            (
                ccs_dag::LineStream::pre_of(word),
                stream.line_addr()[(step & STEP_ID_MASK) as usize],
                step & STEP_WRITE_BIT != 0,
            )
        })
        .collect();
    assert_eq!(got, expect, "line stream diverges from per-op expansion");
}

#[test]
fn pooled_iteration_replays_legacy_traces_for_all_six_workloads() {
    // Small scale: the paper's inputs divided way down so all six kernels
    // build in milliseconds.
    let ctx = BuildCtx::new(2048, 64 * 1024, 4);
    let registry = WorkloadRegistry::global();
    let mut names = registry.names();
    names.sort();
    assert_eq!(
        names.len(),
        6,
        "expected the six built-in kernels: {names:?}"
    );
    for name in names {
        let comp = registry.build(&name, &ctx).expect("registered workload");
        assert!(comp.total_refs() > 0, "{name}: empty trace");
        assert_pool_invariants(&comp);
        assert_eq!(
            pooled_sequence(&comp),
            legacy_sequence(&comp),
            "{name}: pooled SoA iteration diverges from legacy TaskTrace"
        );
        assert_stream_matches(&comp, comp.line_size());
    }
}

/// Independent nested-list adjacency, built with the seed's original
/// `Vec<Vec<TaskId>>` algorithm over the SP tree.
fn nested_adjacency(comp: &Computation) -> (Vec<Vec<TaskId>>, Vec<Vec<TaskId>>) {
    let n = comp.num_tasks();
    let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    #[derive(Default, Clone)]
    struct Ends {
        sources: Vec<TaskId>,
        sinks: Vec<TaskId>,
    }
    let mut ends: Vec<Option<Ends>> = vec![None; comp.nodes().len()];
    for idx in 0..comp.nodes().len() {
        let node = &comp.nodes()[idx];
        let e = match node.kind {
            SpKind::Strand(t) => Ends {
                sources: vec![t],
                sinks: vec![t],
            },
            SpKind::Par => {
                let mut sources = Vec::new();
                let mut sinks = Vec::new();
                for &c in &node.children {
                    let ce = ends[c.index()].as_ref().unwrap();
                    sources.extend_from_slice(&ce.sources);
                    sinks.extend_from_slice(&ce.sinks);
                }
                Ends { sources, sinks }
            }
            SpKind::Seq => {
                for w in node.children.windows(2) {
                    let left = ends[w[0].index()].as_ref().unwrap().clone();
                    let right = ends[w[1].index()].as_ref().unwrap().clone();
                    for &u in &left.sinks {
                        for &v in &right.sources {
                            succs[u.index()].push(v);
                            preds[v.index()].push(u);
                        }
                    }
                }
                let first = ends[node.children.first().unwrap().index()]
                    .as_ref()
                    .unwrap();
                let last = ends[node.children.last().unwrap().index()]
                    .as_ref()
                    .unwrap();
                Ends {
                    sources: first.sources.clone(),
                    sinks: last.sinks.clone(),
                }
            }
        };
        ends[idx] = Some(e);
    }
    (succs, preds)
}

#[test]
fn csr_adjacency_equals_nested_lists() {
    let params = SynthParams::default();
    for seed in 0..10u64 {
        let comp = random_computation(seed, &params);
        let dag = Dag::from_computation(&comp);
        let (succs, preds) = nested_adjacency(&comp);
        let total: usize = succs.iter().map(Vec::len).sum();
        assert_eq!(dag.num_edges(), total, "seed {seed}");
        for t in 0..comp.num_tasks() as u32 {
            let t = TaskId(t);
            assert_eq!(
                dag.successors(t),
                succs[t.index()].as_slice(),
                "seed {seed}"
            );
            assert_eq!(
                dag.predecessors(t),
                preds[t.index()].as_slice(),
                "seed {seed}"
            );
            assert_eq!(dag.in_degree(t), preds[t.index()].len(), "seed {seed}");
        }
    }
}

/// One random builder step: compute, a single access, or a range access.
#[derive(Clone, Debug)]
enum Step {
    Compute(u64),
    Access {
        addr: u64,
        size: u32,
        write: bool,
    },
    Range {
        addr: u64,
        bytes: u64,
        instr: u64,
        write: bool,
    },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..500).prop_map(Step::Compute),
        (0u64..1 << 20, 1u32..512, any::<bool>()).prop_map(|(addr, size, write)| Step::Access {
            addr,
            size,
            write
        }),
        (0u64..1 << 20, 0u64..4096, 0u64..16, any::<bool>()).prop_map(
            |(addr, bytes, instr, write)| Step::Range {
                addr,
                bytes,
                instr,
                write
            }
        ),
    ]
}

fn apply(tb: &mut TraceBuilder<'_>, steps: &[Step]) {
    for s in steps {
        match *s {
            Step::Compute(n) => {
                tb.compute(n);
            }
            Step::Access { addr, size, write } => {
                tb.access(if write {
                    MemRef::write(addr, size)
                } else {
                    MemRef::read(addr, size)
                });
            }
            Step::Range {
                addr,
                bytes,
                instr,
                write,
            } => {
                if write {
                    tb.write_range(addr, bytes, instr);
                } else {
                    tb.read_range(addr, bytes, instr);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Building strands through the pooled `strand_with` path must record
    /// exactly what the legacy path (standalone `TraceBuilder` +
    /// `strand(TaskTrace)`) records, for arbitrary builder call sequences
    /// split across several tasks.
    #[test]
    fn pooled_and_legacy_builders_record_identical_computations(
        tasks in prop::collection::vec(prop::collection::vec(step_strategy(), 0..12), 1..6),
    ) {
        let line_size = 128;
        let mut pooled = ComputationBuilder::new(line_size);
        let pooled_nodes: Vec<_> = tasks
            .iter()
            .map(|steps| pooled.strand_with(|t| apply(t, steps)))
            .collect();
        let root = pooled.seq(pooled_nodes, GroupMeta::default());
        let pooled = pooled.finish(root);

        let mut legacy = ComputationBuilder::new(line_size);
        let legacy_nodes: Vec<_> = tasks
            .iter()
            .map(|steps| {
                let mut tb = TraceBuilder::new(line_size);
                apply(&mut tb, steps);
                legacy.strand(tb.finish())
            })
            .collect();
        let root = legacy.seq(legacy_nodes, GroupMeta::default());
        let legacy = legacy.finish(root);

        prop_assert_eq!(pooled.total_work(), legacy.total_work());
        prop_assert_eq!(pooled.total_refs(), legacy.total_refs());
        prop_assert_eq!(pooled_sequence(&pooled), pooled_sequence(&legacy));
        assert_pool_invariants(&pooled);
        assert_stream_matches(&pooled, line_size);
        // Same steps, same stream — including the dense/sparse interner
        // split, which must be invisible in the ids' first-touch order.
        let a = pooled.line_stream(line_size);
        let b = legacy.line_stream(line_size);
        prop_assert_eq!(a.packed(), b.packed());
        prop_assert_eq!(a.line_addr(), b.line_addr());
    }

    /// `AccessKind` and size survive the packed `u32` meta lane for the
    /// full supported size range.
    #[test]
    fn meta_lane_packing_round_trips(
        addr in any::<u64>(),
        size in 1u32..(1 << 31),
        write in any::<bool>(),
        pre in any::<u32>(),
    ) {
        let mut pool = ccs_dag::TracePool::new();
        let mem = if write { MemRef::write(addr, size) } else { MemRef::read(addr, size) };
        pool.push(pre, mem);
        let op = pool.op(0);
        prop_assert_eq!(op.mem, mem);
        prop_assert_eq!(op.pre_compute, pre);
        prop_assert_eq!(op.mem.kind.is_write(), write);
        prop_assert_eq!(op.mem.kind == AccessKind::Write, write);
    }
}
