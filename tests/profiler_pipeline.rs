//! Integration of the Section 6 pipeline: fine-grained program → one-pass
//! working-set profile → automatic coarsening → parallelization table →
//! re-grouped DAG → re-simulation.

use ccs::prelude::*;
use ccs::profile::{apply_coarsening, ParallelizationTable};

fn fine_mergesort() -> ccs::dag::Computation {
    ccs::workloads::mergesort::build(&MergesortParams::new(1 << 15).with_task_working_set(4 * 1024))
}

#[test]
fn coarsening_pipeline_end_to_end() {
    let fine = fine_mergesort();
    let tree = TaskGroupTree::from_computation(&fine);
    let sizes: Vec<u64> = (12..=22).map(|p| 1u64 << p).collect();
    let profile = WorkingSetProfile::collect(&fine, &sizes);

    let cfg = CmpConfig::default_with_cores(8).unwrap().scaled(256);
    let target = CoarsenTarget {
        cache_bytes: cfg.l2.capacity,
        num_cores: 8,
    };
    let plan = coarsen(&profile, &tree, target);
    assert!(
        plan.num_coarse_tasks() >= 8,
        "need enough tasks to keep 8 cores busy"
    );
    assert!(plan.num_coarse_tasks() <= fine.num_tasks());

    // The table records thresholds for the mergesort spawn sites.
    let mut table = ParallelizationTable::new();
    table.add(&plan);
    assert!(!table.is_empty());

    // Re-grouping preserves the work and the sequential trace, and the
    // coarsened program still runs correctly on the simulator.
    let coarse = apply_coarsening(&fine, &tree, &plan);
    assert_eq!(coarse.total_work(), fine.total_work());
    assert_eq!(coarse.total_refs(), fine.total_refs());

    let fine_run = simulate(&fine, &cfg, SchedulerKind::Pdf);
    let coarse_run = simulate(&coarse, &cfg, SchedulerKind::Pdf);
    assert_eq!(fine_run.instructions, coarse_run.instructions);
    // The automatic selection must not be a disaster: within 2x of the
    // fine-grained run (the paper's point is that it lands within 5% of the
    // *best manual* selection; the exact relation to the finest grain depends
    // on scheduling overheads, which the simulator does not charge).
    assert!(coarse_run.cycles < fine_run.cycles * 2);
}

#[test]
fn working_set_profile_consistent_with_coarse_groups() {
    let fine = fine_mergesort();
    let tree = TaskGroupTree::from_computation(&fine);
    let sizes: Vec<u64> = vec![16 * 1024, 256 * 1024, 4 << 20];
    let profile = WorkingSetProfile::collect(&fine, &sizes);
    let target = CoarsenTarget {
        cache_bytes: 256 * 1024,
        num_cores: 4,
    };
    let plan = coarsen(&profile, &tree, target);

    // Every selected coarse group obeys (or is a leaf below) the working-set
    // budget criterion applied at its parent.
    for &g in &plan.coarse_groups {
        let group = tree.group(g);
        if let Some(parent) = group.parent {
            let p = tree.group(parent);
            let sets = tree.independent_child_sets(parent);
            let w = profile.working_set_bytes(p.rank_range());
            // The set containing g either satisfied the criterion, or g is a
            // leaf that could not be subdivided further.
            let in_set = sets.iter().find(|s| s.contains(&g)).unwrap();
            let k = in_set.len() as u64;
            assert!(
                w <= k * target.budget_bytes() || group.is_leaf(),
                "group {g:?} selected without satisfying the criterion"
            );
        }
    }
}

#[test]
fn profile_answers_match_direct_replay_on_workload() {
    use ccs::profile::profile_group;
    let fine = ccs::workloads::mergesort::build(
        &MergesortParams::new(1 << 12).with_task_working_set(2 * 1024),
    );
    let tree = TaskGroupTree::from_computation(&fine);
    let sizes = [8 * 1024u64, 64 * 1024];
    let profile = WorkingSetProfile::collect(&fine, &sizes);
    // Spot-check a handful of groups against the multi-pass baseline.
    for (gid, g) in tree.iter().step_by(7) {
        let direct = profile_group(&fine, &tree, gid, &sizes);
        for d in direct {
            assert_eq!(profile.hits_in(g.rank_range(), d.cache_bytes), d.hits);
        }
    }
}
