//! The PR-level A/B acceptance property: for **every registered workload**,
//! both schedulers, and core counts covering all four coherence paths of
//! the event engine (`p == 1` no-directory, the single-word directory,
//! the hierarchical sharer masks past 64 cores, and the
//! `> MAX_DIRECTORY_CORES` broadcast fallback), the id-native event-driven
//! engine and the retained reference cycle-stepper must report
//! **byte-identical** `SimResult`s.  A 256-core clustered-L2 + shared-L3
//! topology (DESIGN.md §12) rides the same cross-product.
//!
//! This is the cross-product the bench harness's A/B throughput numbers
//! stand on: a faster engine only counts if the metrics cannot move.  The
//! batch engine rides the same cross-product: at each point it simulates a
//! three-way latency group containing the point's exact configuration, and
//! that member must again be byte-identical — replayed at one core, via
//! the fallback everywhere else.

use ccs_cache::directory::MAX_DIRECTORY_CORES;
use ccs_dag::Dag;
use ccs_sched::SchedulerSpec;
use ccs_sim::{simulate_batch, simulate_engine, CmpConfig, SimEngine};
use ccs_workloads::{BuildCtx, WorkloadRegistry};

/// A small CMP whose caches stay fixed while the core count sweeps the
/// coherence paths; 256 cores exercises the hierarchical sharer masks and
/// `MAX_DIRECTORY_CORES + 1` steps into the broadcast fallback.
fn config(cores: usize) -> CmpConfig {
    let mut cfg = CmpConfig::default_with_cores(16).expect("default config exists");
    cfg.num_cores = cores;
    cfg.name = format!("ab-{cores}");
    cfg.l1 = ccs_cache::CacheConfig::new(4 * 1024, 128, 4, 1);
    cfg.l2 = ccs_cache::CacheConfig::new(64 * 1024, 128, 16, 13);
    cfg
}

#[test]
fn all_registered_workloads_are_metrics_identical_across_engines() {
    let registry = WorkloadRegistry::global();
    let names = registry.names();
    assert!(
        names.len() >= 6,
        "expected the six built-in workloads, got {names:?}"
    );
    // Deeply scaled-down inputs: the reference engine pays one heap
    // round-trip per micro-step, so the sweep must stay small to keep the
    // test quick while still covering every workload's access pattern.
    let scale = 2048;
    let wide = MAX_DIRECTORY_CORES + 1;
    for name in &names {
        let ctx = BuildCtx::new(scale, 64 * 1024, 4);
        let comp = registry.build(name, &ctx).unwrap_or_else(|e| panic!("{e}"));
        let dag = Dag::from_computation(&comp);
        for cores in [1usize, 2, 4, 256, wide] {
            let cfg = config(cores);
            // A latency group around the A/B point: the batch engine must
            // reproduce the event result for the point itself while also
            // serving the neighbouring latencies.
            let group = [
                cfg.clone(),
                cfg.clone().with_l2_hit_latency(7),
                cfg.clone().with_memory_latency(900),
            ];
            for sched in ["pdf", "ws"] {
                let fast = simulate_engine(&comp, &cfg, sched, SimEngine::EventDriven);
                let slow = simulate_engine(&comp, &cfg, sched, SimEngine::Reference);
                assert_eq!(fast, slow, "{name} / {sched} / {cores} cores");
                let batch = simulate_batch(&comp, &dag, &group, &SchedulerSpec::new(sched));
                assert_eq!(batch.replayed, if cores == 1 { 2 } else { 0 });
                assert_eq!(
                    batch.results[0], fast,
                    "{name} / {sched} / {cores} cores (batch)"
                );
            }
        }
        // The three-level topology (DESIGN.md §12): 256 cores in eight
        // 32-core L2 clusters behind a shared L3.  Still byte-identical
        // across engines; never replayed by the batch engine (the tape
        // records L2 outcomes only), but the fallback path must agree too.
        let clustered = config(256).clustered(8).with_l3_mb(1);
        for sched in ["pdf", "ws"] {
            let fast = simulate_engine(&comp, &clustered, sched, SimEngine::EventDriven);
            let slow = simulate_engine(&comp, &clustered, sched, SimEngine::Reference);
            assert_eq!(fast, slow, "{name} / {sched} / 256 cores clustered+L3");
            assert_eq!(fast.clusters, 8);
            assert_eq!(fast.l3.accesses, fast.l2.misses, "L3 sits below the L2s");
            let group = [
                clustered.clone(),
                clustered.clone().with_memory_latency(900),
            ];
            let batch = simulate_batch(&comp, &dag, &group, &SchedulerSpec::new(sched));
            assert_eq!(batch.replayed, 0, "clustered+L3 groups never replay");
            assert_eq!(
                batch.results[0], fast,
                "{name} / {sched} / clustered+L3 (batch)"
            );
        }
    }
}
