//! Integration tests for the unified `Experiment` API: report round-trips,
//! registry/enum equivalence on both axes (schedulers *and* workloads),
//! user-defined schedulers and workloads through every driver, parallel
//! sweep determinism, and the paper's PDF-≤-WS L2-miss invariant as a
//! standing check.

use std::collections::VecDeque;

use ccs::dag::TaskId;
use ccs::prelude::*;

/// A small fixed DAG with real memory traffic: 8 strands scanning one shared
/// region, then a join.
fn fixed_computation() -> Computation {
    let mut b = ComputationBuilder::new(128);
    let mut space = ccs::dag::AddressSpace::new();
    let region = space.alloc(64 * 1024);
    let leaves: Vec<_> = (0..8)
        .map(|i| {
            b.strand_with(|t| {
                t.compute(500 + i * 7);
                t.read_range(region.base, region.bytes / 2, 2);
            })
        })
        .collect();
    let par = b.par(leaves, GroupMeta::labeled("scan"));
    let join = b.strand_with(|t| {
        t.compute(100);
    });
    let root = b.seq(vec![par, join], GroupMeta::labeled("root"));
    b.finish(root)
}

#[test]
fn report_round_trips_through_json() {
    let report = Experiment::new(Benchmark::Mergesort)
        .cores([2, 4])
        .scale(512)
        .schedulers([
            SchedulerKind::Pdf,
            SchedulerKind::WorkStealing,
            SchedulerKind::WorkStealingRandom(7),
        ])
        .run();
    assert_eq!(report.len(), 2 * 3);

    let json = report.to_json();
    let parsed = Report::from_json(&json).expect("well-formed JSON");
    assert_eq!(parsed, report, "every field survives the round-trip");

    // The seeded record keeps its seed and distinguishable name.
    let rand = parsed
        .for_scheduler("ws-rand")
        .next()
        .expect("ws-rand record");
    assert_eq!(rand.seed, Some(7));
    assert_eq!(rand.scheduler_label(), "ws-rand@7");

    // CSV has one line per record plus the header.
    assert_eq!(report.to_csv().lines().count(), report.len() + 1);
}

#[test]
fn registry_and_enum_builds_produce_identical_schedules() {
    let comp = fixed_computation();
    let dag = Dag::from_computation(&comp);
    let pairs: [(&str, SchedulerKind); 4] = [
        ("pdf", SchedulerKind::Pdf),
        ("ws", SchedulerKind::WorkStealing),
        ("ws-rand", SchedulerKind::WorkStealingRandom(0)),
        ("central", SchedulerKind::CentralQueue),
    ];
    for (name, kind) in pairs {
        for cores in [1usize, 3, 8] {
            let by_name = execute(&dag, cores, name);
            let by_kind = execute(&dag, cores, kind);
            assert_eq!(
                by_name.task_start, by_kind.task_start,
                "{name} on {cores} cores"
            );
            assert_eq!(
                by_name.task_core, by_kind.task_core,
                "{name} on {cores} cores"
            );
            assert_eq!(
                by_name.scheduler, by_kind.scheduler,
                "{name} on {cores} cores"
            );
            by_name.validate(&dag).unwrap();
        }
    }
}

/// A user-defined scheduler: plain FIFO over enabling order, tracked per
/// core for no particular reason other than exercising the interface.
struct UserFifo {
    queue: VecDeque<TaskId>,
}

impl Scheduler for UserFifo {
    fn init(&mut self, _dag: &Dag, _num_cores: usize) {
        self.queue.clear();
    }
    fn task_enabled(&mut self, task: TaskId, _enabling_core: Option<usize>) {
        self.queue.push_back(task);
    }
    fn next_task(&mut self, _core: usize) -> Option<TaskId> {
        self.queue.pop_front()
    }
    fn ready_count(&self) -> usize {
        self.queue.len()
    }
    fn name(&self) -> &'static str {
        "user-fifo"
    }
}

#[test]
fn user_defined_scheduler_runs_through_executor_simulator_and_experiment() {
    SchedulerRegistry::global().register_fn("user-fifo", |_| {
        Box::new(UserFifo {
            queue: VecDeque::new(),
        })
    });

    let comp = fixed_computation();

    // Through the abstract executor…
    let dag = Dag::from_computation(&comp);
    let schedule = execute(&dag, 4, "user-fifo");
    schedule
        .validate(&dag)
        .expect("user scheduler produces a legal schedule");
    assert_eq!(schedule.scheduler, "user-fifo");

    // …through the cycle-level simulator…
    let config = CmpConfig::default_with_cores(4).unwrap().scaled(256);
    let result = simulate(&comp, &config, "user-fifo");
    assert_eq!(result.scheduler, "user-fifo");
    assert_eq!(result.instructions, comp.total_work());
    assert!(result.cycles > 0);

    // …and through an experiment sweep next to a built-in.
    let report = Experiment::new(WorkloadSpec::fixed("fixed-scan", fixed_computation()))
        .cores(4)
        .scale(256)
        .schedulers(["pdf", "user-fifo"])
        .run();
    assert_eq!(report.len(), 2);
    let user = report
        .for_scheduler("user-fifo")
        .next()
        .expect("user record");
    let pdf = report.for_scheduler("pdf").next().expect("pdf record");
    assert_eq!(
        user.instructions, pdf.instructions,
        "same work, different policy"
    );
}

#[test]
fn registry_and_enum_workload_builds_are_identical() {
    // The compat-shim guarantee: `Benchmark::build_scaled` and the registry
    // factory share one code path, so the built computations match trace
    // for trace, not just statistically.
    let (scale, l2, cores) = (512u64, 256 * 1024u64, 8usize);
    for bench in [Benchmark::Lu, Benchmark::HashJoin, Benchmark::Mergesort] {
        let by_enum = bench.build_scaled(scale, l2, cores);
        let ctx = BuildCtx::new(scale, l2, cores);
        let by_name = WorkloadRegistry::global()
            .build(bench.name(), &ctx)
            .expect("paper benchmark registered");
        assert_eq!(by_enum.num_tasks(), by_name.num_tasks(), "{bench}");
        assert_eq!(by_enum.total_work(), by_name.total_work(), "{bench}");
        let refs_enum: Vec<_> = by_enum.sequential_refs().collect();
        let refs_name: Vec<_> = by_name.sequential_refs().collect();
        assert_eq!(refs_enum, refs_name, "{bench}: traces must be identical");
    }
}

#[test]
fn all_six_builtin_workloads_run_by_name_through_experiment() {
    let report = Experiment::named("all-six")
        .workloads(["lu", "hashjoin", "mergesort", "quicksort", "matmul", "heat"])
        .cores(4)
        .scale(1024)
        .schedulers(["pdf", "ws"])
        .sequential_baseline(false)
        .parallelism(4)
        .run();
    assert_eq!(report.len(), 6 * 2);
    assert_eq!(report.workloads().len(), 6);
    for r in &report.records {
        assert!(r.cycles > 0, "{} produced no cycles", r.workload);
        assert!(r.instructions > 0, "{} produced no work", r.workload);
    }
}

#[test]
fn user_defined_workload_runs_through_experiment_end_to_end() {
    // Register a workload whose size tracks the BuildCtx — the same contract
    // the built-ins follow — plus a user parameter.
    WorkloadRegistry::global().register_fn(
        "test-scan",
        "n parallel strands scanning a shared region (test)",
        |ctx: &BuildCtx| {
            let n = ctx.u64_param("n").unwrap_or(4);
            let mut b = ComputationBuilder::new(128);
            let mut space = ccs::dag::AddressSpace::new();
            let region = space.alloc(ctx.l2_bytes.max(4096));
            let leaves: Vec<_> = (0..n)
                .map(|_| {
                    b.strand_with(|t| {
                        t.read_range(region.base, region.bytes / 2, 2);
                    })
                })
                .collect();
            let par = b.par(leaves, GroupMeta::labeled("scan"));
            let root = b.seq(vec![par], GroupMeta::labeled("root"));
            b.finish(root)
        },
    );

    let report = Experiment::new("test-scan:n=6")
        .cores(2)
        .scale(256)
        .schedulers(["pdf", "ws"])
        .run();
    assert_eq!(report.len(), 2);
    for r in &report.records {
        assert_eq!(r.workload, "test-scan:n=6");
        // The 6 scan strands.
        assert_eq!(r.tasks, 6);
        assert!(r.speedup_over_seq.is_some());
    }

    // The record label round-trips back into a spec that rebuilds the same
    // computation.
    let spec = WorkloadSpec::parse(&report.records[0].workload).unwrap();
    let comp = spec.build(256, 64 * 1024, 2);
    assert_eq!(comp.num_tasks(), 6);
}

#[test]
fn parallel_sweep_report_is_byte_identical_to_sequential() {
    let base = Experiment::named("det-check")
        .workloads([
            WorkloadSpec::from("mergesort"),
            WorkloadSpec::from("matmul:n=64"),
            WorkloadSpec::from("heat:rows=64,cols=64,steps=2"),
        ])
        .cores([2, 4])
        .scale(1024)
        .schedulers([
            SchedulerSpec::new("pdf"),
            SchedulerSpec::new("ws"),
            SchedulerSpec::new("ws-rand").with_seed(7),
        ]);
    let sequential = base.clone().parallelism(1).run();
    let parallel = base.clone().parallelism(8).run();
    assert_eq!(sequential.len(), 3 * 2 * 3);
    assert_eq!(parallel, sequential, "records and order must match");
    assert_eq!(
        parallel.to_json(),
        sequential.to_json(),
        "JSON trajectories must be byte-identical"
    );
}

#[test]
fn unknown_scheduler_name_fails_with_clear_error() {
    let spec = SchedulerSpec::new("definitely-not-registered");
    let err = match spec.try_build() {
        Ok(_) => panic!("unknown scheduler must not build"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("definitely-not-registered"));
    assert!(err.known.iter().any(|n| n == "pdf"));
}

#[test]
fn pdf_l2_misses_at_most_ws_on_mergesort() {
    // The doctest invariant from the crate root, kept as an integration test:
    // PDF shares the shared L2 constructively, WS fragments it.
    let report = Experiment::new(Benchmark::Mergesort)
        .cores(16)
        .scale(64)
        .schedulers([SchedulerKind::Pdf, SchedulerKind::WorkStealing])
        .run();
    let pdf = report.for_scheduler("pdf").next().unwrap();
    let ws = report.for_scheduler("ws").next().unwrap();
    assert_eq!(
        pdf.instructions, ws.instructions,
        "same work under both schedulers"
    );
    assert!(
        pdf.l2_misses <= ws.l2_misses,
        "PDF must not miss more than WS: pdf {} vs ws {}",
        pdf.l2_misses,
        ws.l2_misses
    );
    assert!(
        pdf.speedup_over_seq.unwrap() > 1.0,
        "16 cores must beat 1 core"
    );
}
