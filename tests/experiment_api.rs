//! Integration tests for the unified `Experiment` API: report round-trips,
//! registry/enum equivalence, user-defined schedulers through both drivers,
//! and the paper's PDF-≤-WS L2-miss invariant as a standing check.

use std::collections::VecDeque;

use ccs::dag::TaskId;
use ccs::prelude::*;

/// A small fixed DAG with real memory traffic: 8 strands scanning one shared
/// region, then a join.
fn fixed_computation() -> Computation {
    let mut b = ComputationBuilder::new(128);
    let mut space = ccs::dag::AddressSpace::new();
    let region = space.alloc(64 * 1024);
    let leaves: Vec<_> = (0..8)
        .map(|i| {
            b.strand_with(|t| {
                t.compute(500 + i * 7);
                t.read_range(region.base, region.bytes / 2, 2);
            })
        })
        .collect();
    let par = b.par(leaves, GroupMeta::labeled("scan"));
    let join = b.strand_with(|t| {
        t.compute(100);
    });
    let root = b.seq(vec![par, join], GroupMeta::labeled("root"));
    b.finish(root)
}

#[test]
fn report_round_trips_through_json() {
    let report = Experiment::new(Benchmark::Mergesort)
        .cores([2, 4])
        .scale(512)
        .schedulers([
            SchedulerKind::Pdf,
            SchedulerKind::WorkStealing,
            SchedulerKind::WorkStealingRandom(7),
        ])
        .run();
    assert_eq!(report.len(), 2 * 3);

    let json = report.to_json();
    let parsed = Report::from_json(&json).expect("well-formed JSON");
    assert_eq!(parsed, report, "every field survives the round-trip");

    // The seeded record keeps its seed and distinguishable name.
    let rand = parsed
        .for_scheduler("ws-rand")
        .next()
        .expect("ws-rand record");
    assert_eq!(rand.seed, Some(7));
    assert_eq!(rand.scheduler_label(), "ws-rand@7");

    // CSV has one line per record plus the header.
    assert_eq!(report.to_csv().lines().count(), report.len() + 1);
}

#[test]
fn registry_and_enum_builds_produce_identical_schedules() {
    let comp = fixed_computation();
    let dag = Dag::from_computation(&comp);
    let pairs: [(&str, SchedulerKind); 4] = [
        ("pdf", SchedulerKind::Pdf),
        ("ws", SchedulerKind::WorkStealing),
        ("ws-rand", SchedulerKind::WorkStealingRandom(0)),
        ("central", SchedulerKind::CentralQueue),
    ];
    for (name, kind) in pairs {
        for cores in [1usize, 3, 8] {
            let by_name = execute(&dag, cores, name);
            let by_kind = execute(&dag, cores, kind);
            assert_eq!(
                by_name.task_start, by_kind.task_start,
                "{name} on {cores} cores"
            );
            assert_eq!(
                by_name.task_core, by_kind.task_core,
                "{name} on {cores} cores"
            );
            assert_eq!(
                by_name.scheduler, by_kind.scheduler,
                "{name} on {cores} cores"
            );
            by_name.validate(&dag).unwrap();
        }
    }
}

/// A user-defined scheduler: plain FIFO over enabling order, tracked per
/// core for no particular reason other than exercising the interface.
struct UserFifo {
    queue: VecDeque<TaskId>,
}

impl Scheduler for UserFifo {
    fn init(&mut self, _dag: &Dag, _num_cores: usize) {
        self.queue.clear();
    }
    fn task_enabled(&mut self, task: TaskId, _enabling_core: Option<usize>) {
        self.queue.push_back(task);
    }
    fn next_task(&mut self, _core: usize) -> Option<TaskId> {
        self.queue.pop_front()
    }
    fn ready_count(&self) -> usize {
        self.queue.len()
    }
    fn name(&self) -> &'static str {
        "user-fifo"
    }
}

#[test]
fn user_defined_scheduler_runs_through_executor_simulator_and_experiment() {
    SchedulerRegistry::global().register_fn("user-fifo", |_| {
        Box::new(UserFifo {
            queue: VecDeque::new(),
        })
    });

    let comp = fixed_computation();

    // Through the abstract executor…
    let dag = Dag::from_computation(&comp);
    let schedule = execute(&dag, 4, "user-fifo");
    schedule
        .validate(&dag)
        .expect("user scheduler produces a legal schedule");
    assert_eq!(schedule.scheduler, "user-fifo");

    // …through the cycle-level simulator…
    let config = CmpConfig::default_with_cores(4).unwrap().scaled(256);
    let result = simulate(&comp, &config, "user-fifo");
    assert_eq!(result.scheduler, "user-fifo");
    assert_eq!(result.instructions, comp.total_work());
    assert!(result.cycles > 0);

    // …and through an experiment sweep next to a built-in.
    let report = Experiment::new(WorkloadSpec::fixed("fixed-scan", fixed_computation()))
        .cores(4)
        .scale(256)
        .schedulers(["pdf", "user-fifo"])
        .run();
    assert_eq!(report.len(), 2);
    let user = report
        .for_scheduler("user-fifo")
        .next()
        .expect("user record");
    let pdf = report.for_scheduler("pdf").next().expect("pdf record");
    assert_eq!(
        user.instructions, pdf.instructions,
        "same work, different policy"
    );
}

#[test]
fn unknown_scheduler_name_fails_with_clear_error() {
    let spec = SchedulerSpec::new("definitely-not-registered");
    let err = match spec.try_build() {
        Ok(_) => panic!("unknown scheduler must not build"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("definitely-not-registered"));
    assert!(err.known.iter().any(|n| n == "pdf"));
}

#[test]
fn pdf_l2_misses_at_most_ws_on_mergesort() {
    // The doctest invariant from the crate root, kept as an integration test:
    // PDF shares the shared L2 constructively, WS fragments it.
    let report = Experiment::new(Benchmark::Mergesort)
        .cores(16)
        .scale(64)
        .schedulers([SchedulerKind::Pdf, SchedulerKind::WorkStealing])
        .run();
    let pdf = report.for_scheduler("pdf").next().unwrap();
    let ws = report.for_scheduler("ws").next().unwrap();
    assert_eq!(
        pdf.instructions, ws.instructions,
        "same work under both schedulers"
    );
    assert!(
        pdf.l2_misses <= ws.l2_misses,
        "PDF must not miss more than WS: pdf {} vs ws {}",
        pdf.l2_misses,
        ws.l2_misses
    );
    assert!(
        pdf.speedup_over_seq.unwrap() > 1.0,
        "16 cores must beat 1 core"
    );
}
