//! Cross-crate integration tests: workload generators → schedulers → CMP
//! simulator, checking the paper's headline qualitative results on
//! scaled-down inputs.

use ccs::prelude::*;

/// Scaled-down "default-P" configuration matching a scaled-down workload.
fn scaled_default(cores: usize, scale: u64) -> CmpConfig {
    CmpConfig::default_with_cores(cores).unwrap().scaled(scale)
}

#[test]
fn mergesort_pdf_beats_ws_on_misses_and_time() {
    // Scale 1/64 with 16 cores is the smallest setting at which the paper's
    // constructive-sharing effect is comfortably visible (the shared L2 must
    // be large relative to a handful of task working sets); the experiment
    // binaries default to scale 1/32.
    let scale = 64;
    let cores = 16;
    let cfg = scaled_default(cores, scale);
    let comp = Benchmark::Mergesort.build_scaled(scale, cfg.l2.capacity, cores);
    let pdf = simulate(&comp, &cfg, SchedulerKind::Pdf);
    let ws = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
    assert_eq!(pdf.instructions, ws.instructions);
    assert!(
        (pdf.l2.misses as f64) < ws.l2.misses as f64 * 0.95,
        "PDF must miss at least 5% less: pdf {} vs ws {}",
        pdf.l2.misses,
        ws.l2.misses
    );
    assert!(
        pdf.cycles < ws.cycles,
        "PDF must be faster: pdf {} vs ws {}",
        pdf.cycles,
        ws.cycles
    );
}

#[test]
fn hashjoin_pdf_reduces_l2_misses() {
    let scale = 256;
    let cfg = scaled_default(8, scale);
    let comp = Benchmark::HashJoin.build_scaled(scale, cfg.l2.capacity, 8);
    let pdf = simulate(&comp, &cfg, SchedulerKind::Pdf);
    let ws = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
    assert!(
        pdf.l2_mpki() <= ws.l2_mpki() * 1.02,
        "PDF mpki {} vs WS mpki {}",
        pdf.l2_mpki(),
        ws.l2_mpki()
    );
    assert!(pdf.cycles <= ws.cycles * 102 / 100);
}

#[test]
fn lu_has_small_miss_ratio_and_similar_performance() {
    let scale = 256;
    let cfg = scaled_default(4, scale);
    let lu = Benchmark::Lu.build_scaled(scale, cfg.l2.capacity, 4);
    let pdf = simulate(&lu, &cfg, SchedulerKind::Pdf);
    let ws = simulate(&lu, &cfg, SchedulerKind::WorkStealing);
    // LU is the compute-dense, small-working-set representative: its L2
    // misses per 1000 instructions sit well below Hash Join's, its bandwidth
    // demand is modest, and PDF ≈ WS in execution time (Section 5.1).
    let hj = Benchmark::HashJoin.build_scaled(scale, cfg.l2.capacity, 4);
    let hj_pdf = simulate(&hj, &cfg, SchedulerKind::Pdf);
    assert!(
        pdf.l2_mpki() < hj_pdf.l2_mpki() / 2.0,
        "LU mpki {} should be well below Hash Join's {}",
        pdf.l2_mpki(),
        hj_pdf.l2_mpki()
    );
    assert!(
        pdf.bandwidth_utilization < hj_pdf.bandwidth_utilization,
        "LU must be less bandwidth-hungry than Hash Join"
    );
    let ratio = pdf.cycles as f64 / ws.cycles as f64;
    assert!(
        ratio < 1.05,
        "LU: PDF and WS should perform alike, ratio {ratio}"
    );
}

#[test]
fn parallel_speedup_is_meaningful() {
    let scale = 256;
    let cfg = scaled_default(8, scale);
    let comp = Benchmark::Mergesort.build_scaled(scale, cfg.l2.capacity, 8);
    let mut seq_cfg = cfg.clone();
    seq_cfg.num_cores = 1;
    let seq = simulate(&comp, &seq_cfg, SchedulerKind::Pdf);
    let par = simulate(&comp, &cfg, SchedulerKind::Pdf);
    let speedup = par.speedup_over(&seq);
    assert!(speedup > 2.0, "8-core speedup too low: {speedup}");
    assert!(speedup <= 8.5, "super-linear speedup is a bug: {speedup}");
}

#[test]
fn schedulers_agree_on_single_core() {
    let scale = 512;
    let cfg = scaled_default(1, scale);
    let comp = Benchmark::Mergesort.build_scaled(scale, cfg.l2.capacity, 1);
    let pdf = simulate(&comp, &cfg, SchedulerKind::Pdf);
    let ws = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
    assert_eq!(
        pdf.cycles, ws.cycles,
        "one core leaves no scheduling freedom"
    );
    assert_eq!(pdf.l2.misses, ws.l2.misses);
}

#[test]
fn finer_granularity_helps_pdf_more_than_ws() {
    // Figure 6's qualitative shape: as tasks shrink, PDF's misses improve
    // while WS's stay roughly flat, so the PDF:WS miss ratio improves.
    let scale = 128;
    let cfg = scaled_default(16, scale);
    let n_items = (32u64 << 20) / scale;
    let coarse_ws = cfg.l2.capacity; // task working set ≈ whole L2
    let fine_ws = cfg.l2.capacity / 32;

    let ratio = |task_ws: u64| {
        let comp = ccs::workloads::mergesort::build(
            &MergesortParams::new(n_items).with_task_working_set(task_ws),
        );
        let pdf = simulate(&comp, &cfg, SchedulerKind::Pdf);
        let ws = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
        pdf.l2.misses as f64 / ws.l2.misses.max(1) as f64
    };

    let coarse_ratio = ratio(coarse_ws);
    let fine_ratio = ratio(fine_ws);
    assert!(
        fine_ratio <= coarse_ratio + 0.02,
        "finer tasks should improve PDF relative to WS: coarse {coarse_ratio}, fine {fine_ratio}"
    );
    assert!(
        fine_ratio < 1.0,
        "with fine tasks PDF must beat WS: {fine_ratio}"
    );
}

#[test]
fn bandwidth_utilization_grows_with_cores_for_hashjoin() {
    let scale = 256;
    let comp4 = Benchmark::HashJoin.build_scaled(scale, scaled_default(4, scale).l2.capacity, 4);
    let r4 = simulate(&comp4, &scaled_default(4, scale), SchedulerKind::Pdf);
    let comp16 = Benchmark::HashJoin.build_scaled(scale, scaled_default(16, scale).l2.capacity, 16);
    let r16 = simulate(&comp16, &scaled_default(16, scale), SchedulerKind::Pdf);
    assert!(
        r16.bandwidth_utilization > r4.bandwidth_utilization,
        "more cores must push bandwidth utilisation up: {} vs {}",
        r16.bandwidth_utilization,
        r4.bandwidth_utilization
    );
}

#[test]
fn sensitivity_overrides_affect_results() {
    let scale = 512;
    let cfg = scaled_default(8, scale);
    let comp = Benchmark::Mergesort.build_scaled(scale, cfg.l2.capacity, 8);
    let base = simulate(&comp, &cfg, SchedulerKind::Pdf);
    let slow_mem = simulate(
        &comp,
        &cfg.clone().with_memory_latency(1100),
        SchedulerKind::Pdf,
    );
    assert!(slow_mem.cycles > base.cycles);
    let fast_l2 = simulate(
        &comp,
        &cfg.clone().with_l2_hit_latency(7),
        SchedulerKind::Pdf,
    );
    assert!(fast_l2.cycles <= base.cycles);
}

#[test]
fn pdf_on_slow_l2_vs_ws_on_fast_l2() {
    // The Figure 4 headline: PDF with a 19-cycle monolithic L2 holds its own
    // against WS with a 7-cycle L2 for cache-sensitive workloads.
    let scale = 256;
    let cfg = scaled_default(8, scale);
    let comp = Benchmark::Mergesort.build_scaled(scale, cfg.l2.capacity, 8);
    let pdf_slow = simulate(
        &comp,
        &cfg.clone().with_l2_hit_latency(19),
        SchedulerKind::Pdf,
    );
    let ws_fast = simulate(
        &comp,
        &cfg.clone().with_l2_hit_latency(7),
        SchedulerKind::WorkStealing,
    );
    assert!(
        (pdf_slow.cycles as f64) < ws_fast.cycles as f64 * 1.10,
        "PDF@19c {} should be within 10% of (or beat) WS@7c {}",
        pdf_slow.cycles,
        ws_fast.cycles
    );
}
