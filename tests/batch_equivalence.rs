//! Batched-vs-sequential equivalence: for **every registered workload**,
//! the lockstep schedulers and the seeded randomised work stealer, and
//! arbitrary latency grids over one machine shape, `simulate_batch` must
//! return `SimResult`s **byte-identical** to running each configuration
//! through the event engine on its own.
//!
//! This is the property the whole batch subsystem stands on (DESIGN.md
//! §11): the record/replay fast path may re-time a recorded pass only
//! where the schedule is provably latency-independent, and the planner's
//! fallback must make every other group indistinguishable from the
//! sequential path.  The grids here deliberately vary all three latency
//! axes the grouping key leaves free — L1 hit, L2 hit and main-memory
//! latency — so a replay formula that dropped any term would be caught.

use ccs_dag::Dag;
use ccs_sched::SchedulerSpec;
use ccs_sim::batch::replayable;
use ccs_sim::{simulate_batch, simulate_with_engine, CmpConfig, SimEngine};
use ccs_workloads::{BuildCtx, WorkloadRegistry};
use proptest::prelude::*;

/// One latency design point over the fixed A/B machine shape: small caches
/// (so deeply scaled-down inputs still miss) with every latency axis free.
fn latency_config(cores: usize, l1_hit: u64, l2_hit: u64, mem: u64) -> CmpConfig {
    let mut cfg = CmpConfig::default_with_cores(16).expect("default config exists");
    cfg.num_cores = cores;
    cfg.name = format!("grid-{cores}c-l1h{l1_hit}-l2h{l2_hit}-m{mem}");
    cfg.l1 = ccs_cache::CacheConfig::new(4 * 1024, 128, 4, l1_hit);
    cfg.l2 = ccs_cache::CacheConfig::new(64 * 1024, 128, 16, l2_hit);
    cfg.memory.latency = mem;
    cfg
}

/// The sequential baseline the batch must reproduce: each configuration
/// through the event engine with a freshly built scheduler.
fn event_results(
    comp: &ccs_dag::Computation,
    dag: &Dag,
    configs: &[CmpConfig],
    sched: &SchedulerSpec,
) -> Vec<ccs_sim::SimResult> {
    configs
        .iter()
        .map(|cfg| {
            let mut s = sched.build();
            simulate_with_engine(comp, dag, cfg, s.as_mut(), SimEngine::EventDriven)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: every registered workload, three scheduler
    /// families, a random single-core latency grid — full `SimResult`
    /// equality per configuration, and the planner must actually have
    /// taken the replay fast path (one full run, the rest replayed).
    #[test]
    fn batched_single_core_grids_match_the_event_engine(
        grid in prop::collection::vec((1u64..4, 4u64..40, 100u64..1200), 2..5),
        seed in 1u64..1000,
    ) {
        let registry = WorkloadRegistry::global();
        let names = registry.names();
        prop_assert!(names.len() >= 6, "expected the six built-in workloads, got {names:?}");
        let configs: Vec<CmpConfig> = grid
            .iter()
            .map(|&(l1_hit, l2_hit, mem)| latency_config(1, l1_hit, l2_hit, mem))
            .collect();
        prop_assert!(replayable(&configs));
        let scheds = [
            SchedulerSpec::new("pdf"),
            SchedulerSpec::new("ws"),
            SchedulerSpec::new("ws-rand").with_seed(seed),
        ];
        for name in &names {
            let ctx = BuildCtx::new(4096, 64 * 1024, 4);
            let comp = registry.build(name, &ctx).unwrap_or_else(|e| panic!("{e}"));
            let dag = Dag::from_computation(&comp);
            for sched in &scheds {
                let batch = simulate_batch(&comp, &dag, &configs, sched);
                prop_assert!(batch.full_runs == 1, "{name} / {sched}: not replayed");
                prop_assert_eq!(batch.replayed, configs.len() - 1);
                let expected = event_results(&comp, &dag, &configs, sched);
                for (got, want) in batch.results.iter().zip(&expected) {
                    prop_assert!(
                        got == want,
                        "{name} / {sched} / {}: batched result diverged",
                        want.config_name
                    );
                }
            }
        }
    }

    /// Multi-core groups are not latency-independent: the planner must fall
    /// back to full per-configuration event runs — and still match.
    #[test]
    fn multicore_grids_fall_back_and_still_match(
        grid in prop::collection::vec((1u64..4, 4u64..40, 100u64..1200), 2..4),
        seed in 1u64..1000,
    ) {
        let configs: Vec<CmpConfig> = grid
            .iter()
            .map(|&(l1_hit, l2_hit, mem)| latency_config(4, l1_hit, l2_hit, mem))
            .collect();
        prop_assert!(!replayable(&configs));
        let registry = WorkloadRegistry::global();
        let ctx = BuildCtx::new(4096, 64 * 1024, 4);
        let comp = registry.build("mergesort", &ctx).unwrap_or_else(|e| panic!("{e}"));
        let dag = Dag::from_computation(&comp);
        let sched = SchedulerSpec::new("ws-rand").with_seed(seed);
        let batch = simulate_batch(&comp, &dag, &configs, &sched);
        prop_assert_eq!(batch.full_runs, configs.len());
        prop_assert_eq!(batch.replayed, 0);
        let expected = event_results(&comp, &dag, &configs, &sched);
        prop_assert_eq!(batch.results, expected);
    }
}
