//! Plugging a user-defined workload into the harness through the open
//! registry — no crate internals touched (the workload-side twin of
//! `examples/custom_scheduler.rs`).
//!
//! Defines a STREAM-style "triad" kernel (`a[i] = b[i] + s * c[i]` over
//! three arrays, split into parallel chunks), registers it under
//! `"triad"`, and drives it by name — with `key=value` parameters — through
//! the simulator and an `Experiment` sweep next to the built-in kernels.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use ccs::dag::{AddressSpace, ComputationBuilder, GroupMeta};
use ccs::prelude::*;

/// Build the triad computation for one design point: three arrays sized to
/// the paper-proportional footprint (128 MB at scale 1) divided by the
/// context's scale, streamed in `tasks` parallel chunks.
///
/// Parameters (all optional): `mb` — total footprint in MB *before*
/// scaling; `tasks` — number of parallel chunks (default: 4 per core).
fn build_triad(ctx: &BuildCtx) -> ccs::dag::Computation {
    let total_bytes = (ctx.u64_param("mb").unwrap_or(128) << 20) / ctx.scale;
    let array_bytes = (total_bytes / 3).max(64 * 1024);
    let tasks = ctx
        .u64_param("tasks")
        .unwrap_or(4 * ctx.cores.max(1) as u64)
        .max(1);

    let mut space = AddressSpace::new();
    let a = space.alloc(array_bytes);
    let b = space.alloc(array_bytes);
    let c = space.alloc(array_bytes);

    let mut builder = ComputationBuilder::new(128);
    let chunk = array_bytes.div_ceil(tasks);
    let strands: Vec<_> = (0..tasks)
        .map(|i| {
            let offset = i * chunk;
            let bytes = chunk.min(array_bytes - offset);
            builder.strand_with_meta(GroupMeta::with_param("triad-chunk", bytes), |t| {
                // One multiply-add per 8-byte element: read b and c, write a.
                t.read_range(b.at(offset), bytes, 2 * (128 / 8));
                t.read_range(c.at(offset), bytes, 0);
                t.write_range(a.at(offset), bytes, 0);
            })
        })
        .collect();
    let root = builder.forked_par(strands, GroupMeta::labeled("triad"), 24);
    builder.finish(root)
}

fn main() {
    // One registration makes the workload addressable by name everywhere.
    WorkloadRegistry::global().register_fn(
        "triad",
        "STREAM triad a=b+s*c over three arrays (custom_workload example)",
        build_triad,
    );

    // 1. Build through the registry, exactly as the experiment layer does.
    let ctx = BuildCtx::new(256, 512 * 1024, 8).with_param("tasks", "16");
    let comp = WorkloadRegistry::global()
        .build("triad", &ctx)
        .expect("registered above");
    println!(
        "registry : triad built with {} tasks, {} instructions",
        comp.num_tasks(),
        comp.total_work()
    );

    // 2. Simulate it on a CMP design point.
    let config = CmpConfig::default_with_cores(8).unwrap().scaled(256);
    let result = simulate(&comp, &config, "pdf");
    println!(
        "simulator: triad on {}, {} cycles, {:.3} L2 MPKI",
        result.config_name,
        result.cycles,
        result.l2_mpki()
    );

    // 3. An experiment sweep next to built-in kernels, every workload
    //    selected by spec string, fanned across our own fork-join pool.
    let report = Experiment::named("triad-vs-builtins")
        .workloads(["triad:tasks=32", "mergesort", "quicksort"])
        .cores(8)
        .scale(1024)
        .schedulers(["pdf", "ws"])
        .parallelism(4)
        .run();
    println!("\nexperiment sweep:");
    print!("{}", report.to_tsv());

    // The workload column round-trips through the spec grammar.
    let spec = WorkloadSpec::parse(&report.records[0].workload).expect("parseable label");
    assert_eq!(spec.name(), "triad");
    println!("\nfirst record's workload spec parses back to: {spec}");
}
