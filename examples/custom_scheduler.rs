//! Plugging a user-defined scheduler into the harness through the open
//! registry — no crate internals touched.
//!
//! Defines a work-stealing variant with a ring-ordered victim scan (a thief
//! walks the cores starting at its right-hand neighbour and steals from the
//! first non-empty deque), registers it under `"ws-ring"`, and runs it
//! through *both* drivers — the abstract executor and the cycle-level CMP
//! simulator — and through an `Experiment` sweep next to the built-ins.
//!
//! ```text
//! cargo run --release --example custom_scheduler
//! ```

use std::collections::VecDeque;

use ccs::dag::TaskId;
use ccs::prelude::*;

/// WS with a ring-ordered victim scan: a thief starts at its right-hand
/// neighbour and takes from the first non-empty deque it meets.  (A truly
/// *confined* scheduler that refuses to steal beyond its neighbour would not
/// be greedy, which the harness requires.)
struct RingStealing {
    deques: Vec<VecDeque<TaskId>>,
    ready: usize,
}

impl RingStealing {
    fn new() -> Self {
        RingStealing {
            deques: Vec::new(),
            ready: 0,
        }
    }
}

impl Scheduler for RingStealing {
    fn init(&mut self, _dag: &Dag, num_cores: usize) {
        self.deques = vec![VecDeque::new(); num_cores.max(1)];
        self.ready = 0;
    }

    fn task_enabled(&mut self, task: TaskId, enabling_core: Option<usize>) {
        let core = enabling_core.unwrap_or(0).min(self.deques.len() - 1);
        self.deques[core].push_front(task);
        self.ready += 1;
    }

    fn next_task(&mut self, core: usize) -> Option<TaskId> {
        let p = self.deques.len();
        let core = core.min(p - 1);
        // Local pop first; then walk the ring so greediness is preserved
        // (the harness requires work to be found whenever any task is ready).
        let task = (0..p).map(|i| (core + i) % p).find_map(|victim| {
            if victim == core {
                self.deques[victim].pop_front()
            } else {
                self.deques[victim].pop_back()
            }
        });
        if task.is_some() {
            self.ready -= 1;
        }
        task
    }

    fn ready_count(&self) -> usize {
        self.ready
    }

    fn name(&self) -> &'static str {
        "ws-ring"
    }
}

fn main() {
    // One registration makes the scheduler addressable by name everywhere.
    SchedulerRegistry::global().register_fn("ws-ring", |_params| Box::new(RingStealing::new()));

    let comp = ccs::workloads::mergesort::build(
        &MergesortParams::new(1 << 15).with_task_working_set(32 * 1024),
    );

    // 1. The abstract executor (no cache model).
    let dag = Dag::from_computation(&comp);
    let schedule = execute(&dag, 8, "ws-ring");
    schedule.validate(&dag).expect("legal schedule");
    println!(
        "executor : {} on 8 cores, makespan {} ({}% utilisation)",
        schedule.scheduler,
        schedule.makespan,
        (schedule.utilization() * 100.0).round()
    );

    // 2. The cycle-level CMP simulator.
    let config = CmpConfig::default_with_cores(8).unwrap().scaled(64);
    let result = simulate(&comp, &config, "ws-ring");
    println!(
        "simulator: {} on {}, {} cycles, {:.3} L2 MPKI",
        result.scheduler,
        result.config_name,
        result.cycles,
        result.l2_mpki()
    );

    // 3. An experiment sweep, side by side with the built-ins.
    let report = Experiment::new(Benchmark::Mergesort)
        .cores(8)
        .scale(256)
        .schedulers(["pdf", "ws", "ws-ring"])
        .run();
    println!("\nexperiment sweep:");
    print!("{}", report.to_tsv());
}
