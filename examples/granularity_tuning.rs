//! Automatic task-granularity selection (Section 6): profile a fine-grained
//! Mergesort once, run the coarsening analysis for several CMP
//! configurations, print the Fig. 7(b) parallelization table, and verify the
//! chosen granularity by re-simulation.
//!
//! ```text
//! cargo run --release --example granularity_tuning
//! ```

use ccs::prelude::*;
use ccs::profile::apply_coarsening;

fn main() {
    let scale = 64u64;
    let n_items = (32u64 << 20) / scale;

    // Start from a very fine-grained program, as Section 6 prescribes.
    let fine = ccs::workloads::mergesort::build(
        &MergesortParams::new(n_items).with_task_working_set(8 * 1024),
    );
    let tree = TaskGroupTree::from_computation(&fine);
    println!(
        "fine-grained mergesort: {} tasks, {} task groups",
        fine.num_tasks(),
        tree.num_groups()
    );

    // One profiling pass answers working-set queries for every candidate
    // cache size at once.
    let sizes: Vec<u64> = (12..=26).map(|p| 1u64 << p).collect();
    let profile = WorkingSetProfile::collect(&fine, &sizes);
    println!(
        "root working set: {} KB\n",
        profile.working_set_bytes(0..fine.num_tasks() as u32) / 1024
    );

    // Coarsen for three scaled default configurations and build Fig. 7(b).
    let mut table = ccs::profile::ParallelizationTable::new();
    let mut plans = Vec::new();
    for cores in [8usize, 16, 32] {
        let cfg = CmpConfig::default_with_cores(cores).unwrap().scaled(scale);
        let target = CoarsenTarget {
            cache_bytes: cfg.l2.capacity,
            num_cores: cores,
        };
        let plan = coarsen(&profile, &tree, target);
        println!(
            "{} cores / {} KB L2: coarsen {} fine tasks into {} tasks (budget {} KB/child)",
            cores,
            cfg.l2.capacity / 1024,
            fine.num_tasks(),
            plan.num_coarse_tasks(),
            target.budget_bytes() / 1024
        );
        table.add(&plan);
        plans.push((cfg, plan));
    }

    println!("\nParallelization table (Fig. 7b):\n{}", table.render());

    // Verify the selection for the 16-core configuration by re-simulating the
    // re-grouped DAG (the Fig. 8 "dag" scheme).
    let (cfg, plan) = &plans[1];
    let coarse = apply_coarsening(&fine, &tree, plan);
    let fine_run = simulate(&fine, cfg, SchedulerKind::Pdf);
    let coarse_run = simulate(&coarse, cfg, SchedulerKind::Pdf);
    println!(
        "16-core PDF execution: fine-grained {} cycles vs auto-coarsened {} cycles ({:+.1}%)",
        fine_run.cycles,
        coarse_run.cycles,
        (coarse_run.cycles as f64 / fine_run.cycles as f64 - 1.0) * 100.0
    );
}
