//! Run the *native* fork-join runtime (real threads, real data) with both
//! scheduling policies and compare wall-clock times on a parallel mergesort.
//!
//! ```text
//! cargo run --release --example native_runtime
//! ```

use std::time::Instant;

use ccs::prelude::*;
use ccs::workloads::native::{par_mergesort, par_sum};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let n = 2_000_000usize;
    let mut rng_state = 0x1357_9BDFu32;
    let input: Vec<u32> = (0..n)
        .map(|_| {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 17;
            rng_state ^= rng_state << 5;
            rng_state
        })
        .collect();
    let mut expect = input.clone();
    expect.sort_unstable();

    println!("parallel mergesort of {n} u32s on {threads} threads\n");
    for policy in [Policy::WorkStealing, Policy::Pdf] {
        let pool = ThreadPool::new(threads, policy);
        let mut data = input.clone();
        let t0 = Instant::now();
        pool.install(|| par_mergesort(&mut data, 64 * 1024));
        let sort_time = t0.elapsed();
        assert_eq!(data, expect, "sorted output must match");

        let nums: Vec<u64> = (0..4_000_000u64).collect();
        let t1 = Instant::now();
        let sum = pool.install(|| par_sum(&nums, 64 * 1024));
        let sum_time = t1.elapsed();
        assert_eq!(sum, (0..4_000_000u64).sum::<u64>());

        println!(
            "{:?}: mergesort {:>8.2?}   reduction {:>8.2?}",
            policy, sort_time, sum_time
        );
    }
    println!("\n(On real hardware the difference between the policies shows up in shared-cache miss counters rather than wall-clock time at this scale; the trace-driven simulator in `ccs-sim` is what reproduces the paper's numbers.)");
}
