//! Figure 1 in miniature: how PDF and WS schedule a parallel Mergesort whose
//! input is about the size of the shared L2 cache, and where the misses come
//! from.
//!
//! The paper's picture: with 8 cores, WS has each core mergesorting its own
//! n/8-sized sub-array, so the aggregate working set (2·C_P) blows the cache
//! and the top log P levels of the recursion miss; PDF has all cores
//! cooperating on one parallel merge at a time, so those levels hit.
//!
//! ```text
//! cargo run --release --example mergesort_sim
//! ```

use ccs::prelude::*;
use ccs::sched::theory::MergesortModel;

fn main() {
    let cores = 8;
    // Scaled-down "default-8" configuration: 8 MB L2 becomes 256 KB.
    let scale = 32;
    let config = CmpConfig::default_with_cores(cores).unwrap().scaled(scale);
    let cache_bytes = config.l2.capacity;

    // Sort an array of exactly C_P bytes, as in Figure 1.
    let n_items = cache_bytes / 4;
    let comp = ccs::workloads::mergesort::build(
        &MergesortParams::new(n_items).with_task_working_set(cache_bytes / (2 * cores as u64)),
    );

    println!(
        "Sorting {} integers ({} KB) on {config}",
        n_items,
        n_items * 4 / 1024
    );
    println!(
        "{} tasks, parallelism {:.1}",
        comp.num_tasks(),
        Dag::from_computation(&comp).parallelism()
    );

    let mut seq_cfg = config.clone();
    seq_cfg.num_cores = 1;
    let seq = simulate(&comp, &seq_cfg, SchedulerKind::Pdf);

    println!("\nscheduler   cycles      speedup  L2 misses  misses/1000instr");
    let mut results = Vec::new();
    for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
        let r = simulate(&comp, &config, kind);
        println!(
            "{:<10} {:>10}  {:>7.2}  {:>9}  {:>10.3}",
            r.scheduler,
            r.cycles,
            r.speedup_over(&seq),
            r.l2.misses,
            r.l2_mpki()
        );
        results.push(r);
    }

    // Compare against the closed-form model of Section 3.
    let model = MergesortModel {
        n_items,
        item_bytes: 4,
        line_bytes: 128,
    };
    println!("\nSection 3 model:");
    println!(
        "  M_pdf ~ (N/B)*log2(N/C_P) = {:.0} lines",
        model.misses_with_cache(cache_bytes)
    );
    println!(
        "  M_ws  ~ M_pdf + (N/B)*log2(P) = {:.0} lines",
        model.ws_misses(cache_bytes, cores)
    );
    let reduction = results[0].mpki_reduction_vs(&results[1]);
    println!(
        "\nPDF reduces L2 misses per instruction by {reduction:.1}% relative to WS \
         (the paper reports 13.8%-40.6% for Mergesort)."
    );
}
