//! Quickstart: build a workload, simulate it on a paper CMP configuration
//! under both schedulers, and print the metrics the paper reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ccs::prelude::*;

fn main() {
    // A Mergesort of 2^16 integers with ~32 KB task working sets (scaled-down
    // version of the paper's 32M-integer run).
    let comp = ccs::workloads::mergesort::build(
        &MergesortParams::new(1 << 16).with_task_working_set(32 * 1024),
    );
    println!(
        "workload: mergesort, {} tasks, {} memory references, {} instructions",
        comp.num_tasks(),
        comp.total_refs(),
        comp.total_work()
    );

    // The paper's 8-core default configuration (Table 2), with caches scaled
    // down by 64x to match the scaled-down input.
    let config = CmpConfig::default_with_cores(8).unwrap().scaled(64);
    println!("configuration: {config}");

    // One-core baseline for speedups.
    let mut seq_cfg = config.clone();
    seq_cfg.num_cores = 1;
    let seq = simulate(&comp, &seq_cfg, SchedulerKind::Pdf);

    for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
        let r = simulate(&comp, &config, kind);
        println!(
            "{:>4}: {:>12} cycles | speedup {:>5.2}x | L2 misses/1000 instr {:>6.3} | bandwidth {:>5.1}%",
            r.scheduler,
            r.cycles,
            r.speedup_over(&seq),
            r.l2_mpki(),
            r.bandwidth_utilization * 100.0
        );
    }

    // The same comparison on the pure scheduling level (no cache model):
    // both schedulers are greedy, so their makespans match — the difference
    // is entirely in cache behaviour.
    let dag = Dag::from_computation(&comp);
    let pdf = execute(&dag, 8, SchedulerKind::Pdf);
    let ws = execute(&dag, 8, SchedulerKind::WorkStealing);
    println!(
        "cache-less makespans: pdf {} vs ws {} (identical work, both greedy)",
        pdf.makespan, ws.makespan
    );
}
