//! Quickstart: run a Mergesort experiment on a paper CMP configuration under
//! both schedulers through the unified `Experiment` API, print the metrics
//! the paper reports, and emit the machine-readable report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ccs::prelude::*;

fn main() {
    // A Mergesort at 1/64 of the paper's input size on the paper's 8-core
    // default configuration (Table 2), caches scaled to match.
    let report = Experiment::new(Benchmark::Mergesort)
        .cores(8)
        .scale(64)
        .schedulers([SchedulerKind::Pdf, SchedulerKind::WorkStealing])
        .run();

    println!("experiment: {} (scale 1/{})\n", report.name, report.scale);
    for r in &report.records {
        println!(
            "{:>4}: {:>12} cycles | speedup {:>5.2}x | L2 misses/1000 instr {:>6.3} | bandwidth {:>5.1}%",
            r.scheduler_label(),
            r.cycles,
            r.speedup_over_seq.unwrap_or(0.0),
            r.l2_mpki,
            r.bandwidth_utilization * 100.0
        );
    }

    let pdf = report.for_scheduler("pdf").next().expect("pdf record");
    let ws = report.for_scheduler("ws").next().expect("ws record");
    let reduction = pdf.mpki_reduction_vs(ws);
    println!(
        "\nPDF reduces L2 misses per instruction by {reduction:.1}% vs WS \
         (the paper reports 13.2%–38.5% across benchmarks)."
    );

    // The report is serialisable — this is what the experiment binaries
    // write with --json.
    println!("\nJSON report:\n{}", report.to_json());
}
