//! Design-space exploration with Hash Join: how many cores should a 45 nm die
//! devote to compute versus cache?  (The Figure 3 / Section 5.2 question.)
//!
//! Sweeps a few of the Table 3 single-technology design points through one
//! `Experiment`, showing that with PDF a wide range of core counts reaches
//! near-best performance — the "larger freedom in the choice of design
//! points" argument — while Hash Join eventually becomes bandwidth-bound.
//!
//! ```text
//! cargo run --release --example hashjoin_design_space
//! ```

use ccs::prelude::*;

fn main() {
    let scale = 64u64;
    println!("Hash Join on 45nm design points (inputs and caches scaled by 1/{scale})\n");

    let report = Experiment::new(Benchmark::HashJoin)
        .configs(
            CmpConfig::single_tech_45nm()
                .into_iter()
                .filter(|cfg| [2usize, 8, 14, 18, 22, 26].contains(&cfg.num_cores)),
        )
        .schedulers([SchedulerKind::Pdf, SchedulerKind::WorkStealing])
        .scale(scale)
        .sequential_baseline(false)
        .run();

    println!("cores  sched  cycles        bw_util  L2 mpki");
    for r in &report.records {
        println!(
            "{:>5}  {:<5}  {:>12}  {:>6.1}%  {:>7.3}",
            r.cores,
            r.scheduler,
            r.cycles,
            r.bandwidth_utilization * 100.0,
            r.l2_mpki
        );
    }

    if let Some(best) = report.for_scheduler("pdf").min_by_key(|r| r.cycles) {
        println!(
            "\nBest PDF design point in this sweep: {} cores ({} cycles).  \
             The paper finds Hash Join bottoms out around ~18 cores as it saturates \
             memory bandwidth; check the bw_util column for the same effect.",
            best.cores, best.cycles
        );
    }
}
