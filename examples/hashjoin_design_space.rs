//! Design-space exploration with Hash Join: how many cores should a 45 nm die
//! devote to compute versus cache?  (The Figure 3 / Section 5.2 question.)
//!
//! Sweeps a few of the Table 3 single-technology design points, showing that
//! with PDF a wide range of core counts reaches near-best performance — the
//! "larger freedom in the choice of design points" argument — while Hash Join
//! eventually becomes bandwidth-bound.
//!
//! ```text
//! cargo run --release --example hashjoin_design_space
//! ```

use ccs::prelude::*;

fn main() {
    let scale = 64u64;
    println!("Hash Join on 45nm design points (inputs and caches scaled by 1/{scale})\n");
    println!("cores  L2(KB,scaled)  sched  cycles        bw_util  L2 mpki");

    let mut best: Option<(usize, u64)> = None;
    for cfg in CmpConfig::single_tech_45nm() {
        if ![2usize, 8, 14, 18, 22, 26].contains(&cfg.num_cores) {
            continue;
        }
        let scaled = cfg.scaled(scale);
        let comp = Benchmark::HashJoin.build_scaled(scale, scaled.l2.capacity, cfg.num_cores);
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
            let r = simulate(&comp, &scaled, kind);
            println!(
                "{:>5}  {:>13}  {:<5}  {:>12}  {:>6.1}%  {:>7.3}",
                cfg.num_cores,
                scaled.l2.capacity / 1024,
                r.scheduler,
                r.cycles,
                r.bandwidth_utilization * 100.0,
                r.l2_mpki()
            );
            if kind == SchedulerKind::Pdf
                && best.map(|(_, c)| r.cycles < c).unwrap_or(true)
            {
                best = Some((cfg.num_cores, r.cycles));
            }
        }
    }

    if let Some((cores, cycles)) = best {
        println!(
            "\nBest PDF design point in this sweep: {cores} cores ({cycles} cycles).  \
             The paper finds Hash Join bottoms out around ~18 cores as it saturates \
             memory bandwidth; check the bw_util column for the same effect."
        );
    }
}
