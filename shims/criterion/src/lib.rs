//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides `criterion_group!` / `criterion_main!`, [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Throughput`] and [`black_box`].
//! Instead of criterion's statistical analysis it runs each benchmark for a
//! small fixed time budget and prints mean wall-clock time per iteration
//! (plus throughput when declared) — enough to compare hot paths locally
//! while keeping `cargo bench` working without network access.  See
//! `shims/README.md` for why the workspace vendors its dependencies.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput declaration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from just a parameter (used inside groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The display string for this id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Repeatedly run `f`, timing each batch, until the time budget is spent.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up (untimed).
        black_box(f());
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{label:<50} (no iterations)");
            return;
        }
        let per_iter = self.total / self.iters as u32;
        let mut line = format!("{label:<50} {per_iter:>12.2?}/iter ({} iters)", self.iters);
        if let Some(tp) = throughput {
            let secs = per_iter.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.3} Melem/s", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  {:.3} MiB/s",
                        n as f64 / secs / (1 << 20) as f64
                    ));
                }
            }
        }
        println!("{line}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare the throughput of subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim uses a time budget instead of
    /// a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrink or grow the per-benchmark time budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget: self.budget,
        };
        f(&mut b);
        b.report(&label, self.throughput);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget: self.budget,
        };
        f(&mut b, input);
        b.report(&label, self.throughput);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim uses a time budget instead
    /// of a sample count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Set the per-benchmark time budget (criterion's `measurement_time`).
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            budget,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.into_id();
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget: self.budget,
        };
        f(&mut b);
        b.report(&label, None);
        self
    }
}

/// Group benchmark functions under one registration point.  Supports both
/// the short form (`criterion_group!(benches, f, g)`) and the long form with
/// an explicit `config`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.sample_size(10);
        let mut ran = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran > 0);
    }
}
