//! Offline stand-in for the subset of `crossbeam-deque` this workspace uses.
//!
//! Provides [`Worker`], [`Stealer`], [`Injector`] and [`Steal`] with the same
//! ownership/stealing semantics as the real crate — per-owner LIFO pops,
//! FIFO steals from the opposite end, a shared FIFO injector — implemented
//! over a mutex-protected `VecDeque` rather than a lock-free Chase-Lev deque.
//! Correctness and API shape are identical for this workspace's thread pool;
//! only raw throughput under contention differs.  See `shims/README.md`.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The result of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was empty.
    Empty,
    /// One item was stolen.
    Success(T),
    /// The operation lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

fn locked<T, R>(q: &Mutex<T>, f: impl FnOnce(&mut T) -> R) -> R {
    let mut guard = q.lock().unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

/// Maximum number of items a single batch steal moves (matches the real
/// crate's `MAX_BATCH`).
const MAX_BATCH: usize = 32;

/// Drain up to `ceil(len/2)` items (capped at `limit`) from the front of
/// `src` — the steal end — preserving FIFO order.
fn take_batch<T>(src: &mut VecDeque<T>, limit: usize) -> Vec<T> {
    let want = src.len().div_ceil(2).min(limit);
    src.drain(..want).collect()
}

/// A worker-owned deque.  The owner pushes and pops at the "top"; stealers
/// take from the "bottom".
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
    lifo: bool,
}

impl<T> Worker<T> {
    /// A deque whose owner pops the most recently pushed item first.
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: true,
        }
    }

    /// A deque whose owner pops the oldest item first.
    pub fn new_fifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: false,
        }
    }

    /// Push an item onto the owner's end.
    pub fn push(&self, item: T) {
        locked(&self.queue, |q| q.push_back(item));
    }

    /// Pop an item from the owner's end.
    pub fn pop(&self) -> Option<T> {
        locked(&self.queue, |q| {
            if self.lifo {
                q.pop_back()
            } else {
                q.pop_front()
            }
        })
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue, |q| q.is_empty())
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        locked(&self.queue, |q| q.len())
    }

    /// Create a stealer handle onto this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// A handle that can steal from a [`Worker`]'s opposite end.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steal the oldest item (the end opposite the owner's LIFO pops).
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue, |q| q.pop_front()) {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue, |q| q.is_empty())
    }

    /// Steal a batch of items — up to half the source, capped at
    /// `MAX_BATCH` — and push them onto `dest` in steal (FIFO) order.
    ///
    /// Like the real crate: returns `Steal::Empty` when the source had
    /// nothing, `Steal::Success(())` when at least one item moved.  `dest`
    /// must not be the source deque (the real crate's contract; this shim
    /// would deadlock on the shared mutex).
    pub fn steal_batch(&self, dest: &Worker<T>) -> Steal<()> {
        let batch = locked(&self.queue, |q| take_batch(q, MAX_BATCH));
        if batch.is_empty() {
            return Steal::Empty;
        }
        locked(&dest.queue, |q| q.extend(batch));
        Steal::Success(())
    }

    /// Steal a batch of items and additionally pop one: the first stolen
    /// item is returned, the rest (up to `MAX_BATCH`) are pushed onto
    /// `dest` in steal order.  `dest` must not be the source deque.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let batch = locked(&self.queue, |q| take_batch(q, MAX_BATCH + 1));
        let mut batch = batch.into_iter();
        let Some(first) = batch.next() else {
            return Steal::Empty;
        };
        locked(&dest.queue, |q| q.extend(batch));
        Steal::Success(first)
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// A shared FIFO queue for jobs injected from outside the pool.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push an item onto the back of the queue.
    pub fn push(&self, item: T) {
        locked(&self.queue, |q| q.push_back(item));
    }

    /// Steal the oldest item.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue, |q| q.pop_front()) {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Steal a batch of items — up to half the queue, capped at
    /// `MAX_BATCH` — and push them onto `dest` in FIFO order.
    pub fn steal_batch(&self, dest: &Worker<T>) -> Steal<()> {
        let batch = locked(&self.queue, |q| take_batch(q, MAX_BATCH));
        if batch.is_empty() {
            return Steal::Empty;
        }
        locked(&dest.queue, |q| q.extend(batch));
        Steal::Success(())
    }

    /// Steal a batch of items and pop one: the oldest queued item is
    /// returned, the rest of the batch lands on `dest` in FIFO order.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let batch = locked(&self.queue, |q| take_batch(q, MAX_BATCH + 1));
        let mut batch = batch.into_iter();
        let Some(first) = batch.next() else {
            return Steal::Empty;
        };
        locked(&dest.queue, |q| q.extend(batch));
        Steal::Success(first)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue, |q| q.is_empty())
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        locked(&self.queue, |q| q.len())
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_stealer() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        // Owner pops newest; stealer takes oldest.
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), Steal::Success("a"));
        assert_eq!(inj.steal(), Steal::Success("b"));
        assert_eq!(inj.steal(), Steal::Empty);
        assert!(inj.is_empty());
    }

    #[test]
    fn steal_batch_and_pop_takes_half_in_fifo_order() {
        let victim = Worker::new_lifo();
        let thief = Worker::new_lifo();
        for i in 0..8 {
            victim.push(i);
        }
        // Half of 8 = 4 items leave the victim: the oldest is returned,
        // the next three land on the thief in steal (FIFO) order.
        let s = victim.stealer();
        assert_eq!(s.steal_batch_and_pop(&thief), Steal::Success(0));
        assert_eq!(victim.len(), 4);
        assert_eq!(thief.len(), 3);
        // LIFO owner pops the most recently pushed stolen item first.
        assert_eq!(thief.pop(), Some(3));
        assert_eq!(thief.pop(), Some(2));
        assert_eq!(thief.pop(), Some(1));
        assert_eq!(thief.pop(), None);
        // The victim kept its own LIFO end intact.
        assert_eq!(victim.pop(), Some(7));
    }

    #[test]
    fn steal_batch_respects_max_batch_limit() {
        let victim = Worker::new_lifo();
        let thief = Worker::new_fifo();
        for i in 0..200 {
            victim.push(i);
        }
        // Half of 200 would be 100, but the cap is MAX_BATCH.
        assert_eq!(victim.stealer().steal_batch(&thief), Steal::Success(()));
        assert_eq!(thief.len(), MAX_BATCH);
        // FIFO thief drains the stolen run in original order.
        assert_eq!(thief.pop(), Some(0));
        assert_eq!(thief.pop(), Some(1));
        // And steal_batch_and_pop moves at most MAX_BATCH + 1.
        let thief2 = Worker::new_fifo();
        assert_eq!(
            victim.stealer().steal_batch_and_pop(&thief2),
            Steal::Success(MAX_BATCH as i32)
        );
        assert_eq!(thief2.len(), MAX_BATCH);
    }

    #[test]
    fn batch_steal_from_empty_sources_is_empty() {
        let victim: Worker<u32> = Worker::new_lifo();
        let thief = Worker::new_lifo();
        assert_eq!(victim.stealer().steal_batch(&thief), Steal::Empty);
        assert_eq!(victim.stealer().steal_batch_and_pop(&thief), Steal::Empty);
        let inj: Injector<u32> = Injector::new();
        assert_eq!(inj.steal_batch(&thief), Steal::Empty);
        assert_eq!(inj.steal_batch_and_pop(&thief), Steal::Empty);
        assert!(thief.is_empty());
    }

    #[test]
    fn injector_batch_steal_preserves_fifo() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let dest = Worker::new_fifo();
        // ceil(10/2) = 5 items move: one popped, four onto dest.
        assert_eq!(inj.steal_batch_and_pop(&dest), Steal::Success(0));
        assert_eq!(dest.len(), 4);
        for want in 1..5 {
            assert_eq!(dest.pop(), Some(want));
        }
        assert_eq!(inj.len(), 5);
        assert_eq!(inj.steal(), Steal::Success(5));
    }

    #[test]
    fn concurrent_batch_steals_lose_nothing() {
        let victim = Worker::new_lifo();
        let total = 10_000;
        for i in 0..total {
            victim.push(i);
        }
        let stealers: Vec<_> = (0..4).map(|_| victim.stealer()).collect();
        let stolen: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = stealers
                .iter()
                .map(|s| {
                    scope.spawn(move || {
                        let local = Worker::new_lifo();
                        let mut count = 0;
                        while s.steal_batch_and_pop(&local).success().is_some() {
                            count += 1; // the popped item
                            while local.pop().is_some() {
                                count += 1;
                            }
                        }
                        count
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let mut kept = 0;
        while victim.pop().is_some() {
            kept += 1;
        }
        assert_eq!(stolen + kept, total);
    }

    #[test]
    fn cross_thread_stealing() {
        let w = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let stealers: Vec<_> = (0..4).map(|_| w.stealer()).collect();
        let total: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = stealers
                .iter()
                .map(|s| {
                    scope.spawn(move || {
                        let mut count = 0;
                        while s.steal().success().is_some() {
                            count += 1;
                        }
                        count
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(
            total + {
                let mut c = 0;
                while w.pop().is_some() {
                    c += 1;
                }
                c
            },
            1000
        );
    }
}
