//! Offline stand-in for the subset of `crossbeam-deque` this workspace uses.
//!
//! Provides [`Worker`], [`Stealer`], [`Injector`] and [`Steal`] with the same
//! ownership/stealing semantics as the real crate — per-owner LIFO pops,
//! FIFO steals from the opposite end, a shared FIFO injector — implemented
//! over a mutex-protected `VecDeque` rather than a lock-free Chase-Lev deque.
//! Correctness and API shape are identical for this workspace's thread pool;
//! only raw throughput under contention differs.  See `shims/README.md`.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The result of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was empty.
    Empty,
    /// One item was stolen.
    Success(T),
    /// The operation lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

fn locked<T, R>(q: &Mutex<T>, f: impl FnOnce(&mut T) -> R) -> R {
    let mut guard = q.lock().unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

/// A worker-owned deque.  The owner pushes and pops at the "top"; stealers
/// take from the "bottom".
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
    lifo: bool,
}

impl<T> Worker<T> {
    /// A deque whose owner pops the most recently pushed item first.
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: true,
        }
    }

    /// A deque whose owner pops the oldest item first.
    pub fn new_fifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
            lifo: false,
        }
    }

    /// Push an item onto the owner's end.
    pub fn push(&self, item: T) {
        locked(&self.queue, |q| q.push_back(item));
    }

    /// Pop an item from the owner's end.
    pub fn pop(&self) -> Option<T> {
        locked(&self.queue, |q| {
            if self.lifo {
                q.pop_back()
            } else {
                q.pop_front()
            }
        })
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue, |q| q.is_empty())
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        locked(&self.queue, |q| q.len())
    }

    /// Create a stealer handle onto this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// A handle that can steal from a [`Worker`]'s opposite end.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steal the oldest item (the end opposite the owner's LIFO pops).
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue, |q| q.pop_front()) {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue, |q| q.is_empty())
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// A shared FIFO queue for jobs injected from outside the pool.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push an item onto the back of the queue.
    pub fn push(&self, item: T) {
        locked(&self.queue, |q| q.push_back(item));
    }

    /// Steal the oldest item.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue, |q| q.pop_front()) {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue, |q| q.is_empty())
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        locked(&self.queue, |q| q.len())
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_stealer() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        // Owner pops newest; stealer takes oldest.
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), Steal::Success("a"));
        assert_eq!(inj.steal(), Steal::Success("b"));
        assert_eq!(inj.steal(), Steal::Empty);
        assert!(inj.is_empty());
    }

    #[test]
    fn cross_thread_stealing() {
        let w = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let stealers: Vec<_> = (0..4).map(|_| w.stealer()).collect();
        let total: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = stealers
                .iter()
                .map(|s| {
                    scope.spawn(move || {
                        let mut count = 0;
                        while s.steal().success().is_some() {
                            count += 1;
                        }
                        count
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(
            total + {
                let mut c = 0;
                while w.pop().is_some() {
                    c += 1;
                }
                c
            },
            1000
        );
    }
}
