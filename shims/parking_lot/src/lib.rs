//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! Implemented over `std::sync` primitives: the distinguishing `parking_lot`
//! API properties that callers rely on are preserved — `lock()` returns the
//! guard directly (no poisoning: a poisoned std lock is recovered, matching
//! `parking_lot`'s panic-transparent behaviour), and `Condvar::wait` takes
//! `&mut MutexGuard` instead of consuming it.  See `shims/README.md` for why
//! the workspace vendors its external dependencies.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutex that does not poison and whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Outcome of a [`Condvar::wait_for`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
    // std::sync::Condvar panics if used with two different mutexes; harmless
    // here, but keep a flag so misuse in this workspace would surface in
    // tests the same way parking_lot's debug assertions would.
    used: AtomicBool,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            used: AtomicBool::new(false),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.used.store(true, Ordering::Relaxed);
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Block until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.used.store(true, Ordering::Relaxed);
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, t)) => (g, t),
            Err(e) => {
                let (g, t) = e.into_inner();
                (g, t)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
