//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest!` macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]` header, range and
//! `prop::collection::vec` strategies, and `prop_assert!` /
//! `prop_assert_eq!`.  Each test runs `cases` deterministic random cases
//! (seeded per case index), so failures are reproducible; there is no
//! shrinking.  See `shims/README.md` for why the workspace vendors its
//! external dependencies.

#![warn(missing_docs)]

/// Deterministic per-case RNG (SplitMix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one test case.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for the bounds used in tests.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Generates random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every drawn value with `f` (mirrors
    /// `proptest::strategy::Strategy::prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Erase the strategy type (used by [`prop_oneof!`]).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Uniform choice between same-valued strategies (the [`prop_oneof!`]
/// backing type).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].sample(rng)
    }
}

/// Uniformly choose one of several strategies producing the same value
/// type (mirrors `proptest::prop_oneof!`, without arm weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Types with a canonical full-range strategy (mirrors
/// `proptest::arbitrary::Arbitrary` for the primitives the tests use).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-range strategy for an [`Arbitrary`] type (mirrors
/// `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u64, u32, usize);

/// Error type carried by `prop_assert!` failures.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Strategy combinators, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy producing `Vec`s of values from `elem`, with a length
        /// drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: std::ops::Range<usize>,
        }

        /// A `Vec` strategy: each element from `elem`, length from `len`.
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.sample(rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert a condition inside a `proptest!` body, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError { message: format!($($fmt)*) });
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

/// Define property tests.  Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for __case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(__case as u64);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = __result {
                    panic!(
                        "proptest case {} failed: {}\n  inputs: {}",
                        __case,
                        e,
                        [$(format!("{} = {:?}", stringify!($arg), &$arg)),+].join(", ")
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 1usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn vecs_respect_length(v in prop::collection::vec(0u64..5, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for &e in &v {
                prop_assert!(e < 5, "element {} out of range", e);
            }
        }

        #[test]
        fn map_tuples_any_and_oneof_compose(
            pair in (0u64..10, 1u32..5).prop_map(|(a, b)| a + b as u64),
            flag in any::<bool>(),
            either in prop_oneof![(0u64..3).prop_map(|x| x * 2), 100u64..103],
        ) {
            prop_assert!(pair < 15);
            prop_assert!(flag as u64 <= 1);
            prop_assert!(either <= 4 || (100..103).contains(&either), "{}", either);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0u64..10) {
                    prop_assert_eq!(x, 12345);
                }
            }
            always_fails();
        });
        assert!(r.is_err());
    }

    #[test]
    fn deterministic_sampling() {
        let s = prop::collection::vec(0u64..100, 5..50);
        let a = s.sample(&mut TestRng::for_case(9));
        let b = s.sample(&mut TestRng::for_case(9));
        assert_eq!(a, b);
    }

    use crate::{Strategy, TestRng};
}
