//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! minimal, API-compatible implementations of its external dependencies under
//! `shims/` (see `shims/README.md`).  This crate covers exactly the surface
//! the `ccs` crates need: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand`'s 64-bit `SmallRng` uses — so it is a high-quality,
//! deterministic, seedable small RNG, though the exact streams differ from
//! upstream `rand` (nothing in this workspace depends on upstream streams,
//! only on determinism for a fixed seed).

#![warn(missing_docs)]

/// A type that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods, mirroring `rand::Rng` for the subset used here.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a uniform value over the full range of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Sample uniformly from a range (`start..end` or `start..=end`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random mantissa bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Marker for types `gen()` can produce.
pub trait Standard {
    /// Build a value from 64 uniform random bits.
    fn from_u64(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}
impl Standard for u32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}
impl Standard for usize {
    fn from_u64(bits: u64) -> Self {
        bits as usize
    }
}
impl Standard for bool {
    fn from_u64(bits: u64) -> Self {
        bits >> 63 == 1
    }
}
impl Standard for f64 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types `gen_range` can sample.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample from `[low, high)` (half-open).
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self;
    /// The largest representable value (used for inclusive ranges).
    fn checked_inc(self) -> Option<Self>;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_half_open(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high - low) as u64;
                // Debiased multiply-shift (Lemire); span ≤ u64::MAX here.
                let mut x = rng();
                let threshold = span.wrapping_neg() % span;
                loop {
                    let (hi, lo) = {
                        let m = (x as u128) * (span as u128);
                        ((m >> 64) as u64, m as u64)
                    };
                    if lo >= threshold {
                        return low + hi as $t;
                    }
                    x = rng();
                }
            }
            fn checked_inc(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_uniform_uint!(u64, u32, usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let mut next = || rng.next_u64();
        T::sample_half_open(&mut next, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        match high.checked_inc() {
            Some(h) => {
                let mut next = || rng.next_u64();
                T::sample_half_open(&mut next, low, h)
            }
            // `low..=MAX`: fall back to rejection-free masking over the whole
            // span; only reachable for degenerate full-range requests.
            None => {
                let mut next = || rng.next_u64();
                if low == high {
                    low
                } else {
                    T::sample_half_open(&mut next, low, high)
                }
            }
        }
    }
}

/// The RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..7);
            assert!(y < 7);
            let z: u32 = rng.gen_range(0..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 hits: {hits}");
    }

    #[test]
    fn gen_produces_varied_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a: u32 = rng.gen();
        let b: u32 = rng.gen();
        let c: u64 = rng.gen();
        assert!(a != b || b as u64 != c);
    }
}
