//! # ccs — Constructive Cache Sharing on CMPs
//!
//! An open-source Rust reproduction of **Chen et al., "Scheduling Threads for
//! Constructive Cache Sharing on CMPs", SPAA 2007**: the Parallel Depth First
//! (PDF) and Work Stealing (WS) schedulers, the trace-driven CMP simulator
//! used for the paper's evaluation, the benchmark workloads, the one-pass
//! working-set profiler, the automatic task-coarsening algorithm, and a
//! native fork-join runtime with pluggable WS/PDF policies.
//!
//! This meta-crate re-exports the individual crates:
//!
//! * [`dag`] (ccs-dag) — computation DAGs, tasks, memory traces, task groups;
//! * [`cache`] (ccs-cache) — cache models, LRU stack distances, memory model;
//! * [`sched`] (ccs-sched) — the PDF and WS schedulers and the greedy executor;
//! * [`sim`] (ccs-sim) — CMP configurations (Tables 1–3), area model, and the
//!   cycle-level trace-driven simulator;
//! * [`workloads`] (ccs-workloads) — LU, Hash Join, Mergesort and the
//!   secondary benchmarks, as trace generators and native kernels;
//! * [`profile`] (ccs-profile) — the LruTree working-set profiler and
//!   automatic task coarsening;
//! * [`runtime`] (ccs-runtime) — the native fork-join thread pool;
//! * [`experiment`] (ccs-experiment) — the unified experiment layer:
//!   builder-style run sessions, the open scheduler registry's
//!   [`SchedulerSpec`](ccs_sched::SchedulerSpec) selectors, and serialisable
//!   JSON/CSV reports.
//!
//! ## Quick start
//!
//! The [`Experiment`](ccs_experiment::Experiment) builder is the canonical
//! entry point — it fans a workload × scheduler × configuration
//! cross-product into a serialisable report:
//!
//! ```
//! use ccs::prelude::*;
//!
//! let report = Experiment::new(Benchmark::Mergesort)
//!     .cores(8)
//!     .scale(512)
//!     .schedulers([SchedulerKind::Pdf, SchedulerKind::WorkStealing])
//!     .run();
//! let pdf = report.for_scheduler("pdf").next().unwrap();
//! let ws = report.for_scheduler("ws").next().unwrap();
//! assert!(pdf.l2_misses <= ws.l2_misses, "PDF shares the cache constructively");
//! assert_eq!(Report::from_json(&report.to_json()).unwrap(), report);
//! ```
//!
//! The lower-level entry points remain available, and accept anything that
//! converts into a [`SchedulerSpec`](ccs_sched::SchedulerSpec) — a
//! [`SchedulerKind`](ccs_sched::SchedulerKind), a registry name like
//! `"pdf"`, or a seeded spec:
//!
//! ```
//! use ccs::prelude::*;
//!
//! let comp = ccs::workloads::mergesort::build(
//!     &MergesortParams::new(1 << 15).with_task_working_set(32 * 1024),
//! );
//! let config = CmpConfig::default_with_cores(8).unwrap().scaled(64);
//! let pdf = simulate(&comp, &config, "pdf");
//! let ws = simulate(&comp, &config, SchedulerKind::WorkStealing);
//! assert!(pdf.l2.misses <= ws.l2.misses, "PDF shares the cache constructively");
//! ```
//!
//! Workloads are just as open as schedulers: every workload-accepting entry
//! point takes a parseable [`WorkloadSpec`](ccs_experiment::WorkloadSpec)
//! (`"mergesort"`, `"matmul:n=512"`, `"heat:rows=1024,cols=1024,steps=8"`)
//! resolved through
//! [`WorkloadRegistry::global`](ccs_workloads::WorkloadRegistry::global),
//! which pre-registers all six built-in kernels:
//!
//! ```
//! use ccs::prelude::*;
//!
//! let report = Experiment::named("extras")
//!     .workloads(["quicksort", "matmul:n=128", "heat:rows=64,cols=64"])
//!     .cores(4)
//!     .scale(1024)
//!     .schedulers(["pdf", "ws"])
//!     .parallelism(4) // fan the sweep across our own fork-join pool
//!     .run();
//! assert_eq!(report.len(), 3 * 2);
//! ```
//!
//! User-defined schedulers registered with
//! [`SchedulerRegistry::global`](ccs_sched::SchedulerRegistry::global) and
//! user-defined workloads registered with
//! [`WorkloadRegistry::global`](ccs_workloads::WorkloadRegistry::global) run
//! through both [`execute`](ccs_sched::execute) and
//! [`simulate`](ccs_sim::simulate) — and therefore through experiments —
//! without touching crate internals; see `examples/custom_scheduler.rs` and
//! `examples/custom_workload.rs`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ccs_cache as cache;
pub use ccs_dag as dag;
pub use ccs_experiment as experiment;
pub use ccs_profile as profile;
pub use ccs_runtime as runtime;
pub use ccs_sched as sched;
pub use ccs_sim as sim;
pub use ccs_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use ccs_cache::{CacheConfig, MemoryConfig};
    pub use ccs_dag::{Computation, ComputationBuilder, Dag, GroupMeta, TaskGroupTree, TaskId};
    pub use ccs_experiment::{Experiment, Options, Report, RunRecord, WorkloadSpec};
    pub use ccs_profile::{coarsen, CoarsenTarget, WorkingSetProfile};
    pub use ccs_runtime::{join, Policy, ThreadPool};
    pub use ccs_sched::{
        execute, Scheduler, SchedulerFactory, SchedulerKind, SchedulerParams, SchedulerRegistry,
        SchedulerSpec,
    };
    pub use ccs_sim::{simulate, CmpConfig, SimResult, Technology};
    pub use ccs_workloads::{
        Benchmark, BuildCtx, HashJoinParams, LuParams, MergesortParams, WorkloadFactory,
        WorkloadRegistry,
    };
}
