//! # ccs — Constructive Cache Sharing on CMPs
//!
//! An open-source Rust reproduction of **Chen et al., "Scheduling Threads for
//! Constructive Cache Sharing on CMPs", SPAA 2007**: the Parallel Depth First
//! (PDF) and Work Stealing (WS) schedulers, the trace-driven CMP simulator
//! used for the paper's evaluation, the benchmark workloads, the one-pass
//! working-set profiler, the automatic task-coarsening algorithm, and a
//! native fork-join runtime with pluggable WS/PDF policies.
//!
//! This meta-crate re-exports the individual crates:
//!
//! * [`dag`] (ccs-dag) — computation DAGs, tasks, memory traces, task groups;
//! * [`cache`] (ccs-cache) — cache models, LRU stack distances, memory model;
//! * [`sched`] (ccs-sched) — the PDF and WS schedulers and the greedy executor;
//! * [`sim`] (ccs-sim) — CMP configurations (Tables 1–3), area model, and the
//!   cycle-level trace-driven simulator;
//! * [`workloads`] (ccs-workloads) — LU, Hash Join, Mergesort and the
//!   secondary benchmarks, as trace generators and native kernels;
//! * [`profile`] (ccs-profile) — the LruTree working-set profiler and
//!   automatic task coarsening;
//! * [`runtime`] (ccs-runtime) — the native fork-join thread pool.
//!
//! ## Quick start
//!
//! ```
//! use ccs::prelude::*;
//!
//! // Build a (small) Mergesort computation, simulate it on the paper's
//! // 8-core default CMP configuration under both schedulers, and compare.
//! let comp = ccs::workloads::mergesort::build(
//!     &MergesortParams::new(1 << 15).with_task_working_set(32 * 1024),
//! );
//! let config = CmpConfig::default_with_cores(8).unwrap().scaled(64);
//! let pdf = simulate(&comp, &config, SchedulerKind::Pdf);
//! let ws = simulate(&comp, &config, SchedulerKind::WorkStealing);
//! assert!(pdf.l2.misses <= ws.l2.misses, "PDF shares the cache constructively");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ccs_cache as cache;
pub use ccs_dag as dag;
pub use ccs_profile as profile;
pub use ccs_runtime as runtime;
pub use ccs_sched as sched;
pub use ccs_sim as sim;
pub use ccs_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use ccs_cache::{CacheConfig, MemoryConfig};
    pub use ccs_dag::{Computation, ComputationBuilder, Dag, GroupMeta, TaskGroupTree, TaskId};
    pub use ccs_profile::{coarsen, CoarsenTarget, WorkingSetProfile};
    pub use ccs_runtime::{join, Policy, ThreadPool};
    pub use ccs_sched::{execute, Scheduler, SchedulerKind};
    pub use ccs_sim::{simulate, CmpConfig, SimResult, Technology};
    pub use ccs_workloads::{Benchmark, HashJoinParams, LuParams, MergesortParams};
}
