//! Parallel Mergesort workload (Section 4.2).
//!
//! Structured after `libpmsort` with the serial merge replaced by a *parallel
//! merge*: `k` splitting points are selected from the two sorted sub-arrays
//! (by binary search) so the merge proceeds as `k` independent chunk merges.
//!
//! The generator produces the computation DAG plus per-task cache-line-level
//! memory traces.  Sorting a sub-array of `n` bytes uses `2n` bytes of memory
//! — the input buffer and an auxiliary buffer that ping-pong between
//! recursion levels — exactly the layout Figure 1 illustrates.
//!
//! Granularity knobs (Figure 6 / Section 6.2):
//!
//! * [`MergesortParams::base_task_items`] — sub-arrays of at most this many
//!   items are sorted sequentially as a single task.  The *task working set*
//!   is twice the sub-array size (`2n` bytes);
//! * [`MergesortParams::merge_tasks_per_level`] — the aggregate number of
//!   merge tasks per recursion level (the paper's default is 64);
//! * [`MergesortParams::coarse`] — reproduce the original coarse-grained code
//!   (serial merge) used for the comparison in Section 5.4.

use ccs_dag::{
    AddressSpace, CallSite, Computation, ComputationBuilder, GroupMeta, Region, SpNodeId,
};

/// Instruction-cost constants (instructions per item) for the synthetic
/// traces.  These only affect absolute cycle counts, not the PDF/WS
/// comparison.
const SORT_INSTR_PER_ITEM_PER_LEVEL: u64 = 4;
const MERGE_INSTR_PER_ITEM: u64 = 6;
const BINARY_SEARCH_INSTR: u64 = 32;
/// Instructions charged to the strand that spawns a fork-join block.
const SPAWN_COST: u64 = 24;

/// Parameters of the Mergesort workload.
#[derive(Clone, Debug)]
pub struct MergesortParams {
    /// Number of 4-byte items to sort.
    pub n_items: u64,
    /// Bytes per item (the paper sorts 32-bit integers).
    pub item_bytes: u64,
    /// Cache-line size for trace generation.
    pub line_size: u64,
    /// Sub-arrays of at most this many items are sorted sequentially by one
    /// task.
    pub base_task_items: u64,
    /// Aggregate number of parallel-merge tasks per recursion level
    /// (the paper's footnote 5 uses 64).  Ignored when `coarse` is set.
    pub merge_tasks_per_level: u64,
    /// Use the original coarse-grained serial merge (Section 5.4's
    /// "coarse-grained original").
    pub coarse: bool,
}

impl MergesortParams {
    /// Defaults mirroring the paper's fine-grained Mergesort: 4-byte items,
    /// 128-byte lines, 64 merge tasks per level.
    pub fn new(n_items: u64) -> Self {
        MergesortParams {
            n_items,
            item_bytes: 4,
            line_size: 128,
            base_task_items: (n_items / 64).max(1024),
            merge_tasks_per_level: 64,
            coarse: false,
        }
    }

    /// Paper-proportional parameters scaled down by `scale` (1 = the paper's
    /// 32 M items), with task granularity sized for an L2 of `l2_bytes`
    /// shared by `cores` cores.  The single authority for how Mergesort
    /// scales — used by `Benchmark::build_scaled` and the workload registry.
    pub fn scaled(scale: u64, l2_bytes: u64, cores: usize) -> Self {
        let scale = scale.max(1);
        let n_items = ((32u64 << 20) / scale).max(1 << 14);
        let ws = (l2_bytes / (2 * cores.max(1) as u64)).max(16 * 1024);
        MergesortParams::new(n_items).with_task_working_set(ws)
    }

    /// Set the task working-set size in bytes (Figure 6's x-axis): the
    /// sequentially-sorted sub-array is half the working set, and merge tasks
    /// are sized to touch roughly the same amount of data.
    pub fn with_task_working_set(mut self, bytes: u64) -> Self {
        let items = (bytes / 2 / self.item_bytes).max(64);
        self.base_task_items = items;
        // Keep the aggregate merge-task count consistent with chunks of the
        // same size: chunks of `items` items at the top level.
        self.merge_tasks_per_level = (self.n_items / items).max(1);
        self
    }

    /// The task working-set size implied by the current granularity.
    pub fn task_working_set(&self) -> u64 {
        2 * self.base_task_items * self.item_bytes
    }

    /// Use the coarse-grained (serial merge) variant of Section 5.4.
    pub fn coarse_grained(mut self) -> Self {
        self.coarse = true;
        self
    }

    /// Total bytes of the array being sorted.
    pub fn total_bytes(&self) -> u64 {
        self.n_items * self.item_bytes
    }
}

/// Build the Mergesort computation DAG and traces.
pub fn build(params: &MergesortParams) -> Computation {
    assert!(params.n_items >= 2, "need at least two items");
    let mut space = AddressSpace::new();
    let bytes = params.total_bytes();
    // Input buffer A and auxiliary buffer B: sorting n bytes uses 2n bytes.
    let a = space.alloc(bytes);
    let b_buf = space.alloc(bytes);
    let mut builder = ComputationBuilder::new(params.line_size);
    let gen = Generator {
        params: params.clone(),
    };
    // The sorted result ends up back in the input buffer.
    let root = gen.sort(&mut builder, a, b_buf, params.n_items, false);
    builder.finish(root)
}

struct Generator {
    params: MergesortParams,
}

const SORT_SITE: CallSite = CallSite::new("mergesort.rs", 96);
const MERGE_SITE: CallSite = CallSite::new("mergesort.rs", 97);

impl Generator {
    /// Sort `n` items whose data currently lives in `src`.  If `to_other` is
    /// false the sorted result ends in `src`, otherwise in `other`.  Buffers
    /// ping-pong between levels: the recursive halves are sorted into the
    /// buffer opposite to this level's destination, and the parallel merge
    /// then merges them across into the destination.
    fn sort(
        &self,
        b: &mut ComputationBuilder,
        src: Region,
        other: Region,
        n: u64,
        to_other: bool,
    ) -> SpNodeId {
        let p = &self.params;
        let item = p.item_bytes;
        if n <= p.base_task_items {
            // Sequential mergesort of a small sub-array: O(n log n) work over
            // a 2n-byte working set (the sub-array plus its scratch half).
            let levels = (n.max(2) as f64).log2().ceil() as u64;
            let instr_per_line = SORT_INSTR_PER_ITEM_PER_LEVEL * levels * (p.line_size / item);
            return b.strand_with_meta(
                GroupMeta::with_param("seq-sort", n * item).at(SORT_SITE),
                |t| {
                    t.read_range(src.base, n * item, instr_per_line);
                    t.write_range(other.base, n * item, 1);
                    if !to_other {
                        t.read_range(other.base, n * item, 1);
                        t.write_range(src.base, n * item, 1);
                    }
                },
            );
        }

        let half = n / 2;
        let split = |r: Region| {
            (
                r.slice(0, half * item),
                r.slice(half * item, (n - half) * item),
            )
        };
        let (src_l, src_r) = split(src);
        let (oth_l, oth_r) = split(other);

        // The halves must end up in the buffer this level merges *from*,
        // which is the buffer opposite to this level's destination.
        let child_to_other = !to_other;
        let left = self.sort(b, src_l, oth_l, half, child_to_other);
        let right = self.sort(b, src_r, oth_r, n - half, child_to_other);
        let halves = b.forked_par(
            vec![left, right],
            GroupMeta::with_param("sort-halves", n * item).at(SORT_SITE),
            SPAWN_COST,
        );

        // Merge the sorted halves from `from` into `dst`.
        let (from, dst) = if to_other { (src, other) } else { (other, src) };
        let merge = self.merge(b, from, dst, n, half);
        b.seq(
            vec![halves, merge],
            GroupMeta::with_param("sort", n * item).at(SORT_SITE),
        )
    }

    /// Merge the sorted halves `[0, half)` and `[half, n)` of `from` into
    /// `dst`.
    fn merge(
        &self,
        b: &mut ComputationBuilder,
        from: Region,
        dst: Region,
        n: u64,
        half: u64,
    ) -> SpNodeId {
        let p = &self.params;
        let item = p.item_bytes;
        let merge_instr_per_line = MERGE_INSTR_PER_ITEM * (p.line_size / item);

        if p.coarse {
            // Original libpmsort behaviour: one serial merge task per level.
            return b.strand_with_meta(
                GroupMeta::with_param("serial-merge", n * item).at(MERGE_SITE),
                |t| {
                    t.read_range(from.base, n * item, merge_instr_per_line);
                    t.write_range(dst.base, n * item, 1);
                },
            );
        }

        // Number of parallel chunks for this merge: the aggregate number of
        // merge tasks per level is `merge_tasks_per_level`, and this level
        // contains `n_items / n` merges of size n.
        let merges_at_level = (p.n_items / n).max(1);
        let k = (p.merge_tasks_per_level / merges_at_level).clamp(1, (n / 2).max(1));
        let chunk = n.div_ceil(k);

        // Splitter task: k binary searches over the two halves.
        let split = b.strand_with_meta(
            GroupMeta::with_param("merge-split", n * item).at(MERGE_SITE),
            |t| {
                for i in 0..k {
                    // Binary search touches log2(half) lines of each half.
                    let steps = (half.max(2) as f64).log2().ceil() as u64;
                    let mut pos = half / 2;
                    let mut stride = half / 4;
                    for _ in 0..steps {
                        t.compute(BINARY_SEARCH_INSTR);
                        t.read(from.at((pos.min(half - 1)) * item), item as u32);
                        t.read(
                            from.at((half + (pos.min(n - half - 1))).min(n - 1) * item),
                            item as u32,
                        );
                        pos = (pos + stride + i) % half.max(1);
                        stride = (stride / 2).max(1);
                    }
                }
            },
        );

        // k parallel chunk merges: chunk i reads ~chunk items split across the
        // two halves and writes chunk items of the output.
        let mut chunks = Vec::with_capacity(k as usize);
        for i in 0..k {
            let out_start = i * chunk;
            if out_start >= n {
                break;
            }
            let out_len = chunk.min(n - out_start);
            // Approximate the input split: proportional share of each half.
            let left_start = ((out_start * half) / n).min(half - 1);
            let left_len = ((out_len * half) / n + 1).min(half - left_start).max(1);
            let right_start = (half + (out_start * (n - half)) / n).min(n - 1);
            let right_len = ((out_len * (n - half)) / n + 1).min(n - right_start).max(1);
            chunks.push(b.strand_with_meta(
                GroupMeta::with_param("merge-chunk", out_len * item).at(MERGE_SITE),
                |t| {
                    t.read_range(
                        from.at(left_start * item),
                        left_len * item,
                        merge_instr_per_line / 2,
                    );
                    t.read_range(
                        from.at(right_start * item),
                        right_len * item,
                        merge_instr_per_line / 2,
                    );
                    t.write_range(dst.at(out_start * item), out_len * item, 1);
                },
            ));
        }
        let merges = b.par(
            chunks,
            GroupMeta::with_param("merge", n * item).at(MERGE_SITE),
        );

        b.seq(
            vec![split, merges],
            GroupMeta::with_param("parallel-merge", n * item).at(MERGE_SITE),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::{Dag, TaskGroupTree};

    #[test]
    fn small_mergesort_builds_valid_dag() {
        let params = MergesortParams {
            n_items: 4096,
            base_task_items: 512,
            ..MergesortParams::new(4096)
        };
        let comp = build(&params);
        let dag = Dag::from_computation(&comp);
        dag.validate().unwrap();
        let tree = TaskGroupTree::from_computation(&comp);
        tree.validate().unwrap();
        assert!(dag.parallelism() > 1.5, "parallelism {}", dag.parallelism());
        // With explicit fork strands the DAG has a single source.
        assert_eq!(dag.sources().len(), 1);
    }

    #[test]
    fn footprint_is_twice_the_input() {
        let params = MergesortParams::new(1 << 14);
        let comp = build(&params);
        // Count distinct lines touched: must be ~ 2N bytes / line.
        let mut lines = std::collections::HashSet::new();
        for (_, r) in comp.sequential_refs() {
            for l in r.lines(params.line_size) {
                lines.insert(l);
            }
        }
        let expect = 2 * params.total_bytes() / params.line_size;
        assert!((lines.len() as u64) >= expect * 95 / 100);
        assert!((lines.len() as u64) <= expect * 105 / 100 + 16);
    }

    #[test]
    fn result_lands_in_the_input_buffer() {
        // The last write of the sequential trace must target the input buffer
        // (region A starts at the lowest addresses).
        let params = MergesortParams::new(1 << 13).with_task_working_set(2 * 1024);
        let comp = build(&params);
        let writes: Vec<u64> = comp
            .sequential_refs()
            .filter(|(_, r)| r.kind.is_write())
            .map(|(_, r)| r.addr)
            .collect();
        let last_write = *writes.last().unwrap();
        assert!(
            last_write < ccs_dag::addr::DEFAULT_ALIGN + params.total_bytes(),
            "final merge must write the input buffer, wrote {last_write:#x}"
        );
    }

    #[test]
    fn finer_granularity_means_more_tasks() {
        let coarse = build(&MergesortParams::new(1 << 14).with_task_working_set(64 * 1024));
        let fine = build(&MergesortParams::new(1 << 14).with_task_working_set(8 * 1024));
        assert!(fine.num_tasks() > coarse.num_tasks());
    }

    #[test]
    fn coarse_variant_has_fewer_tasks_and_longer_critical_path() {
        let base = MergesortParams::new(1 << 14);
        let fine = build(&base);
        let coarse = build(&base.clone().coarse_grained());
        assert!(coarse.num_tasks() < fine.num_tasks());
        let d_fine = Dag::from_computation(&fine).depth();
        let d_coarse = Dag::from_computation(&coarse).depth();
        assert!(
            d_coarse > d_fine,
            "serial merges lengthen the critical path"
        );
    }

    #[test]
    fn task_working_set_knob() {
        let p = MergesortParams::new(1 << 20).with_task_working_set(256 * 1024);
        assert_eq!(p.task_working_set(), 256 * 1024);
        assert_eq!(p.base_task_items, 32 * 1024);
    }

    #[test]
    fn group_params_record_subarray_bytes() {
        let comp = build(&MergesortParams::new(8192));
        let tree = TaskGroupTree::from_computation(&comp);
        let root = tree.group(tree.root());
        assert_eq!(root.meta.label, "sort");
        assert_eq!(root.meta.param, 8192 * 4);
    }
}
