//! The open workload registry.
//!
//! The experiment layer identifies workloads by *name* (plus `key=value`
//! parameters), mirroring the scheduler registry in `ccs-sched::registry`:
//!
//! * [`WorkloadFactory`] — how a named workload is built for one design
//!   point;
//! * [`WorkloadRegistry`] — a name → factory table.
//!   [`WorkloadRegistry::global`] is the process-wide instance,
//!   pre-populated with all six built-in kernels (`"lu"`, `"hashjoin"`,
//!   `"mergesort"`, `"quicksort"`, `"matmul"`, `"heat"`);
//! * [`BuildCtx`] — everything a factory needs for one design point: the
//!   scale divisor, the (scaled) shared-L2 capacity, the core count, and
//!   free-form `key=value` parameters from the workload spec string.
//!
//! User-defined workloads plug into every driver without touching crate
//! internals:
//!
//! ```
//! use ccs_dag::{ComputationBuilder, GroupMeta};
//! use ccs_workloads::registry::{BuildCtx, WorkloadRegistry};
//!
//! WorkloadRegistry::global().register_fn(
//!     "spin",
//!     "n independent compute-only strands (demo)",
//!     |ctx: &BuildCtx| {
//!         let n = ctx.u64_param("n").unwrap_or(8);
//!         let mut b = ComputationBuilder::new(128);
//!         let leaves: Vec<_> = (0..n)
//!             .map(|_| b.strand_with(|t| { t.compute(1000); }))
//!             .collect();
//!         let root = b.par(leaves, GroupMeta::labeled("spin"));
//!         b.finish(root)
//!     },
//! );
//!
//! let ctx = BuildCtx::new(256, 64 * 1024, 4).with_param("n", "3");
//! let comp = WorkloadRegistry::global().build("spin", &ctx).unwrap();
//! assert_eq!(comp.num_tasks(), 3);
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use ccs_dag::Computation;
use ccs_sched::spec::did_you_mean;

use crate::extras::{self, HeatParams, MatmulParams, QuicksortParams};
use crate::{hashjoin, lu, mergesort, HashJoinParams, LuParams, MergesortParams};

/// Everything a [`WorkloadFactory`] gets for one design point.
///
/// The scale divisor and the machine shape come from the experiment layer
/// (the L2 capacity is the *scaled* capacity of the design point, so task
/// granularity can track the cache exactly as `Benchmark::build_scaled`
/// did); the `key=value` parameters come from the workload spec string
/// (`"heat:rows=1024,cols=1024,steps=8"`).
#[derive(Clone, Debug)]
pub struct BuildCtx {
    /// Input/cache scale divisor (1 = the paper's input sizes).
    pub scale: u64,
    /// Shared-L2 capacity in bytes of the design point, after scaling.
    pub l2_bytes: u64,
    /// Number of cores of the design point.
    pub cores: usize,
    /// Free-form `key=value` parameters from the workload spec.
    pub params: BTreeMap<String, String>,
}

impl BuildCtx {
    /// A context with no parameters.
    pub fn new(scale: u64, l2_bytes: u64, cores: usize) -> BuildCtx {
        BuildCtx {
            scale: scale.max(1),
            l2_bytes,
            cores,
            params: BTreeMap::new(),
        }
    }

    /// Attach one `key=value` parameter.
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> BuildCtx {
        self.params.insert(key.into(), value.into());
        self
    }

    /// The raw value of a parameter, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// A parameter parsed as `u64`.
    ///
    /// # Panics
    /// Panics with a descriptive message when the value is present but not a
    /// `u64` — factories have no error channel (`build` returns the
    /// computation directly), and a malformed spec is a caller bug.
    pub fn u64_param(&self, key: &str) -> Option<u64> {
        self.param(key).map(|v| {
            v.parse().unwrap_or_else(|_| {
                panic!("workload parameter {key}={v:?} is not an unsigned integer")
            })
        })
    }

    /// A parameter parsed as `bool` (`true`/`false`/`1`/`0`).
    ///
    /// # Panics
    /// Panics with a descriptive message when the value is present but not a
    /// boolean (see [`BuildCtx::u64_param`]).
    pub fn bool_param(&self, key: &str) -> Option<bool> {
        self.param(key).map(|v| match v {
            "true" | "1" => true,
            "false" | "0" => false,
            other => panic!("workload parameter {key}={other:?} is not a boolean"),
        })
    }
}

/// Validate a power-of-two factory parameter, panicking with the workload
/// and parameter names on bad values (the recursive kernels would otherwise
/// die in a bare structural assert deep inside the builder).
fn require_pow2(workload: &str, key: &str, value: u64) -> u64 {
    assert!(
        value >= 4 && value.is_power_of_two(),
        "workload {workload}: parameter {key}={value} must be a power of two >= 4"
    );
    value
}

/// Builds [`Computation`]s for one registered workload name.
pub trait WorkloadFactory: Send + Sync {
    /// The canonical registry name (e.g. `"mergesort"`).
    fn name(&self) -> &str;

    /// One-line human-readable description, shown by CLI listings.
    fn describe(&self) -> &str;

    /// Build the computation for one design point.
    fn build(&self, ctx: &BuildCtx) -> Computation;
}

/// A [`WorkloadFactory`] wrapping a closure (see
/// [`WorkloadRegistry::register_fn`]).
struct FnFactory<F> {
    name: String,
    describe: String,
    build: F,
}

impl<F> WorkloadFactory for FnFactory<F>
where
    F: Fn(&BuildCtx) -> Computation + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> &str {
        &self.describe
    }

    fn build(&self, ctx: &BuildCtx) -> Computation {
        (self.build)(ctx)
    }
}

/// Error returned when a workload name has no registered factory.
#[derive(Clone, Debug)]
pub struct UnknownWorkload {
    /// The name that failed to resolve.
    pub name: String,
    /// The names that *are* registered, for the error message.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown workload {:?}", self.name)?;
        if let Some(close) = did_you_mean(&self.name, self.known.iter().map(String::as_str)) {
            write!(f, " — did you mean {close:?}?")?;
        }
        write!(f, " (registered: {})", self.known.join(", "))
    }
}

impl std::error::Error for UnknownWorkload {}

/// A name → [`WorkloadFactory`] table.
pub struct WorkloadRegistry {
    factories: RwLock<BTreeMap<String, Arc<dyn WorkloadFactory>>>,
}

impl WorkloadRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        WorkloadRegistry {
            factories: RwLock::new(BTreeMap::new()),
        }
    }

    /// A registry pre-populated with all six built-in kernels: the paper's
    /// primary benchmarks (`"lu"`, `"hashjoin"`, `"mergesort"`) and the
    /// Section 5.5 extras (`"quicksort"`, `"matmul"`, `"heat"`).
    ///
    /// Built-in parameters (all optional; defaults are the
    /// paper-proportional sizes divided by [`BuildCtx::scale`]):
    ///
    /// | workload    | parameters |
    /// |-------------|------------|
    /// | `mergesort` | `n` (items), `ws` (task working-set bytes), `coarse` |
    /// | `hashjoin`  | `build` (build-partition bytes), `probe_tasks`, `coarse` |
    /// | `lu`        | `n` (matrix dim, power of two), `block` |
    /// | `quicksort` | `n` (items), `split` (left %, 50 = balanced), `base` (items) |
    /// | `matmul`    | `n` (matrix dim, power of two), `block` |
    /// | `heat`      | `rows`, `cols`, `steps` (iterations), `band` (rows/task) |
    pub fn with_builtins() -> Self {
        let registry = Self::empty();
        registry.register_fn(
            "mergesort",
            "parallel mergesort, 32M 4-byte items at scale 1 (paper §4.2)",
            |ctx: &BuildCtx| {
                let mut p = match ctx.u64_param("n") {
                    Some(n) => {
                        let ws = MergesortParams::scaled(ctx.scale, ctx.l2_bytes, ctx.cores)
                            .task_working_set();
                        MergesortParams::new(n).with_task_working_set(ws)
                    }
                    None => MergesortParams::scaled(ctx.scale, ctx.l2_bytes, ctx.cores),
                };
                if let Some(ws) = ctx.u64_param("ws") {
                    p = p.with_task_working_set(ws);
                }
                if ctx.bool_param("coarse").unwrap_or(false) {
                    p = p.coarse_grained();
                }
                mergesort::build(&p)
            },
        );
        registry.register_fn(
            "hashjoin",
            "database hash join, ~341MB build partition at scale 1 (paper §4.2)",
            |ctx: &BuildCtx| {
                let mut p = match ctx.u64_param("build") {
                    Some(build) => HashJoinParams::new(build.max(1)).with_l2_bytes(ctx.l2_bytes),
                    None => HashJoinParams::scaled(ctx.scale, ctx.l2_bytes),
                };
                if let Some(tasks) = ctx.u64_param("probe_tasks") {
                    p.probe_tasks_per_subpartition = tasks.max(1);
                }
                if ctx.bool_param("coarse").unwrap_or(false) {
                    p = p.coarse_grained();
                }
                hashjoin::build(&p)
            },
        );
        registry.register_fn(
            "lu",
            "recursive dense LU factorization, 2Kx2K doubles at scale 1 (paper §4.2)",
            |ctx: &BuildCtx| {
                let p = match ctx.u64_param("n") {
                    Some(n) => {
                        let n = require_pow2("lu", "n", n);
                        LuParams::new(n).with_block(LuParams::block_for_l2(n, ctx.l2_bytes))
                    }
                    None => LuParams::scaled(ctx.scale, ctx.l2_bytes),
                };
                let p = match ctx.u64_param("block") {
                    Some(block) => {
                        LuParams::new(p.n).with_block(require_pow2("lu", "block", block))
                    }
                    None => p,
                };
                lu::build(&p)
            },
        );
        registry.register_fn(
            "quicksort",
            "recursive quicksort with unbalanced pivots (paper §5.5)",
            |ctx: &BuildCtx| {
                let mut p = match ctx.u64_param("n") {
                    Some(n) => QuicksortParams::new(n.max(2)),
                    None => QuicksortParams::scaled(ctx.scale),
                };
                if let Some(split) = ctx.u64_param("split") {
                    p.split_percent = split.clamp(1, 99);
                }
                if let Some(base) = ctx.u64_param("base") {
                    p.base_task_items = base.max(1);
                }
                extras::quicksort(&p)
            },
        );
        registry.register_fn(
            "matmul",
            "recursive blocked matrix multiply, 2Kx2K doubles at scale 1 (paper §5.5)",
            |ctx: &BuildCtx| {
                let mut p = match ctx.u64_param("n") {
                    Some(n) => MatmulParams::new(require_pow2("matmul", "n", n)),
                    None => MatmulParams::scaled(ctx.scale),
                };
                if let Some(block) = ctx.u64_param("block") {
                    p.block = require_pow2("matmul", "block", block).min(p.n);
                }
                extras::matmul(&p)
            },
        );
        registry.register_fn(
            "heat",
            "iterative 2-D Jacobi stencil, 4Kx4K doubles at scale 1 (paper §5.5)",
            |ctx: &BuildCtx| {
                let mut p = HeatParams::scaled(ctx.scale);
                if let Some(rows) = ctx.u64_param("rows") {
                    p.rows = rows.max(1);
                }
                if let Some(cols) = ctx.u64_param("cols") {
                    p.cols = cols.max(1);
                }
                if let Some(steps) = ctx.u64_param("steps") {
                    p.iterations = steps.max(1);
                }
                if let Some(band) = ctx.u64_param("band") {
                    p.rows_per_task = band.max(1);
                }
                extras::heat(&p)
            },
        );
        registry
    }

    /// The process-wide registry used by the experiment layer and every
    /// name-based workload selector.  Created on first use with the
    /// built-ins registered.
    pub fn global() -> &'static WorkloadRegistry {
        static GLOBAL: OnceLock<WorkloadRegistry> = OnceLock::new();
        GLOBAL.get_or_init(WorkloadRegistry::with_builtins)
    }

    /// Register a factory under its [`WorkloadFactory::name`].  Returns the
    /// factory previously registered under that name, if any (last
    /// registration wins, so tests can shadow built-ins).
    pub fn register(&self, factory: Arc<dyn WorkloadFactory>) -> Option<Arc<dyn WorkloadFactory>> {
        let name = factory.name().to_string();
        self.factories
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name, factory)
    }

    /// Register a closure as the factory for `name`, with a one-line
    /// description for CLI listings.
    pub fn register_fn<F>(&self, name: impl Into<String>, describe: impl Into<String>, build: F)
    where
        F: Fn(&BuildCtx) -> Computation + Send + Sync + 'static,
    {
        self.register(Arc::new(FnFactory {
            name: name.into(),
            describe: describe.into(),
            build,
        }));
    }

    /// Whether `name` has a registered factory.
    pub fn contains(&self, name: &str) -> bool {
        self.factories
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// The one-line description of a registered workload.
    pub fn describe(&self, name: &str) -> Option<String> {
        self.factories
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|f| f.describe().to_string())
    }

    /// Build the workload registered under `name` for one design point.
    pub fn build(&self, name: &str, ctx: &BuildCtx) -> Result<Computation, UnknownWorkload> {
        let factory = self
            .factories
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned();
        match factory {
            Some(f) => Ok(f.build(ctx)),
            None => Err(UnknownWorkload {
                name: name.to_string(),
                known: self.names(),
            }),
        }
    }
}

impl Default for WorkloadRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl std::fmt::Debug for WorkloadRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use ccs_dag::Dag;

    const ALL: [&str; 6] = ["lu", "hashjoin", "mergesort", "quicksort", "matmul", "heat"];

    #[test]
    fn global_registry_has_all_six_builtins() {
        let names = WorkloadRegistry::global().names();
        for expect in ALL {
            assert!(
                names.contains(&expect.to_string()),
                "{expect} missing from {names:?}"
            );
            assert!(
                WorkloadRegistry::global().describe(expect).is_some(),
                "{expect} has no description"
            );
        }
    }

    #[test]
    fn every_builtin_builds_a_valid_dag() {
        let ctx = BuildCtx::new(1024, 64 * 1024, 8);
        for name in ALL {
            let comp = WorkloadRegistry::global().build(name, &ctx).unwrap();
            assert!(comp.num_tasks() > 1, "{name}: {}", comp.num_tasks());
            Dag::from_computation(&comp).validate().unwrap();
        }
    }

    #[test]
    fn registry_matches_benchmark_build_scaled() {
        let (scale, l2, cores) = (512, 128 * 1024, 8);
        let ctx = BuildCtx::new(scale, l2, cores);
        for bench in [Benchmark::Lu, Benchmark::HashJoin, Benchmark::Mergesort] {
            let by_enum = bench.build_scaled(scale, l2, cores);
            let by_name = WorkloadRegistry::global()
                .build(bench.name(), &ctx)
                .unwrap();
            assert_eq!(by_enum.num_tasks(), by_name.num_tasks(), "{bench}");
            assert_eq!(by_enum.total_work(), by_name.total_work(), "{bench}");
        }
    }

    #[test]
    fn params_change_the_built_computation() {
        let registry = WorkloadRegistry::global();
        let ctx = BuildCtx::new(1024, 64 * 1024, 8);
        let small = registry
            .build("matmul", &ctx.clone().with_param("n", "64"))
            .unwrap();
        let large = registry
            .build("matmul", &ctx.clone().with_param("n", "128"))
            .unwrap();
        assert!(large.num_tasks() > small.num_tasks());

        let short = registry
            .build("heat", &ctx.clone().with_param("steps", "1"))
            .unwrap();
        let long = registry
            .build("heat", &ctx.clone().with_param("steps", "2"))
            .unwrap();
        assert_eq!(2 * short.total_work(), long.total_work());

        let coarse = registry
            .build("mergesort", &ctx.clone().with_param("coarse", "true"))
            .unwrap();
        let fine = registry.build("mergesort", &ctx).unwrap();
        assert!(coarse.num_tasks() < fine.num_tasks());
    }

    #[test]
    fn unknown_name_suggests_a_close_match() {
        let err = match WorkloadRegistry::global().build("mergsort", &BuildCtx::new(1, 1, 1)) {
            Ok(_) => panic!("unknown workload must not build"),
            Err(e) => e,
        };
        let message = err.to_string();
        assert!(message.contains("did you mean \"mergesort\""), "{message}");
        assert!(message.contains("quicksort"), "{message}");
    }

    #[test]
    #[should_panic(expected = "not an unsigned integer")]
    fn malformed_params_panic_with_context() {
        let ctx = BuildCtx::new(1024, 64 * 1024, 8).with_param("n", "lots");
        let _ = WorkloadRegistry::global().build("matmul", &ctx);
    }

    #[test]
    #[should_panic(expected = "workload matmul: parameter n=100 must be a power of two")]
    fn non_power_of_two_matmul_dim_panics_with_context() {
        let ctx = BuildCtx::new(1024, 64 * 1024, 8).with_param("n", "100");
        let _ = WorkloadRegistry::global().build("matmul", &ctx);
    }

    #[test]
    #[should_panic(expected = "workload lu: parameter block=0 must be a power of two")]
    fn zero_lu_block_panics_with_context() {
        let ctx = BuildCtx::new(1024, 64 * 1024, 8).with_param("block", "0");
        let _ = WorkloadRegistry::global().build("lu", &ctx);
    }

    #[test]
    fn tiny_lu_dims_still_build() {
        for n in [4u64, 8, 16, 64] {
            let ctx = BuildCtx::new(1, 4 << 20, 8).with_param("n", n.to_string());
            let comp = WorkloadRegistry::global().build("lu", &ctx).unwrap();
            assert!(comp.num_tasks() >= 1, "lu n={n}");
        }
    }

    #[test]
    fn custom_factory_round_trips_through_registry() {
        let registry = WorkloadRegistry::empty();
        assert!(!registry.contains("noop"));
        registry.register_fn("noop", "one empty strand", |_ctx: &BuildCtx| {
            let mut b = ccs_dag::ComputationBuilder::new(128);
            let s = b.strand_with(|t| {
                t.compute(1);
            });
            let root = b.seq(vec![s], ccs_dag::GroupMeta::default());
            b.finish(root)
        });
        assert!(registry.contains("noop"));
        assert_eq!(registry.describe("noop").unwrap(), "one empty strand");
        let comp = registry.build("noop", &BuildCtx::new(1, 1, 1)).unwrap();
        assert_eq!(comp.num_tasks(), 1);
    }
}
