//! Secondary benchmarks from the extended study (Section 5.5).
//!
//! The paper summarises results for several more benchmarks beyond LU, Hash
//! Join and Mergesort.  Three representatives are provided here:
//!
//! * [`quicksort`] — recursive divide-and-conquer with *unbalanced* divide
//!   steps (the paper notes Quicksort/Triangle/C4.5 split at algorithmic
//!   pivots rather than even halves);
//! * [`matmul`] — recursive blocked matrix multiply (small working set per
//!   task, like LU: PDF and WS perform alike);
//! * [`heat`] — an iterative Jacobi stencil (Barnes/Heat class: bandwidth
//!   bound, streaming).

use ccs_dag::{
    AddressSpace, CallSite, Computation, ComputationBuilder, GroupMeta, Region, SpNodeId,
};

// ---------------------------------------------------------------------------
// Quicksort
// ---------------------------------------------------------------------------

/// Parameters for the Quicksort workload.
#[derive(Clone, Debug)]
pub struct QuicksortParams {
    /// Number of 4-byte items.
    pub n_items: u64,
    /// Sub-arrays at or below this size sort sequentially in one task.
    pub base_task_items: u64,
    /// Imbalance of the divide step: the left part receives
    /// `split_percent` % of the items (50 = balanced).
    pub split_percent: u64,
    /// Cache-line size.
    pub line_size: u64,
}

impl QuicksortParams {
    /// Defaults: 4-byte items, 60/40 splits, base tasks of n/64 items.
    pub fn new(n_items: u64) -> Self {
        QuicksortParams {
            n_items,
            base_task_items: (n_items / 64).max(1024),
            split_percent: 60,
            line_size: 128,
        }
    }

    /// Paper-proportional parameters scaled down by `scale` (1 = 32 M items,
    /// the same array Mergesort sorts).  Used by the workload registry.
    pub fn scaled(scale: u64) -> Self {
        QuicksortParams::new(((32u64 << 20) / scale.max(1)).max(1 << 14))
    }
}

const QS_SITE: CallSite = CallSite::new("extras.rs", 45);

/// Build the Quicksort computation: partition (streaming pass over the
/// sub-array), then recurse on the two unbalanced parts in parallel.
pub fn quicksort(params: &QuicksortParams) -> Computation {
    let mut space = AddressSpace::new();
    let data = space.alloc(params.n_items * 4);
    let mut b = ComputationBuilder::new(params.line_size);

    fn rec(
        b: &mut ComputationBuilder,
        p: &QuicksortParams,
        data: Region,
        start: u64,
        n: u64,
    ) -> SpNodeId {
        let bytes = n * 4;
        if n <= p.base_task_items {
            return b.strand_with_meta(GroupMeta::with_param("qs-base", bytes).at(QS_SITE), |t| {
                let levels = (n.max(2) as f64).log2().ceil() as u64;
                t.read_range(data.at(start * 4), bytes, 4 * levels * (p.line_size / 4));
                t.write_range(data.at(start * 4), bytes, 0);
            });
        }
        // Partition pass: read + write the whole sub-array once.
        let partition = b.strand_with_meta(
            GroupMeta::with_param("qs-partition", bytes).at(QS_SITE),
            |t| {
                t.read_range(data.at(start * 4), bytes, 3 * (p.line_size / 4));
                t.write_range(data.at(start * 4), bytes, 0);
            },
        );
        let left_n = (n * p.split_percent / 100).clamp(1, n - 1);
        let left = rec(b, p, data, start, left_n);
        let right = rec(b, p, data, start + left_n, n - left_n);
        let halves = b.par(
            vec![left, right],
            GroupMeta::with_param("qs-halves", bytes).at(QS_SITE),
        );
        b.seq(
            vec![partition, halves],
            GroupMeta::with_param("qs", bytes).at(QS_SITE),
        )
    }

    let root = rec(&mut b, params, data, 0, params.n_items);
    b.finish(root)
}

// ---------------------------------------------------------------------------
// Matrix multiply
// ---------------------------------------------------------------------------

/// Parameters for the blocked matrix-multiply workload.
#[derive(Clone, Debug)]
pub struct MatmulParams {
    /// Matrix dimension (N × N doubles); power of two.
    pub n: u64,
    /// Block size for leaf multiplies; power of two.
    pub block: u64,
    /// Cache-line size.
    pub line_size: u64,
}

impl MatmulParams {
    /// Defaults: 64×64 leaf blocks.
    pub fn new(n: u64) -> Self {
        MatmulParams {
            n,
            block: 64.min(n),
            line_size: 128,
        }
    }

    /// Paper-proportional parameters scaled down by `scale` (1 = 2K×2K
    /// doubles, the same footprint as LU; the dimension scales with
    /// `sqrt(scale)` and rounds up to a power of two).  Used by the workload
    /// registry.
    pub fn scaled(scale: u64) -> Self {
        let dim = (2048.0 / (scale.max(1) as f64).sqrt()).round() as u64;
        let mut p = MatmulParams::new(dim.next_power_of_two().max(64));
        // Keep at least two recursion levels of parallelism at small scales
        // (the default 64-block would make a 64x64 multiply one task).
        p.block = (p.n / 4).clamp(16, 64);
        p
    }
}

const MM_SITE: CallSite = CallSite::new("extras.rs", 104);

/// Build the recursive blocked matrix multiply `C = A × B`.
pub fn matmul(params: &MatmulParams) -> Computation {
    assert!(params.n.is_power_of_two() && params.block.is_power_of_two());
    let elem = 8u64;
    let mut space = AddressSpace::new();
    let a = space.alloc(params.n * params.n * elem);
    let bm = space.alloc(params.n * params.n * elem);
    let c = space.alloc(params.n * params.n * elem);
    let mut builder = ComputationBuilder::new(params.line_size);

    #[derive(Clone, Copy)]
    struct Tile {
        row: u64,
        col: u64,
        size: u64,
    }
    impl Tile {
        fn quad(&self, i: u64, j: u64) -> Tile {
            let h = self.size / 2;
            Tile {
                row: self.row + i * h,
                col: self.col + j * h,
                size: h,
            }
        }
    }

    fn touch(
        t: &mut ccs_dag::TraceBuilder<'_>,
        m: Region,
        n: u64,
        tile: Tile,
        instr_per_elem: u64,
        write: bool,
    ) {
        for r in 0..tile.size {
            let offset = ((tile.row + r) * n + tile.col) * 8;
            t.read_range(m.at(offset), tile.size * 8, instr_per_elem * 16);
            if write {
                t.write_range(m.at(offset), tile.size * 8, 0);
            }
        }
    }

    fn rec(
        builder: &mut ComputationBuilder,
        p: &MatmulParams,
        (a, bm, c): (Region, Region, Region),
        (ta, tb, tc): (Tile, Tile, Tile),
    ) -> SpNodeId {
        if tc.size <= p.block {
            let bytes = tc.size * tc.size * 8;
            return builder.strand_with_meta(
                GroupMeta::with_param("mm-base", 3 * bytes).at(MM_SITE),
                |t| {
                    touch(t, a, p.n, ta, tc.size / 4, false);
                    touch(t, bm, p.n, tb, tc.size / 4, false);
                    touch(t, c, p.n, tc, tc.size / 2, true);
                },
            );
        }
        // C_ij = A_i0*B_0j + A_i1*B_1j: four independent quadrants, each a
        // sequence of two recursive multiplies, forked by a spawn task.
        let mut quads = Vec::with_capacity(4);
        for i in 0..2 {
            for j in 0..2 {
                let first = rec(
                    builder,
                    p,
                    (a, bm, c),
                    (ta.quad(i, 0), tb.quad(0, j), tc.quad(i, j)),
                );
                let second = rec(
                    builder,
                    p,
                    (a, bm, c),
                    (ta.quad(i, 1), tb.quad(1, j), tc.quad(i, j)),
                );
                quads.push(builder.seq(
                    vec![first, second],
                    GroupMeta::with_param("mm-quad", tc.size * tc.size * 2).at(MM_SITE),
                ));
            }
        }
        builder.forked_par(
            quads,
            GroupMeta::with_param("mm", tc.size * tc.size * 8).at(MM_SITE),
            24,
        )
    }

    let whole = Tile {
        row: 0,
        col: 0,
        size: params.n,
    };
    let root = rec(&mut builder, params, (a, bm, c), (whole, whole, whole));
    builder.finish(root)
}

// ---------------------------------------------------------------------------
// Heat (Jacobi stencil)
// ---------------------------------------------------------------------------

/// Parameters for the Heat (2-D Jacobi) workload.
#[derive(Clone, Debug)]
pub struct HeatParams {
    /// Grid is `rows × cols` doubles.
    pub rows: u64,
    /// Grid columns.
    pub cols: u64,
    /// Number of Jacobi iterations.
    pub iterations: u64,
    /// Rows per task.
    pub rows_per_task: u64,
    /// Cache-line size.
    pub line_size: u64,
}

impl HeatParams {
    /// Defaults: 4 iterations, 16 rows per task.
    pub fn new(rows: u64, cols: u64) -> Self {
        HeatParams {
            rows,
            cols,
            iterations: 4,
            rows_per_task: 16,
            line_size: 128,
        }
    }

    /// Paper-proportional parameters scaled down by `scale` (1 = a 4K×4K
    /// grid of doubles, 128 MB per buffer; the side scales with
    /// `sqrt(scale)`).  Used by the workload registry.
    pub fn scaled(scale: u64) -> Self {
        let side = ((4096.0 / (scale.max(1) as f64).sqrt()).round() as u64).max(64);
        HeatParams::new(side, side)
    }
}

const HEAT_SITE: CallSite = CallSite::new("extras.rs", 186);

/// Build the Heat computation: `iterations` sweeps over the grid, each sweep a
/// parallel set of row-band tasks reading the source grid (with halo rows) and
/// writing the destination grid; the two grids ping-pong between iterations.
pub fn heat(params: &HeatParams) -> Computation {
    let elem = 8u64;
    let row_bytes = params.cols * elem;
    let mut space = AddressSpace::new();
    let grid_a = space.alloc(params.rows * row_bytes);
    let grid_b = space.alloc(params.rows * row_bytes);
    let mut b = ComputationBuilder::new(params.line_size);

    let mut sweeps = Vec::with_capacity(params.iterations as usize);
    for it in 0..params.iterations {
        let (src, dst) = if it % 2 == 0 {
            (grid_a, grid_b)
        } else {
            (grid_b, grid_a)
        };
        let bands = params.rows.div_ceil(params.rows_per_task);
        let mut tasks = Vec::with_capacity(bands as usize);
        for band in 0..bands {
            let first = band * params.rows_per_task;
            let count = params.rows_per_task.min(params.rows - first);
            tasks.push(b.strand_with_meta(
                GroupMeta::with_param("heat-band", count * row_bytes).at(HEAT_SITE),
                |t| {
                    // Read the band plus one halo row on each side, write the band.
                    let read_first = first.saturating_sub(1);
                    let read_last = (first + count).min(params.rows - 1);
                    t.read_range(
                        src.at(read_first * row_bytes),
                        (read_last - read_first + 1) * row_bytes,
                        5 * (params.line_size / elem),
                    );
                    t.write_range(dst.at(first * row_bytes), count * row_bytes, 0);
                },
            ));
        }
        sweeps.push(b.forked_par(
            tasks,
            GroupMeta::with_param("heat-sweep", params.rows * row_bytes).at(HEAT_SITE),
            16,
        ));
    }
    let root = if sweeps.len() == 1 {
        sweeps.pop().unwrap()
    } else {
        b.seq(
            sweeps,
            GroupMeta::with_param("heat", 2 * params.rows * row_bytes).at(HEAT_SITE),
        )
    };
    b.finish(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::Dag;

    #[test]
    fn quicksort_builds_unbalanced_dag() {
        let comp = quicksort(&QuicksortParams {
            n_items: 64 * 1024,
            base_task_items: 4096,
            ..QuicksortParams::new(64 * 1024)
        });
        let dag = Dag::from_computation(&comp);
        dag.validate().unwrap();
        assert!(dag.parallelism() > 1.0);
        // With a 60/40 split, the recursion is deeper on the left; just check
        // we got a non-trivial number of tasks.
        assert!(comp.num_tasks() > 20);
    }

    #[test]
    fn quicksort_balanced_vs_unbalanced_depth() {
        let n = 256 * 1024;
        let balanced = quicksort(&QuicksortParams {
            split_percent: 50,
            base_task_items: 4096,
            ..QuicksortParams::new(n)
        });
        let skewed = quicksort(&QuicksortParams {
            split_percent: 80,
            base_task_items: 4096,
            ..QuicksortParams::new(n)
        });
        let d_bal = Dag::from_computation(&balanced).depth();
        let d_skew = Dag::from_computation(&skewed).depth();
        assert!(d_skew > d_bal, "skewed splits lengthen the critical path");
    }

    #[test]
    fn matmul_structure() {
        let comp = matmul(&MatmulParams {
            n: 256,
            block: 64,
            line_size: 128,
        });
        let dag = Dag::from_computation(&comp);
        dag.validate().unwrap();
        // (256/64)^3 = 64 leaf multiplies plus the quad-seq scaffolding.
        assert!(comp.num_tasks() >= 64);
        assert!(dag.parallelism() > 2.0);
        assert_eq!(dag.sources().len(), 1, "fork strands give a single root");
    }

    #[test]
    fn heat_alternates_buffers() {
        let params = HeatParams::new(128, 256);
        let comp = heat(&params);
        let dag = Dag::from_computation(&comp);
        dag.validate().unwrap();
        // 4 iterations * (8 bands + 1 spawn task).
        assert_eq!(comp.num_tasks(), 36);
        // Footprint = two grids.
        let mut lines = std::collections::HashSet::new();
        for (_, r) in comp.sequential_refs() {
            for l in r.lines(params.line_size) {
                lines.insert(l);
            }
        }
        let expect = 2 * params.rows * params.cols * 8 / params.line_size;
        assert_eq!(lines.len() as u64, expect);
    }

    #[test]
    fn heat_single_iteration() {
        let comp = heat(&HeatParams {
            iterations: 1,
            ..HeatParams::new(64, 64)
        });
        // 4 bands + 1 spawn task.
        assert_eq!(comp.num_tasks(), 5);
    }
}
