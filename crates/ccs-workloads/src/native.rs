//! Native (actually-running) parallel kernels on top of `ccs-runtime`.
//!
//! The trace generators in this crate drive the CMP *simulator*; the functions
//! here are the corresponding real algorithms running on the native fork-join
//! pool, so the library is usable as an actual parallel runtime and the two
//! scheduling policies can be exercised on real hardware.  Each kernel is
//! written in the same divide-and-conquer shape as its trace generator.

use ccs_runtime::join;

/// Parallel mergesort of a slice, with the same structure as the simulated
/// workload: recursive halves in parallel, sequential sort below the
/// `sequential_below` threshold.  Must be called from within
/// [`ccs_runtime::ThreadPool::install`] for parallel execution (it degrades to
/// sequential execution outside a pool).
pub fn par_mergesort<T: Ord + Copy + Send>(data: &mut [T], sequential_below: usize) {
    let n = data.len();
    if n <= sequential_below.max(1) || n < 2 {
        data.sort_unstable();
        return;
    }
    let mid = n / 2;
    let (left, right) = data.split_at_mut(mid);
    join(
        || par_mergesort(left, sequential_below),
        || par_mergesort(right, sequential_below),
    );
    // Merge into a temporary buffer, then copy back (same memory behaviour as
    // the trace generator: 2n bytes touched per level).
    let mut merged = Vec::with_capacity(n);
    {
        let (mut i, mut j) = (0, 0);
        while i < left.len() && j < right.len() {
            if left[i] <= right[j] {
                merged.push(left[i]);
                i += 1;
            } else {
                merged.push(right[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&left[i..]);
        merged.extend_from_slice(&right[j..]);
    }
    data.copy_from_slice(&merged);
}

/// Parallel quicksort with a median-of-three pivot and sequential fallback.
pub fn par_quicksort<T: Ord + Copy + Send>(data: &mut [T], sequential_below: usize) {
    let n = data.len();
    if n <= sequential_below.max(16) {
        data.sort_unstable();
        return;
    }
    let pivot = median_of_three(data);
    let mut lt = 0;
    let mut gt = n;
    let mut i = 0;
    // Three-way partition.
    while i < gt {
        if data[i] < pivot {
            data.swap(i, lt);
            lt += 1;
            i += 1;
        } else if data[i] > pivot {
            gt -= 1;
            data.swap(i, gt);
        } else {
            i += 1;
        }
    }
    let (left, rest) = data.split_at_mut(lt);
    let (_, right) = rest.split_at_mut(gt - lt);
    join(
        || par_quicksort(left, sequential_below),
        || par_quicksort(right, sequential_below),
    );
}

fn median_of_three<T: Ord + Copy>(data: &[T]) -> T {
    let a = data[0];
    let b = data[data.len() / 2];
    let c = data[data.len() - 1];
    let mut v = [a, b, c];
    v.sort_unstable();
    v[1]
}

/// Parallel sum-reduction, the simplest fork-join kernel (useful for overhead
/// benchmarking).
pub fn par_sum(data: &[u64], sequential_below: usize) -> u64 {
    if data.len() <= sequential_below.max(1) {
        return data.iter().sum();
    }
    let mid = data.len() / 2;
    let (l, r) = data.split_at(mid);
    let (a, b) = join(
        || par_sum(l, sequential_below),
        || par_sum(r, sequential_below),
    );
    a + b
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_runtime::{Policy, ThreadPool};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn mergesort_sorts_under_both_policies() {
        for policy in [Policy::WorkStealing, Policy::Pdf] {
            let pool = ThreadPool::new(2, policy);
            let mut data = random_vec(20_000, 1);
            let mut expect = data.clone();
            expect.sort_unstable();
            pool.install(|| par_mergesort(&mut data, 1024));
            assert_eq!(data, expect);
        }
    }

    #[test]
    fn quicksort_sorts_under_both_policies() {
        for policy in [Policy::WorkStealing, Policy::Pdf] {
            let pool = ThreadPool::new(2, policy);
            let mut data = random_vec(20_000, 2);
            let mut expect = data.clone();
            expect.sort_unstable();
            pool.install(|| par_quicksort(&mut data, 512));
            assert_eq!(data, expect);
        }
    }

    #[test]
    fn sorts_handle_edge_cases() {
        let pool = ThreadPool::new(1, Policy::WorkStealing);
        let mut empty: Vec<u32> = vec![];
        pool.install(|| par_mergesort(&mut empty, 4));
        assert!(empty.is_empty());
        let mut one = vec![7u32];
        pool.install(|| par_quicksort(&mut one, 4));
        assert_eq!(one, vec![7]);
        let mut dup = vec![3u32; 1000];
        pool.install(|| par_quicksort(&mut dup, 16));
        assert!(dup.iter().all(|&x| x == 3));
    }

    #[test]
    fn par_sum_matches_sequential() {
        let data: Vec<u64> = (0..50_000).collect();
        let expect: u64 = data.iter().sum();
        let pool = ThreadPool::new(2, Policy::Pdf);
        assert_eq!(pool.install(|| par_sum(&data, 1024)), expect);
        assert_eq!(par_sum(&data, 1024), expect, "works outside a pool too");
    }

    #[test]
    fn already_sorted_input() {
        let pool = ThreadPool::new(2, Policy::WorkStealing);
        let mut data: Vec<u32> = (0..10_000).collect();
        let expect = data.clone();
        pool.install(|| par_mergesort(&mut data, 256));
        assert_eq!(data, expect);
    }
}
