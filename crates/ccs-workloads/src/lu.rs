//! LU factorization workload (Section 4.2).
//!
//! Mirrors the Cilk LU benchmark: a dense `N × N` matrix of doubles is
//! factorized recursively; the matrix is split into four quadrants until the
//! quadrant size reaches the block size `B`, which controls the grain of
//! parallelism.  LU is the paper's representative of scientific codes with
//! small working sets: the L2 misses-per-instruction ratio is tiny, so PDF
//! reduces misses but cannot improve execution time.
//!
//! Recursive structure (the Cilk algorithm):
//!
//! ```text
//! lu(A):                      # A = [A00 A01; A10 A11]
//!   lu(A00)
//!   par { lower_solve(A01, A00) ; upper_solve(A10, A00) }
//!   schur(A11, A10, A01)      # A11 -= A10 * A01, fully parallel
//!   lu(A11)
//! ```

use ccs_dag::{
    AddressSpace, CallSite, Computation, ComputationBuilder, GroupMeta, Region, SpNodeId,
};

/// Parameters of the LU workload.
#[derive(Clone, Debug)]
pub struct LuParams {
    /// Matrix dimension (N × N doubles).
    pub n: u64,
    /// Block size B: quadrants of B × B are factored/updated by single tasks.
    pub block: u64,
    /// Bytes per element (doubles).
    pub elem_bytes: u64,
    /// Cache-line size for trace generation.
    pub line_size: u64,
}

impl LuParams {
    /// Defaults: doubles, 128-byte lines, 64×64 blocks.
    pub fn new(n: u64) -> Self {
        LuParams {
            n,
            block: 64.min(n),
            elem_bytes: 8,
            line_size: 128,
        }
    }

    /// Paper-proportional parameters scaled down by `scale` (1 = the paper's
    /// 2K×2K matrix; the dimension scales with `sqrt(scale)` so the
    /// matrix-to-cache ratio is preserved), with the block size tracking an
    /// L2 of `l2_bytes` via [`LuParams::block_for_l2`].  The single authority
    /// for how LU scales — used by `Benchmark::build_scaled` and the workload
    /// registry.
    pub fn scaled(scale: u64, l2_bytes: u64) -> Self {
        let scale = scale.max(1);
        let dim = (2048.0 / (scale as f64).sqrt()).round() as u64;
        let dim = dim.next_power_of_two().max(128);
        LuParams::new(dim).with_block(Self::block_for_l2(dim, l2_bytes))
    }

    /// The block size for an `n × n` factorization sharing an L2 of
    /// `l2_bytes`: one block (B² doubles) is kept a small fraction of the
    /// cache so LU stays compute-dense and cache-friendly as in the paper,
    /// clamped to the structural bounds `[16, n/4]` (so the recursion always
    /// has at least two levels of parallelism).  The cache-derived target is
    /// the only upper influence — there is deliberately no fixed cap, so the
    /// block grows with the cache.
    pub fn block_for_l2(n: u64, l2_bytes: u64) -> u64 {
        let upper = (n / 4).max(16).min(n.max(4));
        let lower = upper.clamp(4, 16);
        let block_target = ((l2_bytes / 64).max(256) as f64 / 8.0).sqrt() as u64;
        block_target.next_power_of_two().clamp(lower, upper)
    }

    /// Override the block size (the grain of parallelism).
    pub fn with_block(mut self, block: u64) -> Self {
        assert!(block >= 4 && block <= self.n, "block must be in [4, n]");
        self.block = block;
        self
    }

    /// Total input bytes (the dense matrix).
    pub fn total_bytes(&self) -> u64 {
        self.n * self.n * self.elem_bytes
    }
}

const LU_SITE: CallSite = CallSite::new("lu.rs", 40);

/// A quadrant of the matrix: row/column offset and extent in elements.
#[derive(Clone, Copy, Debug)]
struct Tile {
    row: u64,
    col: u64,
    size: u64,
}

impl Tile {
    fn quad(&self, i: u64, j: u64) -> Tile {
        let h = self.size / 2;
        Tile {
            row: self.row + i * h,
            col: self.col + j * h,
            size: h,
        }
    }
}

struct Generator {
    params: LuParams,
    matrix: Region,
}

impl Generator {
    /// Emit reads (and optionally writes) of every line of a tile, with
    /// `instr_per_elem` compute instructions per element.
    fn touch_tile(
        &self,
        t: &mut ccs_dag::TraceBuilder<'_>,
        tile: Tile,
        instr_per_elem: u64,
        write: bool,
    ) {
        let p = &self.params;
        let row_bytes = tile.size * p.elem_bytes;
        let instr_per_line = instr_per_elem * (p.line_size / p.elem_bytes);
        for r in 0..tile.size {
            let offset = ((tile.row + r) * p.n + tile.col) * p.elem_bytes;
            t.read_range(self.matrix.at(offset), row_bytes, instr_per_line);
            if write {
                t.write_range(self.matrix.at(offset), row_bytes, 0);
            }
        }
    }

    /// Factor the diagonal tile in place: one task of O(size³) work over a
    /// size² working set.
    fn lu_base(&self, b: &mut ComputationBuilder, a: Tile) -> SpNodeId {
        let size = a.size;
        b.strand_with_meta(
            GroupMeta::with_param("lu-base", size * size * self.params.elem_bytes).at(LU_SITE),
            |t| self.touch_tile(t, a, size, true),
        )
    }

    /// Triangular solve of `target` against the factored diagonal tile `diag`.
    fn solve_base(
        &self,
        b: &mut ComputationBuilder,
        target: Tile,
        diag: Tile,
        label: &'static str,
    ) -> SpNodeId {
        let size = target.size;
        b.strand_with_meta(
            GroupMeta::with_param(label, size * size * self.params.elem_bytes).at(LU_SITE),
            |t| {
                self.touch_tile(t, diag, size / 2, false);
                self.touch_tile(t, target, size / 2, true);
            },
        )
    }

    /// Schur complement base: `c -= a * b`.
    fn schur_base(&self, bb: &mut ComputationBuilder, c: Tile, a: Tile, b: Tile) -> SpNodeId {
        let size = c.size;
        bb.strand_with_meta(
            GroupMeta::with_param("schur-base", size * size * self.params.elem_bytes).at(LU_SITE),
            |t| {
                self.touch_tile(t, a, size / 2, false);
                self.touch_tile(t, b, size / 2, false);
                self.touch_tile(t, c, size, true);
            },
        )
    }

    fn solve(
        &self,
        b: &mut ComputationBuilder,
        target: Tile,
        diag: Tile,
        label: &'static str,
    ) -> SpNodeId {
        if target.size <= self.params.block {
            return self.solve_base(b, target, diag, label);
        }
        // Split the target into quadrants; all four can proceed after the
        // corresponding halves of the diagonal are available — model the
        // conservative (and simpler) schedule: quadrant solves in parallel.
        let quads: Vec<SpNodeId> = (0..2)
            .flat_map(|i| (0..2).map(move |j| (i, j)))
            .map(|(i, j)| self.solve(b, target.quad(i, j), diag.quad(i, i), label))
            .collect();
        b.par(
            quads,
            GroupMeta::with_param(label, target.size * target.size * self.params.elem_bytes)
                .at(LU_SITE),
        )
    }

    fn schur(&self, bb: &mut ComputationBuilder, c: Tile, a: Tile, b: Tile) -> SpNodeId {
        if c.size <= self.params.block {
            return self.schur_base(bb, c, a, b);
        }
        // C_ij -= sum_k A_ik * B_kj: the four C quadrants are independent;
        // each needs two rank-updates in sequence.
        let mut quads = Vec::with_capacity(4);
        for i in 0..2 {
            for j in 0..2 {
                let first = self.schur(bb, c.quad(i, j), a.quad(i, 0), b.quad(0, j));
                let second = self.schur(bb, c.quad(i, j), a.quad(i, 1), b.quad(1, j));
                quads.push(
                    bb.seq(
                        vec![first, second],
                        GroupMeta::with_param(
                            "schur-quad",
                            c.size * c.size / 4 * self.params.elem_bytes,
                        )
                        .at(LU_SITE),
                    ),
                );
            }
        }
        bb.par(
            quads,
            GroupMeta::with_param("schur", c.size * c.size * self.params.elem_bytes).at(LU_SITE),
        )
    }

    fn lu(&self, b: &mut ComputationBuilder, a: Tile) -> SpNodeId {
        if a.size <= self.params.block {
            return self.lu_base(b, a);
        }
        let a00 = a.quad(0, 0);
        let a01 = a.quad(0, 1);
        let a10 = a.quad(1, 0);
        let a11 = a.quad(1, 1);

        let top = self.lu(b, a00);
        let s01 = self.solve(b, a01, a00, "lower-solve");
        let s10 = self.solve(b, a10, a00, "upper-solve");
        let solves = b.par(
            vec![s01, s10],
            GroupMeta::with_param("solves", a.size * a.size / 2 * self.params.elem_bytes)
                .at(LU_SITE),
        );
        let schur = self.schur(b, a11, a10, a01);
        let tail = self.lu(b, a11);
        b.seq(
            vec![top, solves, schur, tail],
            GroupMeta::with_param("lu", a.size * a.size * self.params.elem_bytes).at(LU_SITE),
        )
    }
}

/// Build the LU computation DAG and traces.
pub fn build(params: &LuParams) -> Computation {
    assert!(
        params.n.is_power_of_two(),
        "matrix dimension must be a power of two"
    );
    assert!(
        params.block.is_power_of_two(),
        "block size must be a power of two"
    );
    let mut space = AddressSpace::new();
    let matrix = space.alloc(params.total_bytes());
    let gen = Generator {
        params: params.clone(),
        matrix,
    };
    let mut b = ComputationBuilder::new(params.line_size);
    let root = gen.lu(
        &mut b,
        Tile {
            row: 0,
            col: 0,
            size: params.n,
        },
    );
    b.finish(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::{Dag, TaskGroupTree};

    #[test]
    fn single_block_is_one_task() {
        let comp = build(&LuParams::new(64));
        assert_eq!(comp.num_tasks(), 1);
    }

    #[test]
    fn recursive_structure_is_valid() {
        let comp = build(&LuParams::new(256).with_block(64));
        let dag = Dag::from_computation(&comp);
        dag.validate().unwrap();
        TaskGroupTree::from_computation(&comp).validate().unwrap();
        assert!(dag.parallelism() > 1.0);
        assert!(comp.num_tasks() > 20);
    }

    #[test]
    fn smaller_blocks_mean_more_tasks() {
        let coarse = build(&LuParams::new(256).with_block(128));
        let fine = build(&LuParams::new(256).with_block(32));
        assert!(fine.num_tasks() > coarse.num_tasks());
    }

    #[test]
    fn footprint_matches_matrix_size() {
        let params = LuParams::new(128).with_block(32);
        let comp = build(&params);
        let mut lines = std::collections::HashSet::new();
        for (_, r) in comp.sequential_refs() {
            for l in r.lines(params.line_size) {
                lines.insert(l);
            }
        }
        let expect = params.total_bytes() / params.line_size;
        assert_eq!(lines.len() as u64, expect, "LU touches exactly the matrix");
    }

    #[test]
    fn work_grows_cubically() {
        let small = build(&LuParams::new(128).with_block(32)).total_work();
        let large = build(&LuParams::new(256).with_block(32)).total_work();
        let ratio = large as f64 / small as f64;
        assert!(
            ratio > 5.0 && ratio < 10.0,
            "ratio {ratio} not ~8 (n^3 scaling)"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        build(&LuParams::new(100));
    }
}
