//! Hash Join workload (Section 4.2).
//!
//! Models the join phase of a state-of-the-art database hash join
//! (the paper's reference \[15\]):
//! a pair of build/probe partitions that together fit in the join's memory
//! buffer is divided into *sub-partitions* whose hash table fits in the L2
//! cache.  For each sub-partition the build records are inserted into a hash
//! table, which is then probed by the matching probe records; matching pairs
//! are concatenated into the output.
//!
//! The original code used **one thread per sub-partition**; the paper's
//! fine-grained version further splits the probe procedure of each
//! sub-partition into multiple parallel tasks — those tasks share the
//! sub-partition's hash table, which is exactly the constructive-sharing
//! opportunity PDF exploits.  Set [`HashJoinParams::probe_tasks_per_subpartition`]
//! to 1 (or call [`HashJoinParams::coarse_grained`]) to reproduce the original
//! coarse version.
//!
//! Record layout follows the paper: 100-byte records, 4-byte join keys, and
//! every build record matches exactly two probe records.

use ccs_dag::{AddressSpace, CallSite, Computation, ComputationBuilder, GroupMeta};

/// Instruction-cost constants per record.
const BUILD_INSTR_PER_RECORD: u64 = 40;
const PROBE_INSTR_PER_RECORD: u64 = 60;
const OUTPUT_INSTR_PER_RECORD: u64 = 10;

/// Parameters of the Hash Join workload.
#[derive(Clone, Debug)]
pub struct HashJoinParams {
    /// Total bytes of the build partition.
    pub build_bytes: u64,
    /// Bytes per record (build and probe) — 100 in the paper.
    pub record_bytes: u64,
    /// Probe records per build record — 2 in the paper.
    pub probe_per_build: u64,
    /// Bytes of build data per sub-partition (chosen to fit the hash table in
    /// the L2 cache).
    pub sub_partition_bytes: u64,
    /// Number of parallel probe tasks per sub-partition (the fine-grained
    /// threading of Section 4.2); 1 reproduces the original coarse version.
    pub probe_tasks_per_subpartition: u64,
    /// Hash-table space per byte of build data (keys + pointers + padding).
    pub hash_table_overhead_num: u64,
    /// Denominator of the overhead fraction.
    pub hash_table_overhead_den: u64,
    /// Cache-line size for trace generation.
    pub line_size: u64,
    /// Seed for the pseudo-random probe access pattern.
    pub seed: u64,
}

impl HashJoinParams {
    /// Defaults mirroring the paper: 100-byte records, 4-byte keys, 1:2
    /// build/probe matching, 16 probe tasks per sub-partition.
    pub fn new(build_bytes: u64) -> Self {
        HashJoinParams {
            build_bytes,
            record_bytes: 100,
            probe_per_build: 2,
            sub_partition_bytes: (build_bytes / 16).max(64 * 1024),
            probe_tasks_per_subpartition: 16,
            hash_table_overhead_num: 1,
            hash_table_overhead_den: 4,
            line_size: 128,
            seed: 0x5EED_1234,
        }
    }

    /// Paper-proportional parameters scaled down by `scale` (1 = the paper's
    /// ~341 MB build partition), with sub-partitions sized for an L2 of
    /// `l2_bytes`.  The single authority for how Hash Join scales — used by
    /// `Benchmark::build_scaled` and the workload registry.
    pub fn scaled(scale: u64, l2_bytes: u64) -> Self {
        let scale = scale.max(1);
        let build_bytes = ((341u64 << 20) / scale).max(1 << 20);
        HashJoinParams::new(build_bytes).with_l2_bytes(l2_bytes)
    }

    /// Size the sub-partitions so their hash table fits in a cache of
    /// `l2_bytes` (the paper divides each partition into cache-sized
    /// sub-partitions).
    pub fn with_l2_bytes(mut self, l2_bytes: u64) -> Self {
        // Hash table bytes = build bytes * overhead; aim for ~half the cache
        // so the probe stream and output still have room.
        let target = l2_bytes / 2;
        let build = target * self.hash_table_overhead_den
            / (self.hash_table_overhead_den + self.hash_table_overhead_num);
        self.sub_partition_bytes = build.clamp(32 * 1024, self.build_bytes.max(32 * 1024));
        self
    }

    /// One probe task per sub-partition — the original coarse-grained code.
    pub fn coarse_grained(mut self) -> Self {
        self.probe_tasks_per_subpartition = 1;
        self
    }

    /// Total probe bytes.
    pub fn probe_bytes(&self) -> u64 {
        self.build_bytes * self.probe_per_build
    }

    /// Number of build records.
    pub fn build_records(&self) -> u64 {
        self.build_bytes / self.record_bytes
    }

    /// Hash-table bytes for one sub-partition.
    pub fn hash_table_bytes(&self) -> u64 {
        self.sub_partition_bytes
            + self.sub_partition_bytes * self.hash_table_overhead_num / self.hash_table_overhead_den
    }
}

const BUILD_SITE: CallSite = CallSite::new("hashjoin.rs", 60);
const PROBE_SITE: CallSite = CallSite::new("hashjoin.rs", 61);

/// Build the Hash Join computation DAG and traces.
pub fn build(params: &HashJoinParams) -> Computation {
    let p = params;
    assert!(
        p.build_bytes >= p.record_bytes,
        "need at least one build record"
    );
    let mut space = AddressSpace::new();
    let build_table = space.alloc(p.build_bytes);
    let probe_table = space.alloc(p.probe_bytes());
    let output = space.alloc(p.probe_bytes() + p.build_bytes);

    let num_subs = p.build_bytes.div_ceil(p.sub_partition_bytes).max(1);
    let mut builder = ComputationBuilder::new(p.line_size);
    let mut rng_state = p.seed | 1;
    let mut rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };

    let mut sub_nodes = Vec::with_capacity(num_subs as usize);
    for s in 0..num_subs {
        let build_start = s * p.sub_partition_bytes;
        let build_len = p.sub_partition_bytes.min(p.build_bytes - build_start);
        let probe_start = build_start * p.probe_per_build;
        let probe_len = build_len * p.probe_per_build;
        let ht = space.alloc(p.hash_table_bytes());
        let ht_lines = (ht.bytes / p.line_size).max(1);

        // Build task: stream the build records, scatter-write the hash table.
        let build_records = build_len / p.record_bytes;
        let mut build_rand = rand();
        let build_task = builder.strand_with_meta(
            GroupMeta::with_param("build", build_len).at(BUILD_SITE),
            |t| {
                let per_line = BUILD_INSTR_PER_RECORD * p.line_size / p.record_bytes.max(1);
                t.read_range(build_table.at(build_start), build_len, per_line);
                for _ in 0..build_records {
                    build_rand ^= build_rand << 13;
                    build_rand ^= build_rand >> 7;
                    build_rand ^= build_rand << 17;
                    let line = build_rand % ht_lines;
                    t.compute(4);
                    t.write(ht.at(line * p.line_size), 8);
                }
            },
        );

        // Probe tasks: each streams a disjoint chunk of the probe records but
        // probes the *same* hash table (the shared working set).
        let k = p.probe_tasks_per_subpartition.max(1);
        let chunk = probe_len.div_ceil(k);
        let mut probe_tasks = Vec::with_capacity(k as usize);
        for i in 0..k {
            let start = i * chunk;
            if start >= probe_len {
                break;
            }
            let len = chunk.min(probe_len - start);
            let records = (len / p.record_bytes).max(1);
            let mut task_rand = rand();
            let out_start = (probe_start + start) * 3 / 2;
            probe_tasks.push(builder.strand_with_meta(
                GroupMeta::with_param("probe", len).at(PROBE_SITE),
                |t| {
                    let stream_per_line =
                        PROBE_INSTR_PER_RECORD * p.line_size / p.record_bytes.max(1);
                    // Interleave: for each group of records, read the probe
                    // stream lines, do a dependent random read in the hash
                    // table, and write the output.
                    let lines = (len / p.line_size).max(1);
                    let records_per_line = (records / lines).max(1);
                    for l in 0..lines {
                        t.compute(stream_per_line);
                        t.read(
                            probe_table.at(probe_start + start + l * p.line_size),
                            p.line_size as u32,
                        );
                        for _ in 0..records_per_line {
                            task_rand ^= task_rand << 13;
                            task_rand ^= task_rand >> 7;
                            task_rand ^= task_rand << 17;
                            let ht_line = task_rand % ht_lines;
                            t.compute(8);
                            t.read(ht.at(ht_line * p.line_size), 8);
                        }
                        t.compute(OUTPUT_INSTR_PER_RECORD * records_per_line);
                        t.write(
                            output.at(((out_start + l * p.line_size * 3 / 2) % output.bytes)
                                & !(p.line_size - 1)),
                            p.line_size as u32,
                        );
                    }
                },
            ));
        }
        let probes = builder.par(
            probe_tasks,
            GroupMeta::with_param("probe-subpartition", probe_len).at(PROBE_SITE),
        );
        sub_nodes.push(builder.seq(
            vec![build_task, probes],
            GroupMeta::with_param("subpartition", build_len + probe_len).at(BUILD_SITE),
        ));
    }

    // The sub-partitions are independent: the original code runs one thread
    // per sub-partition, so they form a parallel composition, forked by the
    // join-phase driver task.
    let root = if sub_nodes.len() == 1 {
        sub_nodes.pop().unwrap()
    } else {
        builder.forked_par(
            sub_nodes,
            GroupMeta::with_param("join-phase", p.build_bytes + p.probe_bytes()).at(BUILD_SITE),
            64,
        )
    };
    builder.finish(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::{Dag, TaskGroupTree};

    fn small() -> HashJoinParams {
        HashJoinParams {
            build_bytes: 256 * 1024,
            sub_partition_bytes: 64 * 1024,
            probe_tasks_per_subpartition: 4,
            ..HashJoinParams::new(256 * 1024)
        }
    }

    #[test]
    fn builds_valid_dag() {
        let comp = build(&small());
        let dag = Dag::from_computation(&comp);
        dag.validate().unwrap();
        TaskGroupTree::from_computation(&comp).validate().unwrap();
        // 4 sub-partitions * (1 build + 4 probes) + 1 fork task = 21 tasks.
        assert_eq!(comp.num_tasks(), 21);
        assert_eq!(
            dag.sources().len(),
            1,
            "the join-phase driver is the only root"
        );
    }

    #[test]
    fn coarse_variant_has_one_probe_task_per_subpartition() {
        let coarse = build(&small().coarse_grained());
        assert_eq!(coarse.num_tasks(), 9);
        let fine = build(&small());
        let d_coarse = Dag::from_computation(&coarse).parallelism();
        let d_fine = Dag::from_computation(&fine).parallelism();
        assert!(
            d_fine > d_coarse,
            "fine-grained probe exposes more parallelism"
        );
    }

    #[test]
    fn probe_volume_is_twice_build_volume() {
        let p = small();
        assert_eq!(p.probe_bytes(), 2 * p.build_bytes);
        assert_eq!(p.build_records(), 256 * 1024 / 100);
    }

    #[test]
    fn l2_sizing_clamps_subpartitions() {
        let p = HashJoinParams::new(64 << 20).with_l2_bytes(4 << 20);
        assert!(p.sub_partition_bytes <= 2 << 20);
        assert!(p.sub_partition_bytes >= 32 * 1024);
        assert!(p.hash_table_bytes() > p.sub_partition_bytes);
    }

    #[test]
    fn traces_touch_build_probe_and_hash_table() {
        let comp = build(&small());
        let refs = comp.total_refs();
        // Streaming over build + probe alone would be ~(256K+512K)/128 = 6K
        // lines; hash-table probes add one reference per record.
        assert!(refs > 6_000, "got {refs}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = build(&small());
        let b = build(&small());
        assert_eq!(a.total_refs(), b.total_refs());
        assert_eq!(a.total_work(), b.total_work());
    }
}
