//! Benchmark workloads for the CCS (constructive cache sharing) reproduction
//! of Chen et al., SPAA 2007.
//!
//! Each workload is provided in two forms:
//!
//! 1. a **trace generator** that builds the workload's computation DAG with
//!    cache-line-level memory traces ([`mergesort::build`],
//!    [`hashjoin::build`], [`lu::build`], and the secondary benchmarks in
//!    [`extras`]) — these drive the CMP simulator to reproduce the paper's
//!    figures;
//! 2. a **native kernel** running on the `ccs-runtime` fork-join pool
//!    ([`native`]), so the library is also usable as a real parallel runtime.
//!
//! Granularity knobs mirror the paper's Section 5.4 / Section 6: every
//! workload exposes the parameter the "Parallelize" decision of Fig. 7(a)
//! would compare against a threshold, and the coarse-grained originals are
//! available for the fine-vs-coarse comparison.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod extras;
pub mod hashjoin;
pub mod lu;
pub mod mergesort;
pub mod native;

pub use hashjoin::HashJoinParams;
pub use lu::LuParams;
pub use mergesort::MergesortParams;

use ccs_dag::Computation;

/// The three primary benchmarks of the experimental study (Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Recursive dense LU factorization (scientific, small working set).
    Lu,
    /// Database hash join (irregular, large working set, bandwidth hungry).
    HashJoin,
    /// Parallel mergesort (divide and conquer).
    Mergesort,
}

impl Benchmark {
    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Lu => "lu",
            Benchmark::HashJoin => "hashjoin",
            Benchmark::Mergesort => "mergesort",
        }
    }

    /// Build the benchmark at a paper-proportional input size scaled down by
    /// `scale_divisor` (1 = the paper's input sizes), with task granularity
    /// appropriate for an L2 of `l2_bytes` shared by `cores` cores.
    ///
    /// Paper input sizes: LU factors a 2K×2K matrix of doubles (32 MB), Hash
    /// Join joins a ~341 MB build partition with a ~683 MB probe partition
    /// (1 GB memory buffer), Mergesort sorts 32 M four-byte integers (128 MB).
    pub fn build_scaled(self, scale_divisor: u64, l2_bytes: u64, cores: usize) -> Computation {
        let scale = scale_divisor.max(1);
        match self {
            Benchmark::Lu => {
                // 2048x2048 doubles at scale 1; dimension scales with sqrt so
                // the matrix-to-cache ratio is preserved.
                let dim = (2048.0 / (scale as f64).sqrt()).round() as u64;
                let dim = dim.next_power_of_two().max(128);
                // Pick the block size so one block (B² doubles) is a small
                // fraction of the shared cache, keeping LU compute-dense and
                // cache-friendly as in the paper.
                let block_target = ((l2_bytes / 64).max(256) as f64 / 8.0).sqrt() as u64;
                let block = block_target
                    .next_power_of_two()
                    .clamp(16, (dim / 4).max(16));
                lu::build(&LuParams::new(dim).with_block(block.min(64)))
            }
            Benchmark::HashJoin => {
                let build_bytes = (341 << 20) / scale;
                let params = HashJoinParams::new(build_bytes.max(1 << 20)).with_l2_bytes(l2_bytes);
                hashjoin::build(&params)
            }
            Benchmark::Mergesort => {
                let n_items = (32u64 << 20) / scale;
                let ws = (l2_bytes / (2 * cores.max(1) as u64)).max(16 * 1024);
                let params = MergesortParams::new(n_items.max(1 << 14)).with_task_working_set(ws);
                mergesort::build(&params)
            }
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names() {
        assert_eq!(Benchmark::Lu.name(), "lu");
        assert_eq!(Benchmark::HashJoin.to_string(), "hashjoin");
        assert_eq!(Benchmark::Mergesort.name(), "mergesort");
    }

    #[test]
    fn scaled_builds_are_nontrivial_and_valid() {
        // Use a large scale divisor so this stays fast in debug builds.
        for bench in [Benchmark::Lu, Benchmark::HashJoin, Benchmark::Mergesort] {
            let comp = bench.build_scaled(256, 256 * 1024, 8);
            assert!(comp.num_tasks() > 1, "{bench}: {}", comp.num_tasks());
            ccs_dag::Dag::from_computation(&comp).validate().unwrap();
        }
    }
}
