//! Benchmark workloads for the CCS (constructive cache sharing) reproduction
//! of Chen et al., SPAA 2007.
//!
//! Each workload is provided in two forms:
//!
//! 1. a **trace generator** that builds the workload's computation DAG with
//!    cache-line-level memory traces ([`mergesort::build`],
//!    [`hashjoin::build`], [`lu::build`], and the secondary benchmarks in
//!    [`extras`]) — these drive the CMP simulator to reproduce the paper's
//!    figures;
//! 2. a **native kernel** running on the `ccs-runtime` fork-join pool
//!    ([`native`]), so the library is also usable as a real parallel runtime.
//!
//! Granularity knobs mirror the paper's Section 5.4 / Section 6: every
//! workload exposes the parameter the "Parallelize" decision of Fig. 7(a)
//! would compare against a threshold, and the coarse-grained originals are
//! available for the fine-vs-coarse comparison.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod extras;
pub mod hashjoin;
pub mod lu;
pub mod mergesort;
pub mod native;
pub mod registry;

pub use hashjoin::HashJoinParams;
pub use lu::LuParams;
pub use mergesort::MergesortParams;
pub use registry::{BuildCtx, UnknownWorkload, WorkloadFactory, WorkloadRegistry};

use ccs_dag::Computation;

/// The three primary benchmarks of the experimental study (Section 4.2).
///
/// This enum predates the open [`WorkloadRegistry`] and survives as a thin
/// compatibility shim (exactly like `SchedulerKind` does for the scheduler
/// registry): it names the same workloads the registry registers under
/// `"lu"`, `"hashjoin"` and `"mergesort"`, and [`Benchmark::build_scaled`]
/// and the registry factories share one code path (the per-kernel
/// `Params::scaled` constructors), so enum-built and registry-built
/// computations are identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Recursive dense LU factorization (scientific, small working set).
    Lu,
    /// Database hash join (irregular, large working set, bandwidth hungry).
    HashJoin,
    /// Parallel mergesort (divide and conquer).
    Mergesort,
}

impl Benchmark {
    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Lu => "lu",
            Benchmark::HashJoin => "hashjoin",
            Benchmark::Mergesort => "mergesort",
        }
    }

    /// Build the benchmark at a paper-proportional input size scaled down by
    /// `scale_divisor` (1 = the paper's input sizes), with task granularity
    /// appropriate for an L2 of `l2_bytes` shared by `cores` cores.
    ///
    /// Paper input sizes: LU factors a 2K×2K matrix of doubles (32 MB), Hash
    /// Join joins a ~341 MB build partition with a ~683 MB probe partition
    /// (1 GB memory buffer), Mergesort sorts 32 M four-byte integers (128 MB).
    pub fn build_scaled(self, scale_divisor: u64, l2_bytes: u64, cores: usize) -> Computation {
        let scale = scale_divisor.max(1);
        match self {
            Benchmark::Lu => lu::build(&LuParams::scaled(scale, l2_bytes)),
            Benchmark::HashJoin => hashjoin::build(&HashJoinParams::scaled(scale, l2_bytes)),
            Benchmark::Mergesort => {
                mergesort::build(&MergesortParams::scaled(scale, l2_bytes, cores))
            }
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names() {
        assert_eq!(Benchmark::Lu.name(), "lu");
        assert_eq!(Benchmark::HashJoin.to_string(), "hashjoin");
        assert_eq!(Benchmark::Mergesort.name(), "mergesort");
    }

    #[test]
    fn scaled_builds_are_nontrivial_and_valid() {
        // Use a large scale divisor so this stays fast in debug builds.
        for bench in [Benchmark::Lu, Benchmark::HashJoin, Benchmark::Mergesort] {
            let comp = bench.build_scaled(256, 256 * 1024, 8);
            assert!(comp.num_tasks() > 1, "{bench}: {}", comp.num_tasks());
            ccs_dag::Dag::from_computation(&comp).validate().unwrap();
        }
    }
}
