//! The sweep service: validated requests in, streamed records out.
//!
//! A [`Service`] owns three things:
//!
//! * a bounded [`RequestQueue`] (the backpressure point — see
//!   [`crate::queue`]);
//! * a pool of *request workers* that pop queued requests and drive them;
//! * one shared `ccs-runtime` [`ThreadPool`] that all requests' sweep
//!   points are batched onto, so concurrent requests share the machine
//!   instead of oversubscribing it.
//!
//! Each request decomposes into [`Experiment::sweep_points`]; every point
//! is first checked against the persistent [`ResultStore`] (when the
//! service has one).  A point whose records are *all* stored is streamed
//! straight from disk (`cached: true` on the frames); anything else is
//! simulated on the pool via
//! [`spawn_cancellable`](ThreadPool::spawn_cancellable) and stored on
//! completion.  Stored records reserialise byte-identically to a fresh run
//! (see [`ccs_experiment::result_store`]), so clients cannot tell a memo
//! hit from a cold run except by the `cached` flag and the wall-clock.
//! Requests submitted with the batch engine group their uncached points
//! with [`Experiment::batch_groups`] instead, so a latency sweep's points
//! share one recorded pass per group (records stay byte-identical, and the
//! canonical keys fold onto the event engine's — a batched request hits
//! the entries an event request stored, and vice versa).
//!
//! Cancellation rides on [`CancelToken`]s: each request gets a child of the
//! service's root token.  Tripping the request token drops the request's
//! still-queued points unrun; tripping the root (drain) cancels everything.
//! The worker observes completion through channel disconnect — every point
//! closure owns a sender clone, finished or dropped — and emits the
//! terminal `status` frame with `done` or `cancelled` accordingly.

use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use ccs_experiment::canon::record_key;
use ccs_experiment::{Experiment, ResultStore, RunRecord, SweepPoint};
use ccs_runtime::{CancelToken, Policy, ThreadPool};
use ccs_sched::SchedulerSpec;
use ccs_sim::{CmpConfig, SimEngine};
use parking_lot::Mutex;

use crate::protocol::{Frame, RequestState, SubmitRequest};
use crate::queue::{RequestQueue, SubmitError};

/// Tuning knobs of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Root directory of the persistent result store; `None` disables
    /// cross-process memoisation (the in-process build cache still applies).
    pub store_dir: Option<PathBuf>,
    /// Disk budget for the result store (`--store-max-bytes`): when set,
    /// every store write evicts least-recently-used entries over budget
    /// (see [`ResultStore::open_bounded`]).  `None` grows unboundedly.
    pub store_max_bytes: Option<u64>,
    /// Maximum queued (accepted but not yet running) requests.
    pub queue_capacity: usize,
    /// Request workers: how many requests run concurrently.
    pub workers: usize,
    /// Threads of the shared simulation pool all requests batch onto.
    pub pool_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            store_dir: None,
            store_max_bytes: None,
            queue_capacity: 32,
            workers: 2,
            pool_threads: 2,
        }
    }
}

/// A request validated and resolved, ready to queue: the output of
/// [`Service::prepare`].
pub struct PreparedRequest {
    /// The client's request id.
    pub id: String,
    /// Resolved report name.
    pub name: String,
    /// Effective scale divisor (after `quick` clamping).
    pub scale: u64,
    /// Number of sweep points.
    pub points: usize,
    /// Total records a complete run produces.
    pub total: usize,
    exp: Arc<Experiment>,
    schedulers: Vec<SchedulerSpec>,
    engine: SimEngine,
    baseline: bool,
}

/// A queued request: the prepared experiment plus its session plumbing.
struct QueuedRequest {
    prepared: PreparedRequest,
    token: CancelToken,
    reply: mpsc::Sender<Frame>,
    /// Dropped by the worker when the request reaches its terminal status —
    /// the session's drain counter (see [`crate::session`]).
    _pending: Option<Box<dyn std::any::Any + Send>>,
}

/// One finished (or cache-hit) sweep point, reported back to the worker.
struct PointDone {
    index: usize,
    records: Vec<RunRecord>,
}

/// Live progress of one request, served to `query` frames.
#[derive(Clone, Copy, Default)]
struct Progress {
    completed: usize,
    total: usize,
    cached: usize,
}

struct ServiceInner {
    queue: RequestQueue<QueuedRequest>,
    pool: ThreadPool,
    store: Option<ResultStore>,
    root: CancelToken,
    /// Request id → progress, inserted at submit and updated as records
    /// stream.  Entries persist after completion (three counters per
    /// request id) so late queries still answer; a resubmitted id
    /// overwrites its entry.
    progress: Mutex<std::collections::HashMap<String, Progress>>,
}

/// The daemon core: queue, workers, shared pool, result store.
pub struct Service {
    inner: Arc<ServiceInner>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Service {
    /// Start a service: opens the store (if configured) and spawns the
    /// request workers and the shared simulation pool.
    pub fn start(config: ServiceConfig) -> std::io::Result<Service> {
        let store = match &config.store_dir {
            Some(dir) => Some(ResultStore::open_bounded(dir, config.store_max_bytes)?),
            None => None,
        };
        let inner = Arc::new(ServiceInner {
            queue: RequestQueue::new(config.queue_capacity),
            pool: ThreadPool::new(config.pool_threads, Policy::WorkStealing),
            store,
            root: CancelToken::new(),
            progress: Mutex::new(std::collections::HashMap::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("ccs-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(request) = inner.queue.pop() {
                            run_request(&inner, request);
                        }
                    })
                    .expect("failed to spawn service worker")
            })
            .collect();
        Ok(Service {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// Validate a submit frame against the spec grammar and registries,
    /// resolving every axis.  The error string is client-facing (it becomes
    /// an `error` frame) and carries the registries' did-you-mean hints.
    pub fn prepare(&self, req: &SubmitRequest) -> Result<PreparedRequest, String> {
        if req.id.is_empty() {
            return Err("request id must not be empty".to_string());
        }
        let mut workloads = Vec::with_capacity(req.workloads.len());
        for spec in &req.workloads {
            workloads.push(ccs_experiment::WorkloadSpec::resolve(spec).map_err(|e| e.to_string())?);
        }
        let mut schedulers = Vec::with_capacity(req.schedulers.len());
        for spec in &req.schedulers {
            schedulers.push(SchedulerSpec::resolve(spec).map_err(|e| e.to_string())?);
        }
        let mut configs = Vec::with_capacity(req.cores.len());
        for &cores in &req.cores {
            configs.push(
                CmpConfig::default_with_cores(cores)
                    .ok_or_else(|| format!("no default CMP configuration with {cores} cores"))?,
            );
        }

        let name = req
            .name
            .clone()
            .unwrap_or_else(|| workloads[0].name().to_string());
        let mut exp = Experiment::named(name.clone())
            .workloads(workloads)
            .scale(req.scale)
            .quick(req.quick)
            .engine(req.engine)
            .sequential_baseline(req.baseline);
        if !schedulers.is_empty() {
            exp = exp.schedulers(schedulers);
        }
        if !configs.is_empty() {
            exp = exp.configs(configs);
        }
        let points = exp.sweep_points().len();
        let schedulers = exp.resolved_schedulers();
        Ok(PreparedRequest {
            id: req.id.clone(),
            name,
            scale: exp.effective_scale(),
            points,
            total: points * schedulers.len(),
            exp: Arc::new(exp),
            schedulers,
            engine: req.engine,
            baseline: req.baseline,
        })
    }

    /// Queue a prepared request.  `reply` receives every frame about it;
    /// `pending` (if any) is dropped when the request reaches its terminal
    /// status — sessions use it as their drain counter.
    pub fn submit(
        &self,
        prepared: PreparedRequest,
        token: CancelToken,
        reply: mpsc::Sender<Frame>,
        pending: Option<Box<dyn std::any::Any + Send>>,
    ) -> Result<(), SubmitError> {
        let id = prepared.id.clone();
        let total = prepared.total;
        self.inner.progress.lock().insert(
            id.clone(),
            Progress {
                completed: 0,
                total,
                cached: 0,
            },
        );
        let result = self.inner.queue.submit(QueuedRequest {
            prepared,
            token,
            reply,
            _pending: pending,
        });
        if result.is_err() {
            // The queue rejected it (full or closed): no run will happen,
            // so don't leave a phantom 0/total entry behind.
            self.inner.progress.lock().remove(&id);
        }
        result
    }

    /// Progress of a submitted request: `(completed, total, cached)`
    /// record counts, or `None` for an id the service never accepted.
    /// Serves the protocol's `query` frame — any session may ask about any
    /// request id, without collecting its results.
    pub fn progress(&self, id: &str) -> Option<(usize, usize, usize)> {
        self.inner
            .progress
            .lock()
            .get(id)
            .map(|p| (p.completed, p.total, p.cached))
    }

    /// A child of the service's root cancel token: per-request tokens hang
    /// off this, so [`Service::shutdown`] can cancel everything at once.
    pub fn request_token(&self) -> CancelToken {
        self.inner.root.child()
    }

    /// Number of records in the store's in-memory front (0 without a store).
    pub fn store_cached_records(&self) -> usize {
        self.inner
            .store
            .as_ref()
            .map_or(0, ResultStore::cached_records)
    }

    /// Graceful drain: stop accepting, let queued and in-flight requests
    /// finish, and join the workers.  Idempotent.
    pub fn drain(&self) {
        self.inner.queue.close();
        let workers = std::mem::take(&mut *self.workers.lock());
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// Hard stop: cancel every request (queued points are dropped, in-flight
    /// points finish), then drain.
    pub fn shutdown(&self) {
        self.inner.root.cancel();
        self.drain();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Canonical store keys of one point's records, in resolved-scheduler order.
fn point_keys(req: &PreparedRequest, point: &SweepPoint) -> Vec<String> {
    req.schedulers
        .iter()
        .map(|sched| {
            record_key(
                &point.workload.label(),
                &point.config,
                req.scale,
                req.engine,
                sched,
                req.baseline,
            )
        })
        .collect()
}

/// Drive one request end to end: stream cache hits, batch the rest onto the
/// pool, store fresh records, emit the terminal status.
fn run_request(inner: &ServiceInner, request: QueuedRequest) {
    let QueuedRequest {
        prepared: req,
        token,
        reply,
        _pending,
    } = request;
    let total = req.total;
    let mut completed = 0usize;

    let accepted = Frame::Accepted {
        id: req.id.clone(),
        name: req.name.clone(),
        scale: req.scale,
        points: req.points,
        total,
    };
    // A failed send means the session is gone; cancel so queued points of
    // this request stop consuming the pool.
    if reply.send(accepted).is_err() {
        token.cancel();
    }

    let per_point = req.schedulers.len();
    let mut emit = |seq_base: usize, records: &[RunRecord], cached: bool| {
        for (offset, record) in records.iter().enumerate() {
            completed += 1;
            let frame = Frame::Result {
                id: req.id.clone(),
                seq: seq_base + offset,
                total,
                cached,
                record: record.clone(),
            };
            if reply.send(frame).is_err() {
                token.cancel();
            }
        }
        if let Some(progress) = inner.progress.lock().get_mut(&req.id) {
            progress.completed = completed;
            if cached {
                progress.cached += records.len();
            }
        }
    };
    // Serve a point from the store when *all* its records are there.
    let stored_records = |point: &SweepPoint| -> Option<Vec<RunRecord>> {
        let store = inner.store.as_ref()?;
        point_keys(&req, point)
            .iter()
            .map(|key| store.get(key))
            .collect()
    };

    // Launch phase: serve stored points immediately, batch the rest.  The
    // batch engine launches one pool closure per batchable *group* (its
    // uncached points share a recorded pass); other engines launch one
    // closure per point.
    let (tx, rx) = mpsc::channel::<PointDone>();
    if !token.is_cancelled() {
        if req.engine == SimEngine::Batch {
            for group in req.exp.batch_groups() {
                let mut fresh = Vec::new();
                for point in group {
                    if let Some(records) = stored_records(&point) {
                        emit(point.index * per_point, &records, true);
                    } else {
                        fresh.push(point);
                    }
                }
                if fresh.is_empty() {
                    continue;
                }
                let exp = Arc::clone(&req.exp);
                let tx = tx.clone();
                inner.pool.spawn_cancellable(&token, move || {
                    let per_point_records = exp.run_batch_group(&fresh);
                    for (point, records) in fresh.iter().zip(per_point_records) {
                        // The session may be gone; disconnect is fine.
                        let _ = tx.send(PointDone {
                            index: point.index,
                            records,
                        });
                    }
                });
            }
        } else {
            for point in req.exp.sweep_points() {
                if let Some(records) = stored_records(&point) {
                    emit(point.index * per_point, &records, true);
                    continue;
                }
                let exp = Arc::clone(&req.exp);
                let tx = tx.clone();
                inner.pool.spawn_cancellable(&token, move || {
                    let records = exp.run_sweep_point(&point);
                    // The session may be gone; disconnect is fine either way.
                    let _ = tx.send(PointDone {
                        index: point.index,
                        records,
                    });
                });
            }
        }
    }
    drop(tx);

    // Drain phase: stream computed points as they land, memoising each.
    // The channel disconnects once every launched closure has either sent
    // or been dropped unrun by its cancel check — so a cancelled request
    // falls out of this loop with `completed < total`.
    while let Ok(done) = rx.recv() {
        if let Some(store) = &inner.store {
            // Re-deriving the keys here is cheaper than shipping them
            // through the pool closure.
            let points = req.exp.sweep_points();
            for (key, record) in point_keys(&req, &points[done.index])
                .iter()
                .zip(&done.records)
            {
                let _ = store.put(key, record);
            }
        }
        emit(done.index * per_point, &done.records, false);
    }

    let state = if completed == total && !token.is_cancelled() {
        RequestState::Done
    } else {
        RequestState::Cancelled
    };
    let _ = reply.send(Frame::Status {
        id: req.id.clone(),
        state,
        completed,
        total,
    });
}
