//! The sweep service: validated requests in, streamed records out.
//!
//! A [`Service`] owns three things:
//!
//! * a bounded [`RequestQueue`] (the backpressure point — see
//!   [`crate::queue`]);
//! * a pool of *request workers* that pop queued requests and drive them;
//! * one shared `ccs-runtime` [`ThreadPool`] that all requests' sweep
//!   points are batched onto, so concurrent requests share the machine
//!   instead of oversubscribing it.
//!
//! Each request decomposes into [`Experiment::sweep_points`]; every point
//! is first checked against the persistent [`ResultStore`] (when the
//! service has one).  A point whose records are *all* stored is streamed
//! straight from disk (`cached: true` on the frames); anything else is
//! simulated on the pool via
//! [`spawn_cancellable`](ThreadPool::spawn_cancellable) and stored on
//! completion.  Stored records reserialise byte-identically to a fresh run
//! (see [`ccs_experiment::result_store`]), so clients cannot tell a memo
//! hit from a cold run except by the `cached` flag and the wall-clock.
//! Requests submitted with the batch engine group their uncached points
//! with [`Experiment::batch_groups`] instead, so a latency sweep's points
//! share one recorded pass per group (records stay byte-identical, and the
//! canonical keys fold onto the event engine's — a batched request hits
//! the entries an event request stored, and vice versa).
//!
//! Cancellation rides on [`CancelToken`]s: each request gets a child of the
//! service's root token.  Tripping the request token drops the request's
//! still-queued points unrun; tripping the root (drain) cancels everything.
//! The worker observes completion through channel disconnect — every point
//! closure owns a sender clone, finished or dropped — and emits the
//! terminal `status` frame with `done` or `cancelled` accordingly.
//!
//! # Failure containment (DESIGN.md §13)
//!
//! Every sweep-point closure runs under `catch_unwind`: a panicking user
//! workload converts to an `error` frame for its request (and a `failed`
//! terminal status) while the daemon, the pool worker and every other
//! request keep going.  Requests submitted with `timeout_ms` are watched by
//! a deadline thread that trips their cancel token on expiry — in-flight
//! points still stream (the partial-results contract of cancellation) and
//! the terminal status reads `timeout`.  [`Service::health`] reports
//! uptime, inflight and queue depth plus the panic/timeout counters and
//! store statistics.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ccs_experiment::canon::record_key;
use ccs_experiment::{Experiment, ResultStore, RunRecord, SweepPoint};
use ccs_runtime::{CancelToken, Policy, ThreadPool};
use ccs_sched::SchedulerSpec;
use ccs_sim::{CmpConfig, SimEngine};
use parking_lot::{Condvar, Mutex};

use crate::protocol::{Frame, HealthReport, RequestState, SubmitRequest};
use crate::queue::{RequestQueue, SubmitError};

/// Tuning knobs of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Root directory of the persistent result store; `None` disables
    /// cross-process memoisation (the in-process build cache still applies).
    pub store_dir: Option<PathBuf>,
    /// Disk budget for the result store (`--store-max-bytes`): when set,
    /// every store write evicts least-recently-used entries over budget
    /// (see [`ResultStore::open_bounded`]).  `None` grows unboundedly.
    pub store_max_bytes: Option<u64>,
    /// Maximum queued (accepted but not yet running) requests.
    pub queue_capacity: usize,
    /// Request workers: how many requests run concurrently.
    pub workers: usize,
    /// Threads of the shared simulation pool all requests batch onto.
    pub pool_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            store_dir: None,
            store_max_bytes: None,
            queue_capacity: 32,
            workers: 2,
            pool_threads: 2,
        }
    }
}

/// A request validated and resolved, ready to queue: the output of
/// [`Service::prepare`].
pub struct PreparedRequest {
    /// The client's request id.
    pub id: String,
    /// Resolved report name.
    pub name: String,
    /// Effective scale divisor (after `quick` clamping).
    pub scale: u64,
    /// Number of sweep points.
    pub points: usize,
    /// Total records a complete run produces.
    pub total: usize,
    exp: Arc<Experiment>,
    schedulers: Vec<SchedulerSpec>,
    engine: SimEngine,
    baseline: bool,
    /// Server-side deadline, from the submit frame's `timeout_ms`.
    timeout: Option<Duration>,
}

/// A queued request: the prepared experiment plus its session plumbing.
struct QueuedRequest {
    prepared: PreparedRequest,
    token: CancelToken,
    reply: mpsc::Sender<Frame>,
    /// Deadline registration, when the request carried `timeout_ms`.  The
    /// clock runs from submit, so queue wait counts against the deadline.
    deadline: Option<DeadlineHandle>,
    /// Dropped by the worker when the request reaches its terminal status —
    /// the session's drain counter (see [`crate::session`]).
    _pending: Option<Box<dyn std::any::Any + Send>>,
}

/// One sweep point's outcome, reported back to the worker: its records, or
/// the panic message of a failed (e.g. panicking-workload) point.
struct PointDone {
    index: usize,
    records: Result<Vec<RunRecord>, String>,
}

/// Live progress of one request, served to `query` frames.
#[derive(Clone, Copy, Default)]
struct Progress {
    completed: usize,
    total: usize,
    cached: usize,
}

/// One registered deadline, shared between the watcher thread and the
/// request's worker.
struct DeadlineEntry {
    when: Instant,
    token: CancelToken,
    timed_out: Arc<AtomicBool>,
    settled: Arc<AtomicBool>,
}

/// The request side of a deadline registration: observe expiry, and settle
/// the entry on drop so the watcher forgets finished requests.
struct DeadlineHandle {
    timed_out: Arc<AtomicBool>,
    settled: Arc<AtomicBool>,
}

impl DeadlineHandle {
    fn timed_out(&self) -> bool {
        self.timed_out.load(Ordering::Acquire)
    }
}

impl Drop for DeadlineHandle {
    fn drop(&mut self) {
        self.settled.store(true, Ordering::Release);
    }
}

/// The deadline thread's state: pending entries plus its wakeup machinery.
/// One watcher serves every request of the service; expiry trips the
/// request's [`CancelToken`], which reuses the whole cancellation path
/// (queued points dropped unrun, in-flight points finish and stream).
struct DeadlineWatcher {
    entries: Mutex<Vec<DeadlineEntry>>,
    wake: Condvar,
    stopped: AtomicBool,
    /// Requests terminated by expiry, for [`Service::health`].
    expired: AtomicU64,
}

impl DeadlineWatcher {
    fn new() -> DeadlineWatcher {
        DeadlineWatcher {
            entries: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            stopped: AtomicBool::new(false),
            expired: AtomicU64::new(0),
        }
    }

    fn register(&self, timeout: Duration, token: CancelToken) -> DeadlineHandle {
        let timed_out = Arc::new(AtomicBool::new(false));
        let settled = Arc::new(AtomicBool::new(false));
        self.entries.lock().push(DeadlineEntry {
            when: Instant::now() + timeout,
            token,
            timed_out: Arc::clone(&timed_out),
            settled: Arc::clone(&settled),
        });
        self.wake.notify_all();
        DeadlineHandle { timed_out, settled }
    }

    /// The watcher thread body: expire due entries, drop settled ones,
    /// sleep until the next deadline (bounded, so a settled entry or a
    /// stop request is noticed promptly even without a wakeup).
    fn run(&self) {
        let mut entries = self.entries.lock();
        while !self.stopped.load(Ordering::Acquire) {
            let now = Instant::now();
            entries.retain(|entry| {
                if entry.settled.load(Ordering::Acquire) {
                    return false;
                }
                if entry.when <= now {
                    // Mark before cancelling, so a worker that sees the
                    // cancelled token and then asks `timed_out()` cannot
                    // miss the flag.
                    entry.timed_out.store(true, Ordering::Release);
                    entry.token.cancel();
                    self.expired.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                true
            });
            let next_due = entries.iter().map(|e| e.when).min();
            let wait = match next_due {
                Some(when) => when
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(100)),
                None => Duration::from_millis(100),
            };
            self.wake
                .wait_for(&mut entries, wait.max(Duration::from_millis(1)));
        }
    }

    fn stop(&self) {
        self.stopped.store(true, Ordering::Release);
        let _entries = self.entries.lock();
        self.wake.notify_all();
    }
}

struct ServiceInner {
    queue: RequestQueue<QueuedRequest>,
    pool: ThreadPool,
    store: Option<ResultStore>,
    root: CancelToken,
    /// Request id → progress, inserted at submit and updated as records
    /// stream.  Entries persist after completion (three counters per
    /// request id) so late queries still answer; a resubmitted id
    /// overwrites its entry.
    progress: Mutex<std::collections::HashMap<String, Progress>>,
    deadlines: Arc<DeadlineWatcher>,
    /// Service start time, for health uptime.
    started: Instant,
    /// Requests currently being driven by a worker.
    inflight: AtomicUsize,
    /// Sweep-point panics caught by the request drivers (the pool-boundary
    /// counter, [`ThreadPool::panics_caught`], covers everything else).
    panics_caught: AtomicU64,
}

/// The daemon core: queue, workers, shared pool, result store.
pub struct Service {
    inner: Arc<ServiceInner>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    watcher: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Service {
    /// Start a service: opens the store (if configured) and spawns the
    /// request workers and the shared simulation pool.
    pub fn start(config: ServiceConfig) -> std::io::Result<Service> {
        let store = match &config.store_dir {
            Some(dir) => Some(ResultStore::open_bounded(dir, config.store_max_bytes)?),
            None => None,
        };
        let inner = Arc::new(ServiceInner {
            queue: RequestQueue::new(config.queue_capacity),
            pool: ThreadPool::new(config.pool_threads, Policy::WorkStealing),
            store,
            root: CancelToken::new(),
            progress: Mutex::new(std::collections::HashMap::new()),
            deadlines: Arc::new(DeadlineWatcher::new()),
            started: Instant::now(),
            inflight: AtomicUsize::new(0),
            panics_caught: AtomicU64::new(0),
        });
        // A failed thread spawn (resource exhaustion) must not leak the
        // threads already started: close the queue so they exit, join,
        // and surface the error instead of panicking.
        let mut workers = Vec::with_capacity(config.workers.max(1));
        let mut spawn_all = || -> std::io::Result<thread::JoinHandle<()>> {
            for i in 0..config.workers.max(1) {
                let inner = Arc::clone(&inner);
                workers.push(
                    thread::Builder::new()
                        .name(format!("ccs-serve-worker-{i}"))
                        .spawn(move || {
                            while let Some(request) = inner.queue.pop() {
                                run_request(&inner, request);
                            }
                        })?,
                );
            }
            let deadlines = Arc::clone(&inner.deadlines);
            thread::Builder::new()
                .name("ccs-serve-deadline".to_string())
                .spawn(move || deadlines.run())
        };
        let watcher = match spawn_all() {
            Ok(watcher) => watcher,
            Err(e) => {
                inner.queue.close();
                for worker in workers {
                    let _ = worker.join();
                }
                return Err(e);
            }
        };
        Ok(Service {
            inner,
            workers: Mutex::new(workers),
            watcher: Mutex::new(Some(watcher)),
        })
    }

    /// Validate a submit frame against the spec grammar and registries,
    /// resolving every axis.  The error string is client-facing (it becomes
    /// an `error` frame) and carries the registries' did-you-mean hints.
    pub fn prepare(&self, req: &SubmitRequest) -> Result<PreparedRequest, String> {
        if req.id.is_empty() {
            return Err("request id must not be empty".to_string());
        }
        let mut workloads = Vec::with_capacity(req.workloads.len());
        for spec in &req.workloads {
            workloads.push(ccs_experiment::WorkloadSpec::resolve(spec).map_err(|e| e.to_string())?);
        }
        let mut schedulers = Vec::with_capacity(req.schedulers.len());
        for spec in &req.schedulers {
            schedulers.push(SchedulerSpec::resolve(spec).map_err(|e| e.to_string())?);
        }
        let mut configs = Vec::with_capacity(req.cores.len());
        for &cores in &req.cores {
            configs.push(
                CmpConfig::default_with_cores(cores)
                    .ok_or_else(|| format!("no default CMP configuration with {cores} cores"))?,
            );
        }

        let name = req
            .name
            .clone()
            .unwrap_or_else(|| workloads[0].name().to_string());
        let mut exp = Experiment::named(name.clone())
            .workloads(workloads)
            .scale(req.scale)
            .quick(req.quick)
            .engine(req.engine)
            .sequential_baseline(req.baseline);
        if !schedulers.is_empty() {
            exp = exp.schedulers(schedulers);
        }
        if !configs.is_empty() {
            exp = exp.configs(configs);
        }
        let points = exp.sweep_points().len();
        let schedulers = exp.resolved_schedulers();
        Ok(PreparedRequest {
            id: req.id.clone(),
            name,
            scale: exp.effective_scale(),
            points,
            total: points * schedulers.len(),
            exp: Arc::new(exp),
            schedulers,
            engine: req.engine,
            baseline: req.baseline,
            timeout: req.timeout_ms.map(Duration::from_millis),
        })
    }

    /// Queue a prepared request.  `reply` receives every frame about it;
    /// `pending` (if any) is dropped when the request reaches its terminal
    /// status — sessions use it as their drain counter.
    pub fn submit(
        &self,
        prepared: PreparedRequest,
        token: CancelToken,
        reply: mpsc::Sender<Frame>,
        pending: Option<Box<dyn std::any::Any + Send>>,
    ) -> Result<(), SubmitError> {
        let id = prepared.id.clone();
        let total = prepared.total;
        self.inner.progress.lock().insert(
            id.clone(),
            Progress {
                completed: 0,
                total,
                cached: 0,
            },
        );
        // The deadline clock starts here: time spent queued counts, so a
        // request that expires before a worker reaches it terminates with
        // `timeout` and zero records.  (A queue-rejected request drops the
        // handle, which settles the watcher entry.)
        let deadline = prepared
            .timeout
            .map(|timeout| self.inner.deadlines.register(timeout, token.clone()));
        let result = self.inner.queue.submit(QueuedRequest {
            prepared,
            token,
            reply,
            deadline,
            _pending: pending,
        });
        if result.is_err() {
            // The queue rejected it (full or closed): no run will happen,
            // so don't leave a phantom 0/total entry behind.
            self.inner.progress.lock().remove(&id);
        }
        result
    }

    /// Progress of a submitted request: `(completed, total, cached)`
    /// record counts, or `None` for an id the service never accepted.
    /// Serves the protocol's `query` frame — any session may ask about any
    /// request id, without collecting its results.
    pub fn progress(&self, id: &str) -> Option<(usize, usize, usize)> {
        self.inner
            .progress
            .lock()
            .get(id)
            .map(|p| (p.completed, p.total, p.cached))
    }

    /// A child of the service's root cancel token: per-request tokens hang
    /// off this, so [`Service::shutdown`] can cancel everything at once.
    pub fn request_token(&self) -> CancelToken {
        self.inner.root.child()
    }

    /// Number of records in the store's in-memory front (0 without a store).
    pub fn store_cached_records(&self) -> usize {
        self.inner
            .store
            .as_ref()
            .map_or(0, ResultStore::cached_records)
    }

    /// A snapshot of daemon health: uptime, load, the panic and timeout
    /// counters, and store statistics.  Serves the protocol's `health`
    /// probe.
    pub fn health(&self) -> HealthReport {
        let inner = &self.inner;
        HealthReport {
            uptime_ms: inner.started.elapsed().as_millis() as u64,
            inflight: inner.inflight.load(Ordering::Relaxed),
            queue_depth: inner.queue.len(),
            panics_caught: inner.panics_caught.load(Ordering::Relaxed)
                + inner.pool.panics_caught() as u64,
            timeouts: inner.deadlines.expired.load(Ordering::Relaxed),
            store_records: self.store_cached_records(),
            store_bytes: inner.store.as_ref().map_or(0, ResultStore::disk_bytes),
        }
    }

    /// Graceful drain: stop accepting, let queued and in-flight requests
    /// finish, and join the workers (and the deadline watcher).  Idempotent.
    pub fn drain(&self) {
        self.inner.queue.close();
        let workers = std::mem::take(&mut *self.workers.lock());
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(watcher) = self.watcher.lock().take() {
            self.inner.deadlines.stop();
            let _ = watcher.join();
        }
    }

    /// Hard stop: cancel every request (queued points are dropped, in-flight
    /// points finish), then drain.
    pub fn shutdown(&self) {
        self.inner.root.cancel();
        self.drain();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Canonical store keys of one point's records, in resolved-scheduler order.
fn point_keys(req: &PreparedRequest, point: &SweepPoint) -> Vec<String> {
    req.schedulers
        .iter()
        .map(|sched| {
            record_key(
                &point.workload.label(),
                &point.config,
                req.scale,
                req.engine,
                sched,
                req.baseline,
            )
        })
        .collect()
}

/// Extract a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Drive one request end to end: stream cache hits, batch the rest onto the
/// pool, store fresh records, emit the terminal status.
fn run_request(inner: &Arc<ServiceInner>, request: QueuedRequest) {
    let QueuedRequest {
        prepared: req,
        token,
        reply,
        deadline,
        _pending,
    } = request;
    let total = req.total;
    let mut completed = 0usize;
    inner.inflight.fetch_add(1, Ordering::Relaxed);

    let accepted = Frame::Accepted {
        id: req.id.clone(),
        name: req.name.clone(),
        scale: req.scale,
        points: req.points,
        total,
    };
    // A failed send means the session is gone; cancel so queued points of
    // this request stop consuming the pool.
    if reply.send(accepted).is_err() {
        token.cancel();
    }

    let per_point = req.schedulers.len();
    let mut emit = |seq_base: usize, records: &[RunRecord], cached: bool| {
        for (offset, record) in records.iter().enumerate() {
            completed += 1;
            let frame = Frame::Result {
                id: req.id.clone(),
                seq: seq_base + offset,
                total,
                cached,
                record: record.clone(),
            };
            if reply.send(frame).is_err() {
                token.cancel();
            }
        }
        if let Some(progress) = inner.progress.lock().get_mut(&req.id) {
            progress.completed = completed;
            if cached {
                progress.cached += records.len();
            }
        }
    };
    // Serve a point from the store when *all* its records are there.
    let stored_records = |point: &SweepPoint| -> Option<Vec<RunRecord>> {
        let store = inner.store.as_ref()?;
        point_keys(&req, point)
            .iter()
            .map(|key| store.get(key))
            .collect()
    };

    // Launch phase: serve stored points immediately, batch the rest.  The
    // batch engine launches one pool closure per batchable *group* (its
    // uncached points share a recorded pass); other engines launch one
    // closure per point.
    let (tx, rx) = mpsc::channel::<PointDone>();
    if !token.is_cancelled() {
        if req.engine == SimEngine::Batch {
            for group in req.exp.batch_groups() {
                let mut fresh = Vec::new();
                for point in group {
                    if let Some(records) = stored_records(&point) {
                        emit(point.index * per_point, &records, true);
                    } else {
                        fresh.push(point);
                    }
                }
                if fresh.is_empty() {
                    continue;
                }
                let exp = Arc::clone(&req.exp);
                let tx = tx.clone();
                let service = Arc::clone(inner);
                inner.pool.spawn_cancellable(&token, move || {
                    // Panic isolation: a panicking workload build (user
                    // factories can panic) fails this group, not the pool
                    // worker or the daemon.
                    match panic::catch_unwind(AssertUnwindSafe(|| exp.run_batch_group(&fresh))) {
                        Ok(per_point_records) => {
                            for (point, records) in fresh.iter().zip(per_point_records) {
                                // The session may be gone; disconnect is fine.
                                let _ = tx.send(PointDone {
                                    index: point.index,
                                    records: Ok(records),
                                });
                            }
                        }
                        Err(payload) => {
                            service.panics_caught.fetch_add(1, Ordering::Relaxed);
                            let message = panic_message(payload);
                            for point in &fresh {
                                let _ = tx.send(PointDone {
                                    index: point.index,
                                    records: Err(message.clone()),
                                });
                            }
                        }
                    }
                });
            }
        } else {
            for point in req.exp.sweep_points() {
                if let Some(records) = stored_records(&point) {
                    emit(point.index * per_point, &records, true);
                    continue;
                }
                let exp = Arc::clone(&req.exp);
                let tx = tx.clone();
                let service = Arc::clone(inner);
                inner.pool.spawn_cancellable(&token, move || {
                    let records =
                        panic::catch_unwind(AssertUnwindSafe(|| exp.run_sweep_point(&point)))
                            .map_err(|payload| {
                                service.panics_caught.fetch_add(1, Ordering::Relaxed);
                                panic_message(payload)
                            });
                    // The session may be gone; disconnect is fine either way.
                    let _ = tx.send(PointDone {
                        index: point.index,
                        records,
                    });
                });
            }
        }
    }
    drop(tx);

    // Drain phase: stream computed points as they land, memoising each;
    // a failed point becomes an `error` frame instead of records.  The
    // channel disconnects once every launched closure has either sent or
    // been dropped unrun by its cancel check — so a cancelled request
    // falls out of this loop with `completed < total`.
    let mut failed = 0usize;
    while let Ok(done) = rx.recv() {
        let records = match done.records {
            Ok(records) => records,
            Err(message) => {
                failed += 1;
                let frame = Frame::Error {
                    id: Some(req.id.clone()),
                    message: format!("sweep point {} panicked: {message}", done.index),
                };
                if reply.send(frame).is_err() {
                    token.cancel();
                }
                continue;
            }
        };
        if let Some(store) = &inner.store {
            // Re-deriving the keys here is cheaper than shipping them
            // through the pool closure.
            let points = req.exp.sweep_points();
            for (key, record) in point_keys(&req, &points[done.index]).iter().zip(&records) {
                if let Err(e) = store.put(key, record) {
                    // Memoisation is best-effort: the record still streams,
                    // it just won't be served from disk next time.
                    eprintln!("ccs-serve: store write failed for request {}: {e}", req.id);
                }
            }
        }
        emit(done.index * per_point, &records, false);
    }

    // Terminal state, most-specific first: expiry beats plain cancellation,
    // cancellation beats failure (a cancel arriving after a panic still
    // reads as the client's cancel), failure beats done.
    let timed_out = deadline.as_ref().is_some_and(DeadlineHandle::timed_out);
    let state = if timed_out {
        RequestState::TimedOut
    } else if token.is_cancelled() {
        RequestState::Cancelled
    } else if failed > 0 || completed < total {
        RequestState::Failed
    } else {
        RequestState::Done
    };
    // Settle the books *before* publishing the terminal status: a client
    // that reacts to the status with a health probe must not see this
    // request still counted in flight.
    drop(deadline);
    inner.inflight.fetch_sub(1, Ordering::Relaxed);
    let _ = reply.send(Frame::Status {
        id: req.id.clone(),
        state,
        completed,
        total,
    });
}
