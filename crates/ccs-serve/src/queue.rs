//! A bounded, blocking MPMC request queue — the daemon's backpressure point.
//!
//! Sessions push validated requests; service workers pop them.  The queue
//! has a fixed capacity: when it is full, [`RequestQueue::submit`] fails
//! *immediately* (the session answers with an `error` frame) rather than
//! blocking the reader thread — a stalled reader could not see the client's
//! `cancel` frames, so backpressure must stay non-blocking on the intake
//! side.  Workers block on [`RequestQueue::pop`] until work or close.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// Why a submit was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after results drain.
    Full,
    /// The daemon is draining; no new work is accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "queue full; retry after results drain"),
            SubmitError::Closed => write!(f, "daemon is draining; submit rejected"),
        }
    }
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking queue of pending requests.
pub struct RequestQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> RequestQueue<T> {
    /// A queue admitting at most `capacity` queued (not yet popped) items.
    pub fn new(capacity: usize) -> RequestQueue<T> {
        RequestQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueue `item`, failing fast when full or closed.
    pub fn submit(&self, item: T) -> Result<(), SubmitError> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue the oldest item, blocking while the queue is empty.  Returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            self.available.wait(&mut state);
        }
    }

    /// Close the queue: pending items still drain, new submits are rejected,
    /// and blocked `pop`s return `None` once empty.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.available.notify_all();
    }

    /// Number of queued (not yet popped) items.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_backpressure() {
        let q = RequestQueue::new(2);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        assert_eq!(q.submit(3), Err(SubmitError::Full));
        assert_eq!(q.pop(), Some(1));
        q.submit(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_rejects() {
        let q = RequestQueue::new(4);
        q.submit("pending").unwrap();
        q.close();
        assert_eq!(q.submit("late"), Err(SubmitError::Closed));
        assert_eq!(q.pop(), Some("pending"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_submit_or_close() {
        let q = Arc::new(RequestQueue::new(1));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.submit(7u32).unwrap();
        assert_eq!(popper.join().unwrap(), Some(7));

        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
