//! The in-repo client: submit sweeps, stream results, reassemble reports.
//!
//! [`Client`] wraps any `BufRead`/`Write` pair speaking the
//! [`crate::protocol`] — a Unix socket ([`Client::connect_unix`]), a
//! socketpair half in tests, or a child daemon's stdio.  Its centrepiece is
//! [`Client::collect`]: read frames for one request until its terminal
//! `status`, sorting streamed records by their report position `seq` so
//! [`CollectedRun::into_report`] reproduces a batch
//! [`Experiment::run`](ccs_experiment::Experiment::run) report *byte for
//! byte* — the invariant the e2e tests and the CI smoke `cmp` against a
//! direct run.
//!
//! Because the daemon memoises every finished point in its result store,
//! resubmitting a request is idempotent — which makes retrying safe.
//! [`run_with_retry`] leans on that: reconnect, resubmit, and collect again
//! until the request lands `done` or the [`RetryPolicy`] is exhausted, with
//! exponential backoff between attempts.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use ccs_experiment::{Report, RunRecord};

use crate::protocol::{Frame, HealthReport, RequestState, SubmitRequest};

/// One streamed record with its provenance.
#[derive(Debug)]
pub struct CollectedRecord {
    /// Report position of the record.
    pub seq: usize,
    /// Whether the daemon served it from the persistent result store.
    pub cached: bool,
    /// The record itself.
    pub record: RunRecord,
}

/// Everything the daemon streamed for one request.
#[derive(Debug)]
pub struct CollectedRun {
    /// Resolved experiment name (from the `accepted` frame).
    pub name: String,
    /// Effective scale divisor (from the `accepted` frame).
    pub scale: u64,
    /// Records a complete run would produce.
    pub total: usize,
    /// Terminal state of the request.
    pub state: RequestState,
    /// Streamed records, sorted by `seq` (ascending).
    pub records: Vec<CollectedRecord>,
    /// Per-point error messages the daemon sent after accepting the request
    /// (e.g. a workload factory panicked).  Empty on a clean `done` run.
    pub errors: Vec<String>,
}

impl CollectedRun {
    /// Whether every streamed record was a store hit.
    pub fn all_cached(&self) -> bool {
        !self.records.is_empty() && self.records.iter().all(|r| r.cached)
    }

    /// Reassemble the batch-identical [`Report`]: name and scale from the
    /// `accepted` frame, records in `seq` order.
    pub fn into_report(self) -> Report {
        let mut report = Report::new(self.name, self.scale);
        report.records = self.records.into_iter().map(|r| r.record).collect();
        report
    }
}

/// A protocol client over one connection.
pub struct Client<R, W> {
    reader: R,
    writer: W,
    /// Frames about *other* requests, buffered while collecting one.
    stash: Vec<Frame>,
}

impl Client<BufReader<UnixStream>, UnixStream> {
    /// Connect to a daemon's Unix socket, retrying with exponential backoff
    /// until `timeout` expires (the daemon may still be binding), and
    /// consume its `hello`.
    pub fn connect_unix(
        path: &Path,
        timeout: Duration,
    ) -> io::Result<Client<BufReader<UnixStream>, UnixStream>> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::from_millis(10);
        let stream = loop {
            match UnixStream::connect(path) {
                Ok(stream) => break stream,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(
                        backoff.min(deadline.saturating_duration_since(Instant::now())),
                    );
                    backoff = (backoff * 2).min(Duration::from_millis(500));
                }
            }
        };
        let writer = stream.try_clone()?;
        Client::new(BufReader::new(stream), writer)
    }
}

impl<R: BufRead, W: Write> Client<R, W> {
    /// Wrap a connected stream pair and consume the daemon's `hello`.
    pub fn new(reader: R, writer: W) -> io::Result<Client<R, W>> {
        let mut client = Client {
            reader,
            writer,
            stash: Vec::new(),
        };
        match client.next_frame()? {
            Frame::Hello { .. } => Ok(client),
            other => Err(protocol_error(format!(
                "expected hello, got: {}",
                other.to_line()
            ))),
        }
    }

    /// Send one frame.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        writeln!(self.writer, "{}", frame.to_line())?;
        self.writer.flush()
    }

    /// Read the next frame (blocking).  EOF is an error: the protocol ends
    /// with a terminal frame, not a silent close.
    pub fn next_frame(&mut self) -> io::Result<Frame> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Frame::parse(line.trim_end()).map_err(protocol_error);
        }
    }

    /// Submit a sweep request (fire and forget; stream with
    /// [`Client::collect`]).
    pub fn submit(&mut self, request: SubmitRequest) -> io::Result<()> {
        self.send(&Frame::Submit(request))
    }

    /// Ask the daemon to drop `id`'s queued points.
    pub fn cancel(&mut self, id: &str) -> io::Result<()> {
        self.send(&Frame::Cancel { id: id.to_string() })
    }

    /// Liveness round-trip: returns once the daemon answers `pong`.
    /// Frames about in-flight requests arriving first are stashed, not lost.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send(&Frame::Ping)?;
        loop {
            match self.next_frame()? {
                Frame::Pong => return Ok(()),
                other => self.stash.push(other),
            }
        }
    }

    /// Query the daemon's health (uptime, inflight, panics caught, store
    /// stats).  Frames about in-flight requests arriving first are stashed,
    /// not lost.
    pub fn health(&mut self) -> io::Result<HealthReport> {
        self.send(&Frame::HealthQuery)?;
        loop {
            match self.next_frame()? {
                Frame::Health(report) => return Ok(report),
                other => self.stash.push(other),
            }
        }
    }

    /// Query progress of request `id`: `(completed, total, cached)` record
    /// counts, without collecting any results.  Frames about in-flight
    /// requests arriving first are stashed, not lost; an `error` frame for
    /// `id` (e.g. an id the daemon never accepted) fails the query.
    pub fn query_progress(&mut self, id: &str) -> io::Result<(usize, usize, usize)> {
        self.send(&Frame::Query { id: id.to_string() })?;
        loop {
            match self.next_frame()? {
                Frame::Progress {
                    id: fid,
                    completed,
                    total,
                    cached,
                } if fid == id => return Ok((completed, total, cached)),
                Frame::Error { id: fid, message } if fid.as_deref() == Some(id) => {
                    return Err(protocol_error(message));
                }
                other => self.stash.push(other),
            }
        }
    }

    /// Ask the daemon to drain and stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send(&Frame::Shutdown)
    }

    /// Collect request `id` to its terminal `status` frame.  See
    /// [`Client::collect_cancelling_after`] for the `cancel_after` knob.
    pub fn collect(&mut self, id: &str) -> io::Result<CollectedRun> {
        self.collect_cancelling_after(id, None)
    }

    /// Collect request `id`, sending a `cancel` after `cancel_after` result
    /// frames have streamed (when `Some`).  Frames about other requests are
    /// stashed for their own `collect` calls, so interleaved requests on one
    /// connection work.
    ///
    /// Error-frame handling is two-phase: *before* the `accepted` frame an
    /// `error` for `id` — or one with no id, e.g. an unparseable submit
    /// line — is fatal and fails the collect.  *After* acceptance, per-point
    /// `error` frames (a panicked workload build, say) are recorded in
    /// [`CollectedRun::errors`] and collection continues to the terminal
    /// `status`, which reports `failed` alongside whatever records survived.
    pub fn collect_cancelling_after(
        &mut self,
        id: &str,
        cancel_after: Option<usize>,
    ) -> io::Result<CollectedRun> {
        let mut name = String::new();
        let mut scale = 1u64;
        let mut total = 0usize;
        let mut records: Vec<CollectedRecord> = Vec::new();
        let mut errors: Vec<String> = Vec::new();
        let mut accepted = false;
        let mut cancel_sent = false;

        // Replay earlier-stashed frames (oldest first) before reading fresh
        // ones; whatever is still unclaimed at return goes back, in order.
        let mut pending: std::collections::VecDeque<Frame> = std::mem::take(&mut self.stash).into();
        let restash = |this: &mut Self, pending: std::collections::VecDeque<Frame>| {
            let newer = std::mem::take(&mut this.stash);
            this.stash = pending.into_iter().chain(newer).collect();
        };
        loop {
            let frame = match pending.pop_front() {
                Some(frame) => frame,
                None => self.next_frame()?,
            };
            match frame {
                Frame::Accepted {
                    id: fid,
                    name: fname,
                    scale: fscale,
                    total: ftotal,
                    ..
                } if fid == id => {
                    name = fname;
                    scale = fscale;
                    total = ftotal;
                    accepted = true;
                }
                Frame::Result {
                    id: fid,
                    seq,
                    cached,
                    record,
                    ..
                } if fid == id => {
                    records.push(CollectedRecord {
                        seq,
                        cached,
                        record,
                    });
                    if let Some(threshold) = cancel_after {
                        if !cancel_sent && records.len() >= threshold {
                            cancel_sent = true;
                            self.cancel(id)?;
                        }
                    }
                }
                Frame::Status {
                    id: fid,
                    state,
                    total: ftotal,
                    ..
                } if fid == id => {
                    restash(self, pending);
                    records.sort_by_key(|r| r.seq);
                    return Ok(CollectedRun {
                        name,
                        scale,
                        total: total.max(ftotal),
                        state,
                        records,
                        errors,
                    });
                }
                Frame::Error { id: fid, message } if fid.as_deref() == Some(id) && accepted => {
                    errors.push(message);
                }
                Frame::Error { id: fid, message }
                    if fid.as_deref() == Some(id) || fid.is_none() =>
                {
                    restash(self, pending);
                    return Err(protocol_error(message));
                }
                other => self.stash.push(other),
            }
        }
    }
}

/// How [`run_with_retry`] paces its attempts.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`0` behaves as `1`).
    pub attempts: usize,
    /// Sleep before the second attempt; doubles each retry.
    pub initial_delay: Duration,
    /// Ceiling on the backoff sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            initial_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

/// Submit `request` over a fresh connection per attempt until it collects
/// `done`, with exponential backoff between attempts.
///
/// This is safe to call repeatedly because the daemon memoises finished
/// points in its result store: a resubmitted request re-serves already
/// computed records from cache and only runs what the failed attempt never
/// reached.  Returns the first `done` run; if every attempt falls short,
/// returns the last terminal run collected (e.g. `timeout` with partial
/// records), and only errors when no attempt produced a terminal status.
pub fn run_with_retry(
    socket: &Path,
    connect_timeout: Duration,
    request: &SubmitRequest,
    policy: RetryPolicy,
) -> io::Result<CollectedRun> {
    let attempts = policy.attempts.max(1);
    let mut delay = policy.initial_delay;
    let mut last_run: Option<CollectedRun> = None;
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(delay);
            delay = (delay * 2).min(policy.max_delay);
        }
        let outcome = Client::connect_unix(socket, connect_timeout).and_then(|mut client| {
            client.submit(request.clone())?;
            client.collect(&request.id)
        });
        match outcome {
            Ok(run) if run.state == RequestState::Done => return Ok(run),
            Ok(run) => last_run = Some(run),
            Err(e) => last_err = Some(e),
        }
    }
    match last_run {
        Some(run) => Ok(run),
        None => Err(last_err.unwrap_or_else(|| io::Error::other("retry attempts exhausted"))),
    }
}

fn protocol_error(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}
