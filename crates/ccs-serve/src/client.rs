//! The in-repo client: submit sweeps, stream results, reassemble reports.
//!
//! [`Client`] wraps any `BufRead`/`Write` pair speaking the
//! [`crate::protocol`] — a Unix socket ([`Client::connect_unix`]), a
//! socketpair half in tests, or a child daemon's stdio.  Its centrepiece is
//! [`Client::collect`]: read frames for one request until its terminal
//! `status`, sorting streamed records by their report position `seq` so
//! [`CollectedRun::into_report`] reproduces a batch
//! [`Experiment::run`](ccs_experiment::Experiment::run) report *byte for
//! byte* — the invariant the e2e tests and the CI smoke `cmp` against a
//! direct run.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use ccs_experiment::{Report, RunRecord};

use crate::protocol::{Frame, RequestState, SubmitRequest};

/// One streamed record with its provenance.
#[derive(Debug)]
pub struct CollectedRecord {
    /// Report position of the record.
    pub seq: usize,
    /// Whether the daemon served it from the persistent result store.
    pub cached: bool,
    /// The record itself.
    pub record: RunRecord,
}

/// Everything the daemon streamed for one request.
#[derive(Debug)]
pub struct CollectedRun {
    /// Resolved experiment name (from the `accepted` frame).
    pub name: String,
    /// Effective scale divisor (from the `accepted` frame).
    pub scale: u64,
    /// Records a complete run would produce.
    pub total: usize,
    /// Terminal state of the request.
    pub state: RequestState,
    /// Streamed records, sorted by `seq` (ascending).
    pub records: Vec<CollectedRecord>,
}

impl CollectedRun {
    /// Whether every streamed record was a store hit.
    pub fn all_cached(&self) -> bool {
        !self.records.is_empty() && self.records.iter().all(|r| r.cached)
    }

    /// Reassemble the batch-identical [`Report`]: name and scale from the
    /// `accepted` frame, records in `seq` order.
    pub fn into_report(self) -> Report {
        let mut report = Report::new(self.name, self.scale);
        report.records = self.records.into_iter().map(|r| r.record).collect();
        report
    }
}

/// A protocol client over one connection.
pub struct Client<R, W> {
    reader: R,
    writer: W,
    /// Frames about *other* requests, buffered while collecting one.
    stash: Vec<Frame>,
}

impl Client<BufReader<UnixStream>, UnixStream> {
    /// Connect to a daemon's Unix socket, retrying until `timeout` expires
    /// (the daemon may still be binding), and consume its `hello`.
    pub fn connect_unix(
        path: &Path,
        timeout: Duration,
    ) -> io::Result<Client<BufReader<UnixStream>, UnixStream>> {
        let deadline = Instant::now() + timeout;
        let stream = loop {
            match UnixStream::connect(path) {
                Ok(stream) => break stream,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        };
        let writer = stream.try_clone()?;
        Client::new(BufReader::new(stream), writer)
    }
}

impl<R: BufRead, W: Write> Client<R, W> {
    /// Wrap a connected stream pair and consume the daemon's `hello`.
    pub fn new(reader: R, writer: W) -> io::Result<Client<R, W>> {
        let mut client = Client {
            reader,
            writer,
            stash: Vec::new(),
        };
        match client.next_frame()? {
            Frame::Hello { .. } => Ok(client),
            other => Err(protocol_error(format!(
                "expected hello, got: {}",
                other.to_line()
            ))),
        }
    }

    /// Send one frame.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        writeln!(self.writer, "{}", frame.to_line())?;
        self.writer.flush()
    }

    /// Read the next frame (blocking).  EOF is an error: the protocol ends
    /// with a terminal frame, not a silent close.
    pub fn next_frame(&mut self) -> io::Result<Frame> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Frame::parse(line.trim_end()).map_err(protocol_error);
        }
    }

    /// Submit a sweep request (fire and forget; stream with
    /// [`Client::collect`]).
    pub fn submit(&mut self, request: SubmitRequest) -> io::Result<()> {
        self.send(&Frame::Submit(request))
    }

    /// Ask the daemon to drop `id`'s queued points.
    pub fn cancel(&mut self, id: &str) -> io::Result<()> {
        self.send(&Frame::Cancel { id: id.to_string() })
    }

    /// Liveness round-trip: returns once the daemon answers `pong`.
    /// Frames about in-flight requests arriving first are stashed, not lost.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send(&Frame::Ping)?;
        loop {
            match self.next_frame()? {
                Frame::Pong => return Ok(()),
                other => self.stash.push(other),
            }
        }
    }

    /// Query progress of request `id`: `(completed, total, cached)` record
    /// counts, without collecting any results.  Frames about in-flight
    /// requests arriving first are stashed, not lost; an `error` frame for
    /// `id` (e.g. an id the daemon never accepted) fails the query.
    pub fn query_progress(&mut self, id: &str) -> io::Result<(usize, usize, usize)> {
        self.send(&Frame::Query { id: id.to_string() })?;
        loop {
            match self.next_frame()? {
                Frame::Progress {
                    id: fid,
                    completed,
                    total,
                    cached,
                } if fid == id => return Ok((completed, total, cached)),
                Frame::Error { id: fid, message } if fid.as_deref() == Some(id) => {
                    return Err(protocol_error(message));
                }
                other => self.stash.push(other),
            }
        }
    }

    /// Ask the daemon to drain and stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send(&Frame::Shutdown)
    }

    /// Collect request `id` to its terminal `status` frame.  See
    /// [`Client::collect_cancelling_after`] for the `cancel_after` knob.
    pub fn collect(&mut self, id: &str) -> io::Result<CollectedRun> {
        self.collect_cancelling_after(id, None)
    }

    /// Collect request `id`, sending a `cancel` after `cancel_after` result
    /// frames have streamed (when `Some`).  Frames about other requests are
    /// stashed for their own `collect` calls, so interleaved requests on one
    /// connection work.  An `error` frame for `id` — or one with no id, e.g.
    /// a rejected submit line — fails the collect.
    pub fn collect_cancelling_after(
        &mut self,
        id: &str,
        cancel_after: Option<usize>,
    ) -> io::Result<CollectedRun> {
        let mut name = String::new();
        let mut scale = 1u64;
        let mut total = 0usize;
        let mut records: Vec<CollectedRecord> = Vec::new();
        let mut cancel_sent = false;

        // Replay earlier-stashed frames (oldest first) before reading fresh
        // ones; whatever is still unclaimed at return goes back, in order.
        let mut pending: std::collections::VecDeque<Frame> = std::mem::take(&mut self.stash).into();
        let restash = |this: &mut Self, pending: std::collections::VecDeque<Frame>| {
            let newer = std::mem::take(&mut this.stash);
            this.stash = pending.into_iter().chain(newer).collect();
        };
        loop {
            let frame = match pending.pop_front() {
                Some(frame) => frame,
                None => self.next_frame()?,
            };
            match frame {
                Frame::Accepted {
                    id: fid,
                    name: fname,
                    scale: fscale,
                    total: ftotal,
                    ..
                } if fid == id => {
                    name = fname;
                    scale = fscale;
                    total = ftotal;
                }
                Frame::Result {
                    id: fid,
                    seq,
                    cached,
                    record,
                    ..
                } if fid == id => {
                    records.push(CollectedRecord {
                        seq,
                        cached,
                        record,
                    });
                    if let Some(threshold) = cancel_after {
                        if !cancel_sent && records.len() >= threshold {
                            cancel_sent = true;
                            self.cancel(id)?;
                        }
                    }
                }
                Frame::Status {
                    id: fid,
                    state,
                    total: ftotal,
                    ..
                } if fid == id => {
                    restash(self, pending);
                    records.sort_by_key(|r| r.seq);
                    return Ok(CollectedRun {
                        name,
                        scale,
                        total: total.max(ftotal),
                        state,
                        records,
                    });
                }
                Frame::Error { id: fid, message }
                    if fid.as_deref() == Some(id) || fid.is_none() =>
                {
                    restash(self, pending);
                    return Err(protocol_error(message));
                }
                other => self.stash.push(other),
            }
        }
    }
}

fn protocol_error(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}
