//! Daemon front ends: stdio (one session) and Unix socket (many).
//!
//! Both front ends speak the same [`crate::session`] loop over the same
//! [`Service`]; the transport is the only difference.  Stdio serves exactly
//! one session (the pipe *is* the client) and drains the service when it
//! ends.  The Unix listener accepts until any session's client sends
//! `shutdown`, then stops accepting, waits for the remaining sessions to
//! end, drains the service and removes the socket file.

use std::io::{self, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ccs_runtime::fault::{self, FaultKind};

use crate::service::{Service, ServiceConfig};
use crate::session;

/// A running sweep daemon: the service plus its front ends.
pub struct Server {
    service: Arc<Service>,
}

impl Server {
    /// Start the daemon core with the given configuration.
    pub fn start(config: ServiceConfig) -> io::Result<Server> {
        Ok(Server {
            service: Arc::new(Service::start(config)?),
        })
    }

    /// The underlying service (for in-process clients and tests).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Serve one session over an arbitrary stream pair; returns whether the
    /// client requested daemon shutdown.  Used by the socket front end, the
    /// e2e tests (over socketpairs) and embedders.
    pub fn serve_stream(
        &self,
        reader: impl io::BufRead,
        writer: impl io::Write + Send + 'static,
    ) -> bool {
        session::run(&self.service, reader, writer)
    }

    /// Serve exactly one session over stdin/stdout, then drain the service.
    ///
    /// This is the pipe-friendly mode: frames in on stdin, frames out on
    /// stdout; EOF on stdin drains outstanding requests before returning.
    pub fn serve_stdio(&self) {
        let stdin = io::stdin();
        let stdout = io::stdout();
        self.serve_stream(stdin.lock(), stdout);
        self.service.drain();
    }

    /// Bind `path` and serve sessions until a client sends `shutdown`; then
    /// stop accepting, wait for the remaining sessions, drain the service
    /// and remove the socket file.
    pub fn serve_unix(&self, path: &Path) -> io::Result<()> {
        // A stale socket file from a previous daemon would fail the bind.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        // Nonblocking accept + poll so the `shutdown` flag can break the
        // loop promptly (accept(2) has no portable cancellation).
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let mut sessions: Vec<thread::JoinHandle<()>> = Vec::new();
        while !shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let service = Arc::clone(&self.service);
                    let shutdown = Arc::clone(&shutdown);
                    sessions.push(thread::spawn(move || {
                        if let Ok(session_shutdown) = serve_unix_stream(&service, stream) {
                            if session_shutdown {
                                shutdown.store(true, Ordering::Release);
                            }
                        }
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
            sessions.retain(|handle| !handle.is_finished());
        }
        for handle in sessions {
            let _ = handle.join();
        }
        self.service.drain();
        let _ = std::fs::remove_file(path);
        Ok(())
    }
}

fn serve_unix_stream(service: &Service, stream: UnixStream) -> io::Result<bool> {
    // The accept loop runs nonblocking; the session must not.
    stream.set_nonblocking(false)?;
    let writer = FaultableStream(stream.try_clone()?);
    Ok(session::run(service, BufReader::new(stream), writer))
}

/// A socket writer whose `close-session` fault hook (a no-op without an
/// installed plan) tears the *whole* connection down, both directions, so
/// the peer sees an abrupt EOF mid-stream.  The teardown must happen at
/// the socket layer: the session's reader holds a duplicate of this fd,
/// so merely dropping the writer would close nothing.
struct FaultableStream(UnixStream);

impl Write for FaultableStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if fault::should_inject(FaultKind::SessionClose) {
            let _ = self.0.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "injected fault: close-session",
            ));
        }
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}
