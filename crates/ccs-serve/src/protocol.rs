//! The JSON-lines wire protocol of the sweep service.
//!
//! Every message is one JSON object on one line (a *frame*), in either
//! direction.  The vocabulary is deliberately small:
//!
//! | direction | frame | meaning |
//! |---|---|---|
//! | server → client | `hello` | greeting; carries the protocol version |
//! | client → server | `submit` | a sweep request with a client-chosen `id` |
//! | server → client | `accepted` | request validated and queued; resolved name/scale/totals |
//! | server → client | `result` | one streamed [`RunRecord`], with its report position `seq` |
//! | server → client | `status` | terminal frame per request: `done`, `cancelled`, `timeout` or `failed` |
//! | client → server | `query` | progress probe for a submitted request |
//! | server → client | `progress` | per-request progress: `completed`/`total`/`cached`, no records |
//! | client → server | `cancel` | drop the request's queued points |
//! | client → server | `ping` / server → client `pong` | liveness |
//! | client → server | `health` | daemon health probe |
//! | server → client | `health` | health report: uptime, inflight, queue depth, fault counters, store stats |
//! | client → server | `shutdown` | drain in-flight requests, then stop |
//! | server → client | `error` | validation or protocol failure (with `id` when attributable) |
//!
//! Framing rules (the version contract, see DESIGN.md §10): unknown object
//! *fields* are ignored, unknown frame *types* are an error, and
//! [`PROTOCOL_VERSION`] only changes when one of those two rules would not
//! save an old peer.  Version 2 added the `timeout` and `failed` terminal
//! states — new values of an *existing* field, which the rules cannot save
//! an old client from — plus the (rule-covered) `health` frames and the
//! optional `timeout_ms` submit field.
//!
//! Frames parse from and render to single lines via the same offline JSON
//! layer the report format uses ([`ccs_experiment::json`]), so a `result`
//! frame's `record` member is byte-compatible with report records.

use ccs_experiment::json::{self, Json};
use ccs_experiment::RunRecord;
use ccs_sim::SimEngine;

/// The protocol version announced in the `hello` frame.
pub const PROTOCOL_VERSION: &str = "ccs-serve/2";

/// A parsed sweep request: the `submit` frame's payload.
#[derive(Clone, Debug)]
pub struct SubmitRequest {
    /// Client-chosen request id; echoed on every frame about this request.
    pub id: String,
    /// Experiment name; defaults to the first workload's name when absent.
    pub name: Option<String>,
    /// Workload specs (`"mergesort"`, `"heat:rows=64,cols=32"`, …).
    pub workloads: Vec<String>,
    /// Scheduler specs; empty means the PDF-and-WS default.
    pub schedulers: Vec<String>,
    /// Core counts of default design points; empty means the 8-core default.
    pub cores: Vec<usize>,
    /// Scale divisor (default 1).
    pub scale: u64,
    /// Quick mode: clamp scale to at least 256.
    pub quick: bool,
    /// Simulator engine (default event-driven).
    pub engine: SimEngine,
    /// Whether to run the 1-core sequential baseline (default true).
    pub baseline: bool,
    /// Server-side deadline in milliseconds; `None` means no deadline.
    /// Counted from acceptance (queue wait included); on expiry the request
    /// is cancelled and terminates with the `timeout` state, keeping every
    /// record streamed so far.
    pub timeout_ms: Option<u64>,
}

/// Terminal state of a request, carried by the `status` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestState {
    /// Every record was produced and streamed.
    Done,
    /// The request was cancelled; only a prefix of records was streamed.
    Cancelled,
    /// The request's deadline expired; only a prefix of records was
    /// streamed.  Resubmission is idempotent (the memoised store keeps the
    /// partial results), so a retry resumes where this attempt got to.
    TimedOut,
    /// One or more sweep points failed (e.g. a panicking workload build);
    /// each failed point was reported in an `error` frame.
    Failed,
}

impl RequestState {
    fn name(self) -> &'static str {
        match self {
            RequestState::Done => "done",
            RequestState::Cancelled => "cancelled",
            RequestState::TimedOut => "timeout",
            RequestState::Failed => "failed",
        }
    }
}

/// Daemon health, carried by the server→client `health` frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Milliseconds since the service started.
    pub uptime_ms: u64,
    /// Requests currently executing (accepted, not yet terminal).
    pub inflight: usize,
    /// Requests queued behind the workers.
    pub queue_depth: usize,
    /// Panics caught at the service and pool boundaries since start.
    pub panics_caught: u64,
    /// Requests terminated by deadline expiry since start.
    pub timeouts: u64,
    /// Records currently memoised in the result store (0 when storeless).
    pub store_records: usize,
    /// Bytes the result store occupies on disk (0 when storeless).
    pub store_bytes: u64,
}

/// One wire frame, either direction.
#[derive(Clone, Debug)]
pub enum Frame {
    /// Server greeting with [`PROTOCOL_VERSION`].
    Hello {
        /// The announced protocol version.
        version: String,
    },
    /// Client sweep request.
    Submit(SubmitRequest),
    /// Request validated and queued.
    Accepted {
        /// The request id.
        id: String,
        /// Resolved experiment name (for client-side report assembly).
        name: String,
        /// Resolved effective scale divisor.
        scale: u64,
        /// Number of sweep points.
        points: usize,
        /// Total records the request will produce when not cancelled.
        total: usize,
    },
    /// One streamed record.
    Result {
        /// The request id.
        id: String,
        /// Report position: records sorted by `seq` reproduce batch order.
        seq: usize,
        /// Total records of the request.
        total: usize,
        /// Whether this record was served from the persistent result store.
        cached: bool,
        /// The record itself, in report-JSON shape.
        record: RunRecord,
    },
    /// Terminal frame of a request.
    Status {
        /// The request id.
        id: String,
        /// `done` or `cancelled`.
        state: RequestState,
        /// Records actually streamed.
        completed: usize,
        /// Records a complete run would have streamed.
        total: usize,
    },
    /// Progress probe for a submitted request (any session may ask about
    /// any live request id).
    Query {
        /// The request id to report on.
        id: String,
    },
    /// Progress answer: how far a request has got, without streaming its
    /// records.
    Progress {
        /// The request id.
        id: String,
        /// Records streamed so far (cached + simulated).
        completed: usize,
        /// Records a complete run will stream.
        total: usize,
        /// How many of the completed records came from the result store.
        cached: usize,
    },
    /// Cancel a request's queued points.
    Cancel {
        /// The request id to cancel.
        id: String,
    },
    /// Liveness probe.
    Ping,
    /// Liveness answer.
    Pong,
    /// Daemon health probe (client → server).
    HealthQuery,
    /// Daemon health report (server → client).
    Health(HealthReport),
    /// Drain and stop the daemon.
    Shutdown,
    /// Validation or protocol failure.
    Error {
        /// The offending request id, when attributable.
        id: Option<String>,
        /// Human-readable reason.
        message: String,
    },
}

impl Frame {
    /// The server greeting.
    pub fn hello() -> Frame {
        Frame::Hello {
            version: PROTOCOL_VERSION.to_string(),
        }
    }

    /// Render the frame as one newline-free JSON line.
    pub fn to_line(&self) -> String {
        self.to_json().to_string_compact()
    }

    fn to_json(&self) -> Json {
        match self {
            Frame::Hello { version } => Json::object([
                ("type", "hello".into()),
                ("version", version.as_str().into()),
            ]),
            Frame::Submit(req) => {
                let strings = |items: &[String]| {
                    Json::Array(items.iter().map(|s| Json::Str(s.clone())).collect())
                };
                Json::object([
                    ("type", "submit".into()),
                    ("id", req.id.as_str().into()),
                    ("name", req.name.as_deref().map_or(Json::Null, Json::from)),
                    ("workloads", strings(&req.workloads)),
                    ("schedulers", strings(&req.schedulers)),
                    (
                        "cores",
                        Json::Array(req.cores.iter().map(|&c| Json::from(c)).collect()),
                    ),
                    ("scale", req.scale.into()),
                    ("quick", req.quick.into()),
                    ("engine", req.engine.name().into()),
                    ("baseline", req.baseline.into()),
                    ("timeout_ms", req.timeout_ms.map_or(Json::Null, Json::from)),
                ])
            }
            Frame::Accepted {
                id,
                name,
                scale,
                points,
                total,
            } => Json::object([
                ("type", "accepted".into()),
                ("id", id.as_str().into()),
                ("name", name.as_str().into()),
                ("scale", (*scale).into()),
                ("points", (*points).into()),
                ("total", (*total).into()),
            ]),
            Frame::Result {
                id,
                seq,
                total,
                cached,
                record,
            } => Json::object([
                ("type", "result".into()),
                ("id", id.as_str().into()),
                ("seq", (*seq).into()),
                ("total", (*total).into()),
                ("cached", (*cached).into()),
                ("record", record.to_json()),
            ]),
            Frame::Status {
                id,
                state,
                completed,
                total,
            } => Json::object([
                ("type", "status".into()),
                ("id", id.as_str().into()),
                ("state", state.name().into()),
                ("completed", (*completed).into()),
                ("total", (*total).into()),
            ]),
            Frame::Query { id } => {
                Json::object([("type", "query".into()), ("id", id.as_str().into())])
            }
            Frame::Progress {
                id,
                completed,
                total,
                cached,
            } => Json::object([
                ("type", "progress".into()),
                ("id", id.as_str().into()),
                ("completed", (*completed).into()),
                ("total", (*total).into()),
                ("cached", (*cached).into()),
            ]),
            Frame::Cancel { id } => {
                Json::object([("type", "cancel".into()), ("id", id.as_str().into())])
            }
            Frame::Ping => Json::object([("type", "ping".into())]),
            Frame::Pong => Json::object([("type", "pong".into())]),
            Frame::HealthQuery => Json::object([("type", "health".into())]),
            Frame::Health(report) => Json::object([
                ("type", "health".into()),
                ("uptime_ms", report.uptime_ms.into()),
                ("inflight", report.inflight.into()),
                ("queue_depth", report.queue_depth.into()),
                ("panics_caught", report.panics_caught.into()),
                ("timeouts", report.timeouts.into()),
                ("store_records", report.store_records.into()),
                ("store_bytes", report.store_bytes.into()),
            ]),
            Frame::Shutdown => Json::object([("type", "shutdown".into())]),
            Frame::Error { id, message } => Json::object([
                ("type", "error".into()),
                ("id", id.as_deref().map_or(Json::Null, Json::from)),
                ("message", message.as_str().into()),
            ]),
        }
    }

    /// Parse one line into a frame.  Unknown fields are ignored (forward
    /// compatibility); unknown frame types and malformed payloads are errors.
    pub fn parse(line: &str) -> Result<Frame, String> {
        let doc = json::parse(line).map_err(|e| format!("malformed frame: {e}"))?;
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "frame has no \"type\" field".to_string())?;
        let id = |doc: &Json| -> Result<String, String> {
            doc.get("id")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind:?} frame has no \"id\" field"))
        };
        match kind {
            "hello" => Ok(Frame::Hello {
                version: doc
                    .get("version")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            "submit" => Ok(Frame::Submit(parse_submit(&doc, id(&doc)?)?)),
            "accepted" => Ok(Frame::Accepted {
                id: id(&doc)?,
                name: require_str(&doc, "name")?,
                scale: require_u64(&doc, "scale")?,
                points: require_u64(&doc, "points")? as usize,
                total: require_u64(&doc, "total")? as usize,
            }),
            "result" => Ok(Frame::Result {
                id: id(&doc)?,
                seq: require_u64(&doc, "seq")? as usize,
                total: require_u64(&doc, "total")? as usize,
                cached: doc.get("cached").and_then(Json::as_bool).unwrap_or(false),
                record: RunRecord::from_json(
                    doc.get("record")
                        .ok_or_else(|| "result frame has no \"record\"".to_string())?,
                )
                .map_err(|e| format!("bad record in result frame: {e}"))?,
            }),
            "status" => Ok(Frame::Status {
                id: id(&doc)?,
                state: match require_str(&doc, "state")?.as_str() {
                    "done" => RequestState::Done,
                    "cancelled" => RequestState::Cancelled,
                    "timeout" => RequestState::TimedOut,
                    "failed" => RequestState::Failed,
                    other => return Err(format!("unknown request state {other:?}")),
                },
                completed: require_u64(&doc, "completed")? as usize,
                total: require_u64(&doc, "total")? as usize,
            }),
            "query" => Ok(Frame::Query { id: id(&doc)? }),
            "progress" => Ok(Frame::Progress {
                id: id(&doc)?,
                completed: require_u64(&doc, "completed")? as usize,
                total: require_u64(&doc, "total")? as usize,
                cached: require_u64(&doc, "cached")? as usize,
            }),
            "cancel" => Ok(Frame::Cancel { id: id(&doc)? }),
            "ping" => Ok(Frame::Ping),
            "pong" => Ok(Frame::Pong),
            // The probe and the report share the wire type; the report is
            // the one carrying measurements.
            "health" => {
                if doc.get("uptime_ms").is_none() {
                    Ok(Frame::HealthQuery)
                } else {
                    Ok(Frame::Health(HealthReport {
                        uptime_ms: require_u64(&doc, "uptime_ms")?,
                        inflight: require_u64(&doc, "inflight")? as usize,
                        queue_depth: require_u64(&doc, "queue_depth")? as usize,
                        panics_caught: require_u64(&doc, "panics_caught")?,
                        timeouts: require_u64(&doc, "timeouts")?,
                        store_records: require_u64(&doc, "store_records")? as usize,
                        store_bytes: require_u64(&doc, "store_bytes")?,
                    }))
                }
            }
            "shutdown" => Ok(Frame::Shutdown),
            "error" => Ok(Frame::Error {
                id: doc.get("id").and_then(Json::as_str).map(str::to_string),
                message: require_str(&doc, "message")?,
            }),
            other => Err(format!("unknown frame type {other:?}")),
        }
    }
}

fn require_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("frame has no string field {key:?}"))
}

fn require_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("frame has no integer field {key:?}"))
}

fn parse_submit(doc: &Json, id: String) -> Result<SubmitRequest, String> {
    let strings = |key: &str| -> Result<Vec<String>, String> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(Vec::new()),
            Some(value) => value
                .as_array()
                .ok_or_else(|| format!("submit field {key:?} must be an array of strings"))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("submit field {key:?} must be an array of strings"))
                })
                .collect(),
        }
    };
    let workloads = strings("workloads")?;
    if workloads.is_empty() {
        return Err("submit has no workloads".to_string());
    }
    let cores = match doc.get("cores") {
        None | Some(Json::Null) => Vec::new(),
        Some(value) => value
            .as_array()
            .ok_or_else(|| "submit field \"cores\" must be an array of integers".to_string())?
            .iter()
            .map(|v| {
                v.as_u64().map(|c| c as usize).ok_or_else(|| {
                    "submit field \"cores\" must be an array of integers".to_string()
                })
            })
            .collect::<Result<_, _>>()?,
    };
    let engine = match doc.get("engine").and_then(Json::as_str) {
        None => SimEngine::EventDriven,
        Some(text) => text.parse::<SimEngine>()?,
    };
    Ok(SubmitRequest {
        id,
        name: doc.get("name").and_then(Json::as_str).map(str::to_string),
        workloads,
        schedulers: strings("schedulers")?,
        cores,
        scale: doc.get("scale").and_then(Json::as_u64).unwrap_or(1),
        quick: doc.get("quick").and_then(Json::as_bool).unwrap_or(false),
        engine,
        baseline: doc.get("baseline").and_then(Json::as_bool).unwrap_or(true),
        timeout_ms: doc.get("timeout_ms").and_then(Json::as_u64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_and_defaults_apply() {
        let line = r#"{"type":"submit","id":"r1","workloads":["mergesort","lu"]}"#;
        let Frame::Submit(req) = Frame::parse(line).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(req.id, "r1");
        assert_eq!(req.workloads, ["mergesort", "lu"]);
        assert!(req.schedulers.is_empty());
        assert!(req.cores.is_empty());
        assert_eq!(req.scale, 1);
        assert!(!req.quick);
        assert_eq!(req.engine, SimEngine::EventDriven);
        assert!(req.baseline);
        assert_eq!(req.timeout_ms, None);

        // A deadline survives the round trip.
        let timed = r#"{"type":"submit","id":"r2","workloads":["lu"],"timeout_ms":1500}"#;
        let Frame::Submit(timed) = Frame::parse(timed).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(timed.timeout_ms, Some(1500));
        let Frame::Submit(timed) = Frame::parse(&Frame::Submit(timed).to_line()).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(timed.timeout_ms, Some(1500));

        // Full rendering parses back to the same request.
        let rendered = Frame::Submit(req.clone()).to_line();
        assert!(!rendered.contains('\n'));
        let Frame::Submit(again) = Frame::parse(&rendered).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(again.workloads, req.workloads);
        assert_eq!(again.scale, req.scale);
    }

    #[test]
    fn unknown_fields_are_ignored_unknown_types_are_not() {
        let ok = r#"{"type":"ping","future-extension":[1,2,3]}"#;
        assert!(matches!(Frame::parse(ok).unwrap(), Frame::Ping));
        let bad = r#"{"type":"warp-drive"}"#;
        assert!(Frame::parse(bad)
            .unwrap_err()
            .contains("unknown frame type"));
        assert!(Frame::parse("not json").is_err());
        assert!(Frame::parse("[1,2]").unwrap_err().contains("\"type\""));
    }

    #[test]
    fn control_frames_round_trip() {
        for frame in [
            Frame::hello(),
            Frame::Ping,
            Frame::Pong,
            Frame::Shutdown,
            Frame::Cancel {
                id: "r9".to_string(),
            },
            Frame::Error {
                id: None,
                message: "nope".to_string(),
            },
            Frame::Status {
                id: "r1".to_string(),
                state: RequestState::Cancelled,
                completed: 3,
                total: 8,
            },
            Frame::Status {
                id: "r1".to_string(),
                state: RequestState::TimedOut,
                completed: 3,
                total: 8,
            },
            Frame::Status {
                id: "r1".to_string(),
                state: RequestState::Failed,
                completed: 3,
                total: 8,
            },
            Frame::HealthQuery,
            Frame::Health(HealthReport {
                uptime_ms: 1234,
                inflight: 1,
                queue_depth: 2,
                panics_caught: 3,
                timeouts: 4,
                store_records: 5,
                store_bytes: 6789,
            }),
            Frame::Query {
                id: "r2".to_string(),
            },
            Frame::Progress {
                id: "r2".to_string(),
                completed: 5,
                total: 12,
                cached: 2,
            },
        ] {
            let line = frame.to_line();
            let parsed = Frame::parse(&line).unwrap();
            assert_eq!(line, parsed.to_line(), "round trip: {line}");
        }
        let Frame::Hello { version } = Frame::parse(&Frame::hello().to_line()).unwrap() else {
            panic!("expected hello");
        };
        assert_eq!(version, PROTOCOL_VERSION);
    }
}
