//! `ccs-serve` — the persistent sweep-service daemon of the CCS
//! reproduction.
//!
//! The batch harness ([`ccs_experiment::Experiment`]) answers one question
//! per process: build the workloads, sweep the cross product, print a
//! report, exit.  Iterating on the paper's figures this way rebuilds and
//! re-simulates everything on each invocation.  This crate keeps the warm
//! state alive instead: a daemon that accepts sweep requests over a
//! JSON-lines protocol, batches their points onto one shared `ccs-runtime`
//! pool, streams records back as they complete, and memoises every finished
//! record in a persistent on-disk store — so a repeated request is served
//! from disk, byte-identical to a fresh run.
//!
//! The pieces, one module each:
//!
//! * [`protocol`] — the frame vocabulary (`submit`, `result`, `status`, …)
//!   and its single-line JSON encoding;
//! * [`queue`] — the bounded request queue (backpressure: a full queue
//!   rejects immediately rather than stalling the connection);
//! * [`service`] — workers, the shared simulation pool, the
//!   [`ResultStore`](ccs_experiment::ResultStore) front, and per-request
//!   [`CancelToken`](ccs_runtime::CancelToken)s (cancel drops queued
//!   points; in-flight points finish and are kept);
//! * [`session`] — one client connection: validation through the spec
//!   grammar, frame routing, bounded-line input hardening, graceful drain
//!   on EOF;
//! * [`server`] — the stdio and Unix-socket front ends;
//! * [`client`] — the in-repo client, which reassembles streamed records
//!   into batch-identical [`Report`](ccs_experiment::Report)s, plus the
//!   idempotent [`run_with_retry`] helper.
//!
//! Failure containment — per-request deadlines (`timeout_ms`), panic
//! isolation at the pool boundary, the `health` frame, checksummed
//! crash-safe store entries, and the deterministic fault-injection plan
//! (`CCS_FAULT_PLAN`) that exercises all of it — is documented in
//! DESIGN.md §13.
//!
//! # Quick start (in process)
//!
//! ```
//! use ccs_serve::protocol::SubmitRequest;
//! use ccs_serve::{Client, Server, ServiceConfig};
//! use std::io::BufReader;
//! use std::os::unix::net::UnixStream;
//!
//! let server = Server::start(ServiceConfig::default()).unwrap();
//! let (daemon_side, client_side) = UnixStream::pair().unwrap();
//! let session = {
//!     let reader = BufReader::new(daemon_side.try_clone().unwrap());
//!     std::thread::spawn(move || server.serve_stream(reader, daemon_side))
//! };
//!
//! let writer = client_side.try_clone().unwrap();
//! let mut client = Client::new(BufReader::new(client_side), writer).unwrap();
//! client
//!     .submit(SubmitRequest {
//!         id: "r1".to_string(),
//!         name: None,
//!         workloads: vec!["mergesort".to_string()],
//!         schedulers: vec!["pdf".to_string(), "ws".to_string()],
//!         cores: vec![2],
//!         scale: 1024,
//!         quick: false,
//!         engine: ccs_sim::SimEngine::EventDriven,
//!         baseline: true,
//!         timeout_ms: None,
//!     })
//!     .unwrap();
//! let run = client.collect("r1").unwrap();
//! assert_eq!(run.records.len(), 2);
//! drop(client);
//! session.join().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;
pub mod session;

pub use client::{run_with_retry, Client, CollectedRecord, CollectedRun, RetryPolicy};
pub use protocol::{Frame, HealthReport, RequestState, SubmitRequest, PROTOCOL_VERSION};
pub use queue::{RequestQueue, SubmitError};
pub use server::Server;
pub use service::{Service, ServiceConfig};
pub use session::MAX_FRAME_BYTES;
