//! One client connection: the frame loop between a stream and the service.
//!
//! A session owns the read half of a connection and a writer thread owning
//! the write half; every outbound frame — whether produced by the session
//! itself (`pong`, `error`) or by a service worker streaming results — goes
//! through one mpsc channel to that writer, so frames are never interleaved
//! mid-line however many workers stream at once.
//!
//! Lifecycle: greet with `hello`, then read frames until EOF or `shutdown`.
//! EOF does **not** cancel outstanding requests — a one-shot client
//! (`printf '…submit…' | ccs-serve`) closes its write side immediately, and
//! its results must still stream.  Instead the session *drains*: it waits
//! until every request it submitted has reached a terminal `status` frame
//! (tracked by an RAII guard the service worker drops), then closes the
//! writer and returns whether the client asked for daemon shutdown.
//!
//! Input is hostile until parsed: lines are read through a bounded reader
//! ([`MAX_FRAME_BYTES`]) so an unterminated or gigantic line costs bounded
//! memory and earns a typed `error` frame instead of unbounded buffering,
//! and the frame parser itself never panics (fuzzed in
//! `tests/protocol_proptests.rs`).

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use ccs_runtime::fault;
use ccs_runtime::CancelToken;
use parking_lot::{Condvar, Mutex};

use crate::protocol::Frame;
use crate::service::Service;

/// Longest inbound frame line a session accepts, in bytes.  Client→server
/// frames are tiny (a submit names a few workloads); anything larger is
/// garbage or abuse and is rejected with an `error` frame, costing the
/// session at most this much buffer.
pub const MAX_FRAME_BYTES: usize = 256 * 1024;

/// Counts the session's requests that have not yet reached terminal status.
struct PendingRequests {
    count: Mutex<usize>,
    zero: Condvar,
}

impl PendingRequests {
    fn new() -> Arc<PendingRequests> {
        Arc::new(PendingRequests {
            count: Mutex::new(0),
            zero: Condvar::new(),
        })
    }

    fn begin(self: &Arc<Self>) -> PendingGuard {
        *self.count.lock() += 1;
        PendingGuard(Arc::clone(self))
    }

    fn wait_for_drain(&self) {
        let mut count = self.count.lock();
        while *count > 0 {
            self.zero.wait(&mut count);
        }
    }
}

/// RAII drain counter: the service worker drops this when the request is
/// terminal (done, cancelled, or skipped), whatever path it took.
struct PendingGuard(Arc<PendingRequests>);

impl Drop for PendingGuard {
    fn drop(&mut self) {
        let mut count = self.0.count.lock();
        *count -= 1;
        if *count == 0 {
            self.0.zero.notify_all();
        }
    }
}

/// Run one session over `reader`/`writer`.  Blocks until the client
/// disconnects (and the session has drained) or sends `shutdown`; returns
/// `true` when the client asked the daemon to shut down.
pub fn run(service: &Service, reader: impl BufRead, writer: impl Write + Send + 'static) -> bool {
    let (tx, rx) = mpsc::channel::<Frame>();
    let writer_thread = match thread::Builder::new()
        .name("ccs-serve-writer".to_string())
        .spawn(move || write_loop(writer, rx))
    {
        Ok(handle) => handle,
        Err(e) => {
            // Thread exhaustion: close this session cleanly instead of
            // taking the accept loop down with a panic.
            eprintln!("ccs-serve: failed to spawn session writer: {e}");
            return false;
        }
    };

    let shutdown = read_loop(service, reader, &tx);

    // Drain before closing the writer: workers may still be streaming.
    drop(tx);
    let _ = writer_thread.join();
    shutdown
}

fn write_loop(mut writer: impl Write, rx: mpsc::Receiver<Frame>) {
    // A write error means the client is gone; stop consuming so senders see
    // the disconnect (workers then cancel their requests).
    for frame in rx {
        // Fault-plan hook (a no-op unless a plan is installed): a client on
        // a stalled link.  The abrupt-close injection lives in the socket
        // layer (`server::FaultableStream`), which can actually tear the
        // connection down — merely dropping this writer would leave the
        // reader's duplicate of the socket open and both sides blocked.
        if let Some(delay) = fault::session_write_delay() {
            thread::sleep(delay);
        }
        if writeln!(writer, "{}", frame.to_line()).is_err() {
            break;
        }
        // Flush per frame: results must stream as they complete, not when a
        // buffer happens to fill.
        if writer.flush().is_err() {
            break;
        }
    }
}

/// One bounded line read: a line, an oversized line (consumed and
/// discarded past the cap), or end of input.
enum LineRead {
    Line(String),
    Oversized,
    Eof,
}

/// Read up to the next newline, buffering at most `max` bytes.  Oversized
/// lines are consumed to their end (or EOF) but not kept, so one hostile
/// line cannot take the session's memory with it.
fn read_frame_line(reader: &mut impl BufRead, max: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF.
            return Ok(if overflow {
                LineRead::Oversized
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflow {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                reader.consume(pos + 1);
                return Ok(if overflow || buf.len() > max {
                    LineRead::Oversized
                } else {
                    LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
                });
            }
            None => {
                let len = chunk.len();
                if !overflow {
                    buf.extend_from_slice(chunk);
                    if buf.len() > max {
                        overflow = true;
                        buf = Vec::new();
                    }
                }
                reader.consume(len);
            }
        }
    }
}

fn read_loop(service: &Service, mut reader: impl BufRead, tx: &mpsc::Sender<Frame>) -> bool {
    let send = |frame: Frame| {
        let _ = tx.send(frame);
    };
    send(Frame::hello());

    let pending = PendingRequests::new();
    let mut tokens: HashMap<String, CancelToken> = HashMap::new();
    let mut shutdown = false;

    loop {
        let line = match read_frame_line(&mut reader, MAX_FRAME_BYTES) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Oversized) => {
                send(Frame::Error {
                    id: None,
                    message: format!("frame line exceeds {MAX_FRAME_BYTES} bytes"),
                });
                continue;
            }
            Ok(LineRead::Eof) => break,
            Err(_) => break, // connection error: treat as EOF
        };
        if line.trim().is_empty() {
            continue;
        }
        let frame = match Frame::parse(&line) {
            Ok(frame) => frame,
            Err(message) => {
                send(Frame::Error { id: None, message });
                continue;
            }
        };
        match frame {
            Frame::Submit(request) => {
                let id = request.id.clone();
                let prepared = match service.prepare(&request) {
                    Ok(prepared) => prepared,
                    Err(message) => {
                        send(Frame::Error {
                            id: Some(id),
                            message,
                        });
                        continue;
                    }
                };
                let token = service.request_token();
                tokens.insert(id.clone(), token.clone());
                let guard = Box::new(pending.begin());
                if let Err(e) = service.submit(prepared, token, tx.clone(), Some(guard)) {
                    // The guard travelled into the rejected request and has
                    // already been dropped with it — no pending leak.
                    send(Frame::Error {
                        id: Some(id),
                        message: e.to_string(),
                    });
                }
            }
            Frame::Cancel { id } => match tokens.get(&id) {
                Some(token) => token.cancel(),
                None => send(Frame::Error {
                    id: Some(id),
                    message: "cancel: unknown request id".to_string(),
                }),
            },
            Frame::Query { id } => match service.progress(&id) {
                Some((completed, total, cached)) => send(Frame::Progress {
                    id,
                    completed,
                    total,
                    cached,
                }),
                None => send(Frame::Error {
                    id: Some(id),
                    message: "query: unknown request id".to_string(),
                }),
            },
            Frame::Ping => send(Frame::Pong),
            Frame::HealthQuery => send(Frame::Health(service.health())),
            Frame::Shutdown => {
                shutdown = true;
                break;
            }
            // Server-to-client frames arriving at the server are protocol
            // violations; answer and keep the session usable.
            other => send(Frame::Error {
                id: None,
                message: format!("unexpected frame: {}", other.to_line()),
            }),
        }
    }

    pending.wait_for_drain();
    shutdown
}
