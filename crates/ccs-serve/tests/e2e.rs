//! End-to-end daemon tests over socketpairs: concurrent clients, memoised
//! repeats (byte-identical to a direct batch run), cancellation mid-sweep,
//! store persistence across daemon restarts, protocol robustness, and the
//! failure-containment paths — deadlines, panic isolation, and client
//! retry against a slow-to-start daemon.

use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ccs_experiment::{Experiment, WorkloadSpec};
use ccs_sched::SchedulerSpec;
use ccs_serve::protocol::SubmitRequest;
use ccs_serve::{run_with_retry, Client, RequestState, RetryPolicy, Server, ServiceConfig};
use ccs_sim::{CmpConfig, SimEngine};

type PairClient = Client<BufReader<UnixStream>, UnixStream>;

fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ccs-serve-e2e-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

/// Connect a client to `server` over a socketpair; the session runs on its
/// own thread and ends (returning the shutdown flag) when the client drops.
fn connect(server: &Arc<Server>) -> (PairClient, thread::JoinHandle<bool>) {
    let (daemon_side, client_side) = UnixStream::pair().unwrap();
    let session = {
        let server = Arc::clone(server);
        thread::spawn(move || {
            let reader = BufReader::new(daemon_side.try_clone().unwrap());
            server.serve_stream(reader, daemon_side)
        })
    };
    let writer = client_side.try_clone().unwrap();
    let client = Client::new(BufReader::new(client_side), writer).unwrap();
    (client, session)
}

fn submit(id: &str, workloads: &[&str], cores: &[usize], schedulers: &[&str]) -> SubmitRequest {
    SubmitRequest {
        id: id.to_string(),
        name: Some("e2e".to_string()),
        workloads: workloads.iter().map(|s| s.to_string()).collect(),
        schedulers: schedulers.iter().map(|s| s.to_string()).collect(),
        cores: cores.to_vec(),
        scale: 1024,
        quick: false,
        engine: SimEngine::EventDriven,
        baseline: true,
        timeout_ms: None,
    }
}

/// The batch report the daemon must reproduce byte for byte.
fn direct_report(workloads: &[&str], cores: &[usize], schedulers: &[&str]) -> String {
    Experiment::named("e2e")
        .workloads(workloads.iter().map(|s| WorkloadSpec::from(*s)))
        .scale(1024)
        .schedulers(schedulers.iter().map(|s| SchedulerSpec::new(*s)))
        .configs(
            cores
                .iter()
                .map(|&c| CmpConfig::default_with_cores(c).unwrap()),
        )
        .run()
        .to_json()
}

#[test]
fn concurrent_clients_memoised_repeat_and_mid_sweep_cancel() {
    let dir = unique_dir("concurrent");
    let server = Arc::new(
        Server::start(ServiceConfig {
            store_dir: Some(dir.clone()),
            queue_capacity: 8,
            workers: 2,
            pool_threads: 2,
            ..ServiceConfig::default()
        })
        .unwrap(),
    );

    // Client 1: the same sweep twice.  The first run computes and stores;
    // the second must be served entirely from the memo store, byte-identical.
    let memo = {
        let server = Arc::clone(&server);
        thread::spawn(move || {
            let (mut client, session) = connect(&server);
            client
                .submit(submit("m1", &["mergesort"], &[2], &["pdf", "ws"]))
                .unwrap();
            let cold = client.collect("m1").unwrap();
            assert_eq!(cold.state, RequestState::Done);
            assert_eq!(cold.records.len(), 2);
            assert!(
                cold.records.iter().all(|r| !r.cached),
                "fresh store cannot hit"
            );

            client
                .submit(submit("m2", &["mergesort"], &[2], &["pdf", "ws"]))
                .unwrap();
            let warm = client.collect("m2").unwrap();
            assert_eq!(warm.state, RequestState::Done);
            assert!(warm.all_cached(), "repeat must be served from the store");

            let cold_json = cold.into_report().to_json();
            let warm_json = warm.into_report().to_json();
            assert_eq!(cold_json, warm_json, "memo hit must be byte-identical");
            drop(client);
            assert!(!session.join().unwrap());
            cold_json
        })
    };

    // Client 2, concurrently: a six-point sweep cancelled after the first
    // streamed record.  In-flight points finish, queued points are dropped,
    // and the terminal status says so.
    let cancel = {
        let server = Arc::clone(&server);
        thread::spawn(move || {
            let (mut client, session) = connect(&server);
            client
                .submit(submit("c1", &["mergesort", "lu"], &[2, 4, 8], &["pdf"]))
                .unwrap();
            let run = client.collect_cancelling_after("c1", Some(1)).unwrap();
            assert_eq!(run.state, RequestState::Cancelled);
            assert_eq!(run.total, 6);
            assert!(!run.records.is_empty(), "cancelled mid-sweep, not before");
            assert!(
                run.records.len() < run.total,
                "cancel must drop the queued tail ({} of {} streamed)",
                run.records.len(),
                run.total,
            );
            drop(client);
            assert!(!session.join().unwrap());
        })
    };

    let served_json = memo.join().unwrap();
    cancel.join().unwrap();

    // The daemon's streamed report equals a direct batch run, byte for byte.
    assert_eq!(
        served_json,
        direct_report(&["mergesort"], &[2], &["pdf", "ws"])
    );

    // A *new* daemon over the same store directory serves the sweep entirely
    // from disk — the memo survives restarts.
    drop(server);
    let reborn = Arc::new(
        Server::start(ServiceConfig {
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let (mut client, session) = connect(&reborn);
    client
        .submit(submit("m3", &["mergesort"], &[2], &["pdf", "ws"]))
        .unwrap();
    let persisted = client.collect("m3").unwrap();
    assert!(persisted.all_cached(), "store must persist across restarts");
    assert_eq!(persisted.into_report().to_json(), served_json);
    drop(client);
    assert!(!session.join().unwrap());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn progress_query_tracks_requests_without_collecting() {
    let dir = unique_dir("progress");
    let server = Arc::new(
        Server::start(ServiceConfig {
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let (mut client, session) = connect(&server);

    // Unknown ids are an error frame, and the session stays usable.
    let err = client.query_progress("ghost").unwrap_err();
    assert!(err.to_string().contains("unknown request id"), "{err}");

    client
        .submit(submit("p1", &["mergesort"], &[2], &["pdf", "ws"]))
        .unwrap();
    // The progress entry exists from the submit on; poll it to completion
    // without collecting a single result frame on this query path.
    let total = loop {
        let (completed, total, cached) = client.query_progress("p1").unwrap();
        assert_eq!(total, 2);
        assert!(completed <= total);
        assert!(cached <= completed);
        if completed == total {
            break total;
        }
        thread::sleep(std::time::Duration::from_millis(10));
    };
    // The streamed records were stashed during the queries, not lost.
    let run = client.collect("p1").unwrap();
    assert_eq!(run.state, RequestState::Done);
    assert_eq!(run.records.len(), total);
    assert!(run.records.iter().all(|r| !r.cached));

    // A fully memoised repeat reports all records as cached...
    client
        .submit(submit("p2", &["mergesort"], &[2], &["pdf", "ws"]))
        .unwrap();
    let warm = client.collect("p2").unwrap();
    assert!(warm.all_cached());
    assert_eq!(client.query_progress("p2").unwrap(), (2, 2, 2));
    // ...and any *other* session may query the same request id.
    let (mut observer, observer_session) = connect(&server);
    assert_eq!(observer.query_progress("p1").unwrap(), (2, 2, 0));
    drop(observer);
    assert!(!observer_session.join().unwrap());

    drop(client);
    assert!(!session.join().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_engine_requests_stream_byte_identically_and_share_store_entries() {
    let dir = unique_dir("batch");
    let server = Arc::new(
        Server::start(ServiceConfig {
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let (mut client, session) = connect(&server);

    // A batch-engine request computes through the grouped path and streams
    // a report byte-identical to a direct event-engine run.
    let mut request = submit("b1", &["mergesort"], &[1, 2], &["pdf"]);
    request.engine = SimEngine::Batch;
    client.submit(request).unwrap();
    let batched = client.collect("b1").unwrap();
    assert_eq!(batched.state, RequestState::Done);
    assert!(batched.records.iter().all(|r| !r.cached));
    assert_eq!(
        batched.into_report().to_json(),
        direct_report(&["mergesort"], &[1, 2], &["pdf"]),
    );

    // Canonical keys fold the batch engine onto the event engine: an
    // event-engine repeat of the same sweep is served from the entries the
    // batched run stored...
    client
        .submit(submit("e1", &["mergesort"], &[1, 2], &["pdf"]))
        .unwrap();
    let event = client.collect("e1").unwrap();
    assert!(
        event.all_cached(),
        "event run must hit batch-stored entries"
    );

    // ...and a batched repeat hits them too.
    let mut repeat = submit("b2", &["mergesort"], &[1, 2], &["pdf"]);
    repeat.engine = SimEngine::Batch;
    client.submit(repeat).unwrap();
    let warm = client.collect("b2").unwrap();
    assert!(warm.all_cached(), "batch run must hit stored entries");

    drop(client);
    assert!(!session.join().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bounded_store_stays_within_budget_across_requests() {
    let dir = unique_dir("bounded");
    // A one-byte budget forces every put to evict all entries but the one
    // just written — the daemon must keep working, just without memo hits.
    let server = Arc::new(
        Server::start(ServiceConfig {
            store_dir: Some(dir.clone()),
            store_max_bytes: Some(1),
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let (mut client, session) = connect(&server);
    client
        .submit(submit("s1", &["mergesort"], &[2], &["pdf", "ws"]))
        .unwrap();
    assert_eq!(client.collect("s1").unwrap().state, RequestState::Done);

    let entries = || {
        std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "json")
            })
            .count()
    };
    assert!(
        entries() <= 1,
        "over-budget entries must be evicted, found {}",
        entries()
    );

    drop(client);
    assert!(!session.join().unwrap());

    // A fresh daemon over the same directory (no warm in-memory layer) can
    // serve at most the one surviving disk entry: the repeat completes, but
    // not fully from cache.
    let server = Arc::new(
        Server::start(ServiceConfig {
            store_dir: Some(dir.clone()),
            store_max_bytes: Some(1),
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let (mut client, session) = connect(&server);
    client
        .submit(submit("s2", &["mergesort"], &[2], &["pdf", "ws"]))
        .unwrap();
    let repeat = client.collect("s2").unwrap();
    assert_eq!(repeat.state, RequestState::Done);
    assert!(
        !repeat.all_cached(),
        "a one-byte store cannot serve all hits"
    );
    assert!(entries() <= 1);

    drop(client);
    assert!(!session.join().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_and_invalid_frames_leave_the_session_usable() {
    let server = Arc::new(Server::start(ServiceConfig::default()).unwrap());
    let (mut client, session) = connect(&server);

    // A malformed line earns an error frame, not a dropped connection.
    client
        .send(&ccs_serve::Frame::Error {
            id: None,
            message: "i am a server frame on the wrong side".to_string(),
        })
        .unwrap();
    let err = client.next_frame().unwrap();
    assert!(matches!(err, ccs_serve::Frame::Error { .. }));

    // An unknown workload is rejected through the typed spec errors, with
    // the registry's did-you-mean hint, attributed to the request id.
    client
        .submit(submit("bad", &["mergsort"], &[2], &["pdf"]))
        .unwrap();
    let rejection = client.collect("bad").unwrap_err();
    assert!(
        rejection.to_string().contains("did you mean \"mergesort\""),
        "{rejection}"
    );

    // An unknown core count and an unknown scheduler are rejected the same
    // way, and the daemon still answers pings afterwards.
    client
        .submit(submit("bad2", &["mergesort"], &[3], &["pdf"]))
        .unwrap();
    assert!(client.collect("bad2").is_err());
    client
        .submit(submit("bad3", &["mergesort"], &[2], &["pddf"]))
        .unwrap();
    let sched_rejection = client.collect("bad3").unwrap_err();
    assert!(
        sched_rejection.to_string().contains("did you mean \"pdf\""),
        "{sched_rejection}"
    );
    client.ping().unwrap();

    // Cancelling an id the session never submitted is an error frame too.
    client.cancel("ghost").unwrap();
    assert!(matches!(
        client.next_frame().unwrap(),
        ccs_serve::Frame::Error { .. }
    ));

    // A shutdown frame ends the session with the flag set.
    client.shutdown().unwrap();
    drop(client);
    assert!(session.join().unwrap(), "shutdown flag must propagate");
}

/// A trivial but valid computation for the registered test factories.
fn tiny_computation() -> ccs_dag::Computation {
    let mut b = ccs_dag::ComputationBuilder::new(128);
    let leaf = b.strand_with(|t| {
        t.compute(10).read_range(0x4000, 2048, 2);
    });
    b.finish(leaf)
}

#[test]
fn deadline_expiry_reports_timeout_with_partial_results() {
    // A workload whose *build* is slow: each distinct core count forces a
    // fresh 250 ms build, far beyond the request's 100 ms deadline.
    ccs_workloads::WorkloadRegistry::global().register_fn(
        "e2e-sleepy",
        "sleeps in its factory (deadline test)",
        |_ctx| {
            thread::sleep(Duration::from_millis(250));
            tiny_computation()
        },
    );
    // One pool thread so points run strictly one after another.
    let server = Arc::new(
        Server::start(ServiceConfig {
            workers: 1,
            pool_threads: 1,
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let (mut client, session) = connect(&server);

    let mut request = submit("slow", &["e2e-sleepy"], &[2, 4], &["pdf", "ws"]);
    request.timeout_ms = Some(100);
    client.submit(request).unwrap();
    let run = client.collect("slow").unwrap();

    // The deadline fired mid-sweep: the in-flight point finished and
    // streamed (cancellation never discards computed work), the queued tail
    // was dropped, and the terminal status says `timeout`, not `cancelled`.
    assert_eq!(run.state, RequestState::TimedOut);
    assert_eq!(run.total, 4);
    assert!(
        !run.records.is_empty(),
        "the in-flight point must still stream its record"
    );
    assert!(
        run.records.len() < run.total,
        "a 100 ms deadline cannot cover four 250 ms builds ({} of {} streamed)",
        run.records.len(),
        run.total,
    );

    // The session survived the timeout; an untimed repeat completes.
    client
        .submit(submit("ok-after", &["mergesort"], &[2], &["pdf"]))
        .unwrap();
    assert_eq!(
        client.collect("ok-after").unwrap().state,
        RequestState::Done
    );

    drop(client);
    assert!(!session.join().unwrap());
}

#[test]
fn workload_panic_is_isolated_and_counted_in_health() {
    ccs_workloads::WorkloadRegistry::global().register_fn(
        "e2e-explosive",
        "panics in its factory (isolation test)",
        |_ctx| panic!("explosive by design"),
    );
    let server = Arc::new(
        Server::start(ServiceConfig {
            workers: 2,
            pool_threads: 2,
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let (mut client, session) = connect(&server);

    // Submit the panicking sweep and a healthy one on the same connection.
    client
        .submit(submit("boom", &["e2e-explosive"], &[2], &["pdf"]))
        .unwrap();
    client
        .submit(submit("calm", &["mergesort"], &[2], &["pdf", "ws"]))
        .unwrap();

    // The panic is contained to its request: a typed per-point error, a
    // `failed` terminal status, and no records.
    let boom = client.collect("boom").unwrap();
    assert_eq!(boom.state, RequestState::Failed);
    assert!(boom.records.is_empty());
    assert!(
        boom.errors.iter().any(|e| e.contains("panicked")),
        "expected a panic error, got {:?}",
        boom.errors
    );

    // The concurrent request — and the daemon — are unaffected.
    let calm = client.collect("calm").unwrap();
    assert_eq!(calm.state, RequestState::Done);
    assert_eq!(calm.records.len(), 2);
    assert!(calm.errors.is_empty());

    // The health frame counts the caught panic.
    let health = client.health().unwrap();
    assert!(
        health.panics_caught >= 1,
        "health must count caught panics, got {health:?}"
    );
    assert_eq!(health.inflight, 0);

    drop(client);
    assert!(!session.join().unwrap());
}

#[test]
fn retry_helper_reaches_a_slow_to_start_daemon() {
    let dir = unique_dir("retry");
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("ccs.sock");

    // The daemon binds its socket only after a 300 ms head start — the
    // client's connect backoff and resubmit-with-retry must ride it out.
    let daemon = {
        let socket = socket.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(300));
            let server = Server::start(ServiceConfig::default()).unwrap();
            server.serve_unix(&socket).unwrap();
        })
    };

    let run = run_with_retry(
        &socket,
        Duration::from_millis(50),
        &submit("late", &["mergesort"], &[2], &["pdf", "ws"]),
        RetryPolicy {
            attempts: 40,
            initial_delay: Duration::from_millis(25),
            max_delay: Duration::from_millis(200),
        },
    )
    .unwrap();
    assert_eq!(run.state, RequestState::Done);
    assert_eq!(run.records.len(), 2);
    assert_eq!(
        run.into_report().to_json(),
        direct_report(&["mergesort"], &[2], &["pdf", "ws"]),
        "retried run must still be byte-identical to a direct batch run"
    );

    // Stop the daemon cleanly and reap its thread.
    let mut closer = Client::connect_unix(&socket, Duration::from_secs(2)).unwrap();
    closer.shutdown().unwrap();
    drop(closer);
    daemon.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
