//! Fuzzing the frame parser: whatever bytes arrive on a session's wire —
//! random garbage, truncated frames, two frames spliced mid-line —
//! `Frame::parse` returns `Ok` or a typed `Err`.  It must never panic:
//! the session loop turns parse errors into `error` frames and keeps
//! serving, and a panic there would take the connection (and, unisolated,
//! the daemon) down on hostile input.

use ccs_serve::protocol::{Frame, HealthReport, SubmitRequest};
use ccs_sim::SimEngine;
use proptest::prelude::*;

/// A pool of valid frame lines to mutate (both directions of the wire:
/// the parser must survive server-to-client frames arriving at a server).
fn sample_lines() -> Vec<String> {
    let submit = SubmitRequest {
        id: "fuzz-1".to_string(),
        name: Some("fuzz".to_string()),
        workloads: vec!["mergesort".to_string(), "lu".to_string()],
        schedulers: vec!["pdf".to_string(), "ws".to_string()],
        cores: vec![2, 4],
        scale: 1024,
        quick: false,
        engine: SimEngine::EventDriven,
        baseline: true,
        timeout_ms: Some(1500),
    };
    vec![
        Frame::Submit(submit).to_line(),
        Frame::Cancel {
            id: "fuzz-1".to_string(),
        }
        .to_line(),
        Frame::Query {
            id: "fuzz-1".to_string(),
        }
        .to_line(),
        Frame::Ping.to_line(),
        Frame::HealthQuery.to_line(),
        Frame::Health(HealthReport {
            uptime_ms: 12345,
            inflight: 2,
            queue_depth: 1,
            panics_caught: 3,
            timeouts: 4,
            store_records: 5,
            store_bytes: 6789,
        })
        .to_line(),
        Frame::Error {
            id: Some("fuzz-1".to_string()),
            message: "sweep point 0 panicked: boom".to_string(),
        }
        .to_line(),
        Frame::hello().to_line(),
        Frame::Shutdown.to_line(),
    ]
}

/// Byte-slice a string without caring about char boundaries, the way a
/// truncated read would.
fn cut(line: &str, at: usize) -> String {
    let bytes = line.as_bytes();
    String::from_utf8_lossy(&bytes[..at.min(bytes.len())]).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random bytes, lossily decoded the way the session reads them.
    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(0u32..256, 0..200)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let line = String::from_utf8_lossy(&raw).into_owned();
        let _ = Frame::parse(&line);
    }

    /// Every prefix of every valid frame parses or errors — never panics —
    /// and the untruncated line still parses.
    #[test]
    fn truncated_valid_frames_never_panic(pick in 0usize..9, at in 0usize..400) {
        let lines = sample_lines();
        let line = &lines[pick % lines.len()];
        let _ = Frame::parse(&cut(line, at));
        prop_assert!(Frame::parse(line).is_ok(), "sample line must stay valid: {line}");
    }

    /// Two frames spliced mid-line (a torn write interleaving), optionally
    /// with garbage between the halves.
    #[test]
    fn interleaved_frame_fragments_never_panic(
        pick_a in 0usize..9,
        pick_b in 0usize..9,
        cut_a in 0usize..400,
        cut_b in 0usize..400,
        glue in prop::collection::vec(0u32..256, 0..16),
    ) {
        let lines = sample_lines();
        let a = &lines[pick_a % lines.len()];
        let b = &lines[pick_b % lines.len()];
        let glue: Vec<u8> = glue.iter().map(|&g| g as u8).collect();
        let spliced = format!(
            "{}{}{}",
            cut(a, cut_a),
            String::from_utf8_lossy(&glue),
            &b[b.len() - cut_b.min(b.len())..b.len()],
        );
        let _ = Frame::parse(&spliced);
    }

    /// Unbounded nesting is a typed error, not a stack overflow: the JSON
    /// layer caps recursion depth (`MAX_PARSE_DEPTH`).
    #[test]
    fn deep_nesting_is_rejected_not_fatal(depth in 1usize..5000, open in 0u32..2) {
        let bracket = if open == 0 { "[" } else { "{" };
        let line = format!("{}\"x\"", bracket.repeat(depth));
        prop_assert!(Frame::parse(&line).is_err());
    }
}
