//! Working-set profiling and automatic task coarsening (Section 6 of Chen et
//! al., SPAA 2007).
//!
//! Task granularity has a first-order effect on constructive cache sharing:
//! too coarse and concurrently scheduled tasks have large disjoint working
//! sets; too fine and scheduling overheads dominate.  This crate implements
//! the paper's profile-driven answer:
//!
//! * [`WorkingSetProfile`] — the **one-pass** `LruTree` profiler: a single
//!   scan of the sequential reference trace collects per-task
//!   (stack-distance × previous-task) histograms from which the working set
//!   and hit counts of *any* group of consecutive tasks at *any* candidate
//!   cache size can be computed (Section 6.1);
//! * [`setassoc_profiler`] — the multi-pass `SetAssoc` baseline it replaces
//!   (an order of magnitude slower; see the `sec61_profiler_speed` binary);
//! * [`mod@coarsen`] — the automatic task-coarsening algorithm with the
//!   `W ≤ K·(cache/(2·cores))` stop criterion, the Fig. 7(b)
//!   [`ParallelizationTable`], and [`apply_coarsening`] to re-group the DAG
//!   for re-simulation (the Fig. 8 evaluation).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coarsen;
pub mod profile;
pub mod setassoc_profiler;

pub use coarsen::{apply_coarsening, coarsen, CoarsenTarget, Coarsening, ParallelizationTable};
pub use profile::{TaskHistogram, WorkingSetProfile};
pub use setassoc_profiler::{
    group_working_set_lines, profile_all_groups, profile_group, GroupCacheStats,
};
