//! Automatic task coarsening (Section 6.2).
//!
//! Programs are first written with very fine-grained tasks; the working-set
//! profile then suggests groups of consecutive tasks to merge into larger
//! tasks.  The algorithm walks the task-group tree top-down and, at a node
//! `G` with working-set size `W` and an independent set of `K` similar-size
//! child groups, **stops at G's children** (each child becomes one coarse
//! task) when
//!
//! ```text
//! W <= K * (cache_size / (num_cores * 2))
//! ```
//!
//! so the child tasks are numerous enough to keep the cores busy while their
//! aggregate working set still fits comfortably in the shared cache.  The "2"
//! compensates for task-size variability (early-finishing children let other,
//! unrelated work into the cache).
//!
//! The selected granularity is exported in two forms:
//!
//! * a set of *coarse groups* plus [`apply_coarsening`], which rebuilds the
//!   computation with each coarse group fused into a single sequential task —
//!   this is the "dag" evaluation scheme of Fig. 8;
//! * a [`ParallelizationTable`] (Fig. 7b) mapping `(CMP configuration,
//!   call site)` to the parameter threshold below which the program should
//!   run its sequential version — this is how the decision is fed back into a
//!   real program, and is the basis of the "actual" scheme of Fig. 8.

use std::collections::HashMap;

use ccs_dag::{
    CallSite, Computation, ComputationBuilder, GroupId, GroupKind, GroupMeta, SpNodeId,
    TaskGroupTree, TraceBuilder,
};

use crate::profile::WorkingSetProfile;

/// The CMP parameters the stop criterion depends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CoarsenTarget {
    /// Shared-cache capacity in bytes.
    pub cache_bytes: u64,
    /// Number of cores sharing the cache.
    pub num_cores: usize,
}

impl CoarsenTarget {
    /// The per-child working-set budget `cache / (2 * cores)`.
    pub fn budget_bytes(&self) -> u64 {
        self.cache_bytes / (2 * self.num_cores.max(1) as u64)
    }
}

/// The outcome of the coarsening analysis for one target configuration.
#[derive(Clone, Debug)]
pub struct Coarsening {
    /// The target the analysis was run for.
    pub target: CoarsenTarget,
    /// Groups each of which should become a single sequential task.
    pub coarse_groups: Vec<GroupId>,
    /// Thresholds per call site: the largest group `param` value that was
    /// coarsened into a single task at that site.
    pub thresholds: HashMap<CallSite, u64>,
}

impl Coarsening {
    /// Number of tasks the coarsened computation will have.
    pub fn num_coarse_tasks(&self) -> usize {
        self.coarse_groups.len()
    }
}

/// Run the coarsening analysis for one target configuration.
pub fn coarsen(
    profile: &WorkingSetProfile,
    tree: &TaskGroupTree,
    target: CoarsenTarget,
) -> Coarsening {
    let budget = target.budget_bytes().max(1);
    let mut coarse_groups = Vec::new();
    let mut thresholds: HashMap<CallSite, u64> = HashMap::new();

    // Record a group as one coarse task.
    let select = |gid: GroupId,
                  coarse_groups: &mut Vec<GroupId>,
                  thresholds: &mut HashMap<CallSite, u64>| {
        coarse_groups.push(gid);
        let g = tree.group(gid);
        if let Some(site) = g.meta.site {
            let entry = thresholds.entry(site).or_insert(0);
            *entry = (*entry).max(g.meta.param);
        }
    };

    // Top-down traversal.
    let mut stack = vec![tree.root()];
    while let Some(gid) = stack.pop() {
        let g = tree.group(gid);
        let sets = tree.independent_child_sets(gid);
        if sets.is_empty() {
            // A leaf task: it stays a task of its own.
            select(gid, &mut coarse_groups, &mut thresholds);
            continue;
        }
        let w = profile.working_set_bytes(g.rank_range());
        for set in sets {
            let k = set.len() as u64;
            if w <= k * budget {
                // Stop at G's children: each child of this independent set
                // becomes one coarse task.
                for child in set {
                    select(child, &mut coarse_groups, &mut thresholds);
                }
            } else {
                // Descend into the children of this set.
                for child in set {
                    stack.push(child);
                }
            }
        }
    }

    // Keep the coarse groups in sequential order for readability.
    coarse_groups.sort_by_key(|&g| tree.group(g).first_rank);
    Coarsening {
        target,
        coarse_groups,
        thresholds,
    }
}

/// The parallelization table of Fig. 7(b): thresholds indexed by CMP
/// configuration and spawn call site.  At run time the program looks up
/// `(configuration, call site)` and runs its sequential version whenever the
/// parallelization parameter is at or below the threshold.
#[derive(Clone, Debug, Default)]
pub struct ParallelizationTable {
    entries: HashMap<(CoarsenTarget, CallSite), u64>,
}

impl ParallelizationTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge the thresholds discovered by one coarsening run.
    pub fn add(&mut self, coarsening: &Coarsening) {
        for (&site, &threshold) in &coarsening.thresholds {
            let entry = self.entries.entry((coarsening.target, site)).or_insert(0);
            *entry = (*entry).max(threshold);
        }
    }

    /// The threshold for a configuration and call site, if any.
    pub fn threshold(&self, target: CoarsenTarget, site: CallSite) -> Option<u64> {
        self.entries.get(&(target, site)).copied()
    }

    /// The `Parallelize` decision of Fig. 7(a): parallelize further only when
    /// the parameter exceeds the threshold (unknown sites always parallelize).
    pub fn should_parallelize(&self, target: CoarsenTarget, site: CallSite, param: u64) -> bool {
        match self.threshold(target, site) {
            Some(t) => param > t,
            None => true,
        }
    }

    /// Number of (configuration, call-site) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render the table in the layout of Fig. 7(b).
    pub fn render(&self) -> String {
        let mut rows: Vec<_> = self.entries.iter().collect();
        rows.sort_by_key(|((t, s), _)| (t.cache_bytes, t.num_cores, s.file, s.line));
        let mut out =
            String::from("L2 Size (KB) | # Cores | File          | Line | Param Threshold\n");
        for ((target, site), threshold) in rows {
            out.push_str(&format!(
                "{:>12} | {:>7} | {:<13} | {:>4} | {:>15}\n",
                target.cache_bytes / 1024,
                target.num_cores,
                site.file,
                site.line,
                threshold
            ));
        }
        out
    }
}

/// Rebuild `comp` with every group in `coarsening.coarse_groups` fused into a
/// single sequential task (the traces of its tasks concatenated in sequential
/// order).  The series-parallel structure *above* the coarse groups is
/// preserved.  This is the Fig. 8 "dag" evaluation scheme: the same
/// finest-grain trace, re-grouped.
pub fn apply_coarsening(
    comp: &Computation,
    tree: &TaskGroupTree,
    coarsening: &Coarsening,
) -> Computation {
    let coarse: std::collections::HashSet<GroupId> =
        coarsening.coarse_groups.iter().copied().collect();
    let mut b = ComputationBuilder::new(comp.line_size());
    let root = rebuild(comp, tree, &coarse, tree.root(), &mut b);
    b.finish(root)
}

fn fuse_group(
    comp: &Computation,
    tree: &TaskGroupTree,
    gid: GroupId,
    b: &mut ComputationBuilder,
) -> SpNodeId {
    let g = tree.group(gid);
    let mut tb = TraceBuilder::new(comp.line_size());
    for &task in tree.tasks_in(gid) {
        let trace = comp.trace(task);
        for op in trace.ops() {
            tb.compute(op.pre_compute as u64);
            tb.access(op.mem);
        }
        tb.compute(trace.post_compute());
    }
    let mut meta = GroupMeta::with_param(g.meta.label, g.meta.param);
    if let Some(site) = g.meta.site {
        meta = meta.at(site);
    }
    b.strand_meta(tb.finish(), meta)
}

fn rebuild(
    comp: &Computation,
    tree: &TaskGroupTree,
    coarse: &std::collections::HashSet<GroupId>,
    gid: GroupId,
    b: &mut ComputationBuilder,
) -> SpNodeId {
    if coarse.contains(&gid) {
        return fuse_group(comp, tree, gid, b);
    }
    let g = tree.group(gid);
    match g.kind {
        GroupKind::Leaf(task) => {
            // A leaf that was not selected (only possible if its ancestor was
            // selected, which `coarse.contains` already handled) — keep it.
            let mut meta = GroupMeta::with_param(g.meta.label, g.meta.param);
            if let Some(site) = g.meta.site {
                meta = meta.at(site);
            }
            b.strand_meta(comp.trace(task).to_task_trace(), meta)
        }
        GroupKind::Seq | GroupKind::Par => {
            let children: Vec<SpNodeId> = g
                .children
                .iter()
                .map(|&c| rebuild(comp, tree, coarse, c, b))
                .collect();
            let mut meta = GroupMeta::with_param(g.meta.label, g.meta.param);
            if let Some(site) = g.meta.site {
                meta = meta.at(site);
            }
            match g.kind {
                GroupKind::Seq => b.seq(children, meta),
                GroupKind::Par => b.par(children, meta),
                GroupKind::Leaf(_) => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::Dag;
    use ccs_workloads::MergesortParams;

    fn profile_and_tree(n_items: u64) -> (Computation, TaskGroupTree, WorkingSetProfile) {
        let comp = ccs_workloads::mergesort::build(
            &MergesortParams::new(n_items).with_task_working_set(8 * 1024),
        );
        let tree = TaskGroupTree::from_computation(&comp);
        let sizes: Vec<u64> = (10..=24).map(|p| 1u64 << p).collect();
        let profile = WorkingSetProfile::collect(&comp, &sizes);
        (comp, tree, profile)
    }

    #[test]
    fn larger_budgets_give_coarser_tasks() {
        let (_, tree, profile) = profile_and_tree(64 * 1024);
        let small = coarsen(
            &profile,
            &tree,
            CoarsenTarget {
                cache_bytes: 64 * 1024,
                num_cores: 8,
            },
        );
        let large = coarsen(
            &profile,
            &tree,
            CoarsenTarget {
                cache_bytes: 16 << 20,
                num_cores: 2,
            },
        );
        assert!(
            large.num_coarse_tasks() <= small.num_coarse_tasks(),
            "large budget {} vs small budget {}",
            large.num_coarse_tasks(),
            small.num_coarse_tasks()
        );
        assert!(large.num_coarse_tasks() >= 1);
    }

    #[test]
    fn coarse_groups_partition_all_tasks() {
        let (comp, tree, profile) = profile_and_tree(32 * 1024);
        let c = coarsen(
            &profile,
            &tree,
            CoarsenTarget {
                cache_bytes: 1 << 20,
                num_cores: 4,
            },
        );
        let mut covered = vec![false; comp.num_tasks()];
        for &g in &c.coarse_groups {
            for &t in tree.tasks_in(g) {
                assert!(!covered[t.index()], "task covered twice");
                covered[t.index()] = true;
            }
        }
        assert!(covered.iter().all(|&x| x), "every task must be covered");
    }

    #[test]
    fn apply_coarsening_preserves_work_and_refs() {
        let (comp, tree, profile) = profile_and_tree(32 * 1024);
        let c = coarsen(
            &profile,
            &tree,
            CoarsenTarget {
                cache_bytes: 512 * 1024,
                num_cores: 4,
            },
        );
        let coarse = apply_coarsening(&comp, &tree, &c);
        assert_eq!(coarse.num_tasks(), c.num_coarse_tasks());
        assert_eq!(coarse.total_work(), comp.total_work());
        assert_eq!(coarse.total_refs(), comp.total_refs());
        Dag::from_computation(&coarse).validate().unwrap();
        assert!(coarse.num_tasks() <= comp.num_tasks());
    }

    #[test]
    fn coarsened_sequential_ref_order_is_preserved() {
        let (comp, tree, profile) = profile_and_tree(16 * 1024);
        let c = coarsen(
            &profile,
            &tree,
            CoarsenTarget {
                cache_bytes: 256 * 1024,
                num_cores: 2,
            },
        );
        let coarse = apply_coarsening(&comp, &tree, &c);
        let orig: Vec<u64> = comp.sequential_refs().map(|(_, r)| r.addr).collect();
        let new: Vec<u64> = coarse.sequential_refs().map(|(_, r)| r.addr).collect();
        assert_eq!(
            orig, new,
            "fusing groups must not reorder the sequential trace"
        );
    }

    #[test]
    fn thresholds_and_table() {
        let (_, tree, profile) = profile_and_tree(64 * 1024);
        let target = CoarsenTarget {
            cache_bytes: 2 << 20,
            num_cores: 8,
        };
        let c = coarsen(&profile, &tree, target);
        assert!(
            !c.thresholds.is_empty(),
            "mergesort call sites must get thresholds"
        );
        let mut table = ParallelizationTable::new();
        table.add(&c);
        assert!(!table.is_empty());
        let (&site, &thr) = c.thresholds.iter().next().unwrap();
        assert_eq!(table.threshold(target, site), Some(c.thresholds[&site]));
        assert!(!table.should_parallelize(target, site, thr));
        assert!(table.should_parallelize(target, site, thr + 1));
        let rendered = table.render();
        assert!(rendered.contains("Param Threshold"));
        assert!(rendered.contains("mergesort.rs"));
    }

    #[test]
    fn budget_formula_matches_paper() {
        let t = CoarsenTarget {
            cache_bytes: 20 << 20,
            num_cores: 16,
        };
        assert_eq!(t.budget_bytes(), (20 << 20) / 32);
    }
}
