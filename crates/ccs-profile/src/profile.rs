//! One-pass working-set profiling (the paper's `LruTree` algorithm,
//! Section 6.1).
//!
//! A single pass over the program's sequential-order memory-reference trace
//! collects, for every task, a two-dimensional histogram keyed by
//!
//! * the LRU **stack-distance bucket** of the reference (bucketed by the list
//!   of candidate cache sizes), and
//! * the **task delta**: the difference between the sequential ranks of the
//!   current task and the task that last visited the line.
//!
//! From these per-task histograms the hit count — and hence the working-set
//! size — of *any* group of consecutive tasks can be computed for *any* of the
//! candidate cache sizes without touching the trace again: a reference by
//! task `i` is a hit inside group `[b, e]` with cache size `D_p` exactly when
//! its distance is `≤ D_p` and its previous visitor is also inside the group
//! (`delta ≤ i − b`).

use std::collections::HashMap;

use ccs_cache::{OrderStatStack, StackDistanceModel};
use ccs_dag::Computation;

/// Per-task two-dimensional histogram, stored sparsely as
/// `(distance bucket, task delta) -> count`.
#[derive(Clone, Debug, Default)]
pub struct TaskHistogram {
    /// Sorted by (bucket, delta) for cache-friendly scans.
    entries: Vec<(u8, u32, u64)>,
}

impl TaskHistogram {
    fn from_map(map: HashMap<(u8, u32), u64>) -> Self {
        let mut entries: Vec<(u8, u32, u64)> =
            map.into_iter().map(|((b, d), c)| (b, d, c)).collect();
        entries.sort_unstable();
        TaskHistogram { entries }
    }

    /// Number of distinct (bucket, delta) cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of counts with `bucket <= max_bucket` and `delta <= max_delta`.
    fn count_up_to(&self, max_bucket: u8, max_delta: u32) -> u64 {
        self.entries
            .iter()
            .filter(|&&(b, d, _)| b <= max_bucket && d <= max_delta)
            .map(|&(_, _, c)| c)
            .sum()
    }
}

/// The result of one profiling pass: per-task histograms plus bookkeeping to
/// answer task-group working-set queries.
#[derive(Clone, Debug)]
pub struct WorkingSetProfile {
    /// Candidate cache sizes, in cache lines, ascending.
    cache_sizes_lines: Vec<u64>,
    /// Cache-line size in bytes.
    line_size: u64,
    /// `histograms[rank]` — histogram of the task with sequential rank `rank`.
    histograms: Vec<TaskHistogram>,
    /// Number of memory references issued by each task (by rank).
    refs_per_task: Vec<u64>,
}

/// The bucket index used for references whose distance exceeds every
/// candidate cache size; such references can only be hits in an unbounded
/// cache, which is what working-set queries use.
const OVERFLOW_BUCKET: u8 = u8::MAX;

impl WorkingSetProfile {
    /// Profile a computation in one pass over its sequential reference trace.
    ///
    /// `cache_sizes_bytes` is the list of candidate cache sizes the profile
    /// will be able to answer hit-count queries for (ascending order is not
    /// required; the list is sorted internally).  At most 254 sizes are
    /// supported.
    pub fn collect(comp: &Computation, cache_sizes_bytes: &[u64]) -> Self {
        let line_size = comp.line_size();
        let mut sizes: Vec<u64> = cache_sizes_bytes
            .iter()
            .map(|&b| (b / line_size).max(1))
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        assert!(!sizes.is_empty(), "need at least one candidate cache size");
        assert!(
            sizes.len() < OVERFLOW_BUCKET as usize,
            "too many candidate cache sizes"
        );

        let seq = comp.sequential_order();
        let num_tasks = seq.len();
        let mut rank_of = vec![0u32; num_tasks];
        for (rank, t) in seq.iter().enumerate() {
            rank_of[t.index()] = rank as u32;
        }

        let mut stack = OrderStatStack::new();
        let mut last_task: HashMap<u64, u32> = HashMap::new();
        let mut maps: Vec<HashMap<(u8, u32), u64>> = vec![HashMap::new(); num_tasks];
        let mut refs_per_task = vec![0u64; num_tasks];

        for &tid in &seq {
            let rank = rank_of[tid.index()];
            for mem in comp.trace(tid).refs() {
                for line in mem.lines(line_size) {
                    refs_per_task[rank as usize] += 1;
                    let dist = stack.access(line);
                    let prev = last_task.insert(line, rank);
                    if let (Some(d), Some(j)) = (dist, prev) {
                        // A reference is a hit in a cache of S lines iff d < S.
                        let bucket = match sizes.iter().position(|&s| d < s) {
                            Some(p) => p as u8,
                            None => OVERFLOW_BUCKET,
                        };
                        let delta = rank - j;
                        *maps[rank as usize].entry((bucket, delta)).or_insert(0) += 1;
                    }
                }
            }
        }

        WorkingSetProfile {
            cache_sizes_lines: sizes,
            line_size,
            histograms: maps.into_iter().map(TaskHistogram::from_map).collect(),
            refs_per_task,
        }
    }

    /// The candidate cache sizes, in bytes, ascending.
    pub fn cache_sizes_bytes(&self) -> Vec<u64> {
        self.cache_sizes_lines
            .iter()
            .map(|l| l * self.line_size)
            .collect()
    }

    /// The cache-line size the profile was collected at.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of profiled tasks.
    pub fn num_tasks(&self) -> usize {
        self.histograms.len()
    }

    /// Total memory references (at line granularity) issued by the tasks with
    /// sequential ranks in `range`.
    pub fn refs_in(&self, range: std::ops::Range<u32>) -> u64 {
        self.refs_per_task[range.start as usize..range.end as usize]
            .iter()
            .sum()
    }

    fn hits_in_impl(&self, range: std::ops::Range<u32>, max_bucket: u8) -> u64 {
        let b = range.start;
        self.histograms[range.start as usize..range.end as usize]
            .iter()
            .enumerate()
            .map(|(off, h)| {
                let i = b + off as u32;
                h.count_up_to(max_bucket, i - b)
            })
            .sum()
    }

    /// Number of cache hits the task group covering sequential ranks `range`
    /// would incur, starting from a cold cache of `cache_size_bytes`
    /// (which must be one of the candidate sizes).
    pub fn hits_in(&self, range: std::ops::Range<u32>, cache_size_bytes: u64) -> u64 {
        let lines = (cache_size_bytes / self.line_size).max(1);
        let idx = self
            .cache_sizes_lines
            .iter()
            .position(|&s| s == lines)
            .expect("cache size was not in the candidate list given to collect()");
        self.hits_in_impl(range, idx as u8)
    }

    /// Number of misses of the group with a cold cache of the given size.
    pub fn misses_in(&self, range: std::ops::Range<u32>, cache_size_bytes: u64) -> u64 {
        self.refs_in(range.clone()) - self.hits_in(range, cache_size_bytes)
    }

    /// The group's working set, in cache lines: the number of distinct lines
    /// it touches (its misses with an unbounded cold cache).
    pub fn working_set_lines(&self, range: std::ops::Range<u32>) -> u64 {
        let unbounded_hits = self.hits_in_impl(range.clone(), OVERFLOW_BUCKET);
        self.refs_in(range) - unbounded_hits
    }

    /// The group's working set in bytes.
    pub fn working_set_bytes(&self, range: std::ops::Range<u32>) -> u64 {
        self.working_set_lines(range) * self.line_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::{AddressSpace, ComputationBuilder, GroupMeta};

    /// Four tasks: T0 and T1 stream over array X, T2 and T3 stream over array
    /// Y; all inside one par.  Chosen so group working sets are easy to state.
    fn two_phase() -> (Computation, u64) {
        let mut space = AddressSpace::new();
        let bytes = 8 * 1024u64;
        let x = space.alloc(bytes);
        let y = space.alloc(bytes);
        let mut b = ComputationBuilder::new(128);
        let t0 = b.strand_with(|t| {
            t.read_range(x.base, bytes, 1);
        });
        let t1 = b.strand_with(|t| {
            t.read_range(x.base, bytes, 1);
        });
        let t2 = b.strand_with(|t| {
            t.read_range(y.base, bytes, 1);
        });
        let t3 = b.strand_with(|t| {
            t.read_range(y.base, bytes, 1);
        });
        let root = b.par(vec![t0, t1, t2, t3], GroupMeta::labeled("root"));
        (b.finish(root), bytes)
    }

    #[test]
    fn working_sets_of_groups() {
        let (comp, bytes) = two_phase();
        let lines = bytes / 128;
        let profile = WorkingSetProfile::collect(&comp, &[64 * 1024, 1 << 20]);
        // Single tasks touch one array each.
        for r in 0..4u32 {
            assert_eq!(profile.working_set_lines(r..r + 1), lines);
        }
        // T0..T1 share X; T0..T3 touch X and Y.
        assert_eq!(profile.working_set_lines(0..2), lines);
        assert_eq!(profile.working_set_lines(2..4), lines);
        assert_eq!(profile.working_set_lines(0..4), 2 * lines);
        assert_eq!(profile.working_set_bytes(0..4), 2 * bytes);
    }

    #[test]
    fn hits_depend_on_group_start() {
        let (comp, bytes) = two_phase();
        let lines = bytes / 128;
        let profile = WorkingSetProfile::collect(&comp, &[1 << 20]);
        // Within [0,2): T1's references hit (T0 loaded X).
        assert_eq!(profile.hits_in(0..2, 1 << 20), lines);
        // Within [1,2): T1 alone starts cold, so no hits.
        assert_eq!(profile.hits_in(1..2, 1 << 20), 0);
        // Misses are complementary.
        assert_eq!(profile.misses_in(0..2, 1 << 20), lines);
        assert_eq!(profile.misses_in(1..2, 1 << 20), lines);
    }

    #[test]
    fn small_cache_limits_hits() {
        // One task scans a big array twice: with a big cache the second scan
        // hits, with a small cache it does not.
        let mut space = AddressSpace::new();
        let bytes = 64 * 1024u64;
        let x = space.alloc(bytes);
        let mut b = ComputationBuilder::new(128);
        let t0 = b.strand_with(|t| {
            t.read_range(x.base, bytes, 1);
            t.read_range(x.base, bytes, 1);
        });
        let comp = b.finish(t0);
        let profile = WorkingSetProfile::collect(&comp, &[4 * 1024, 256 * 1024]);
        let lines = bytes / 128;
        assert_eq!(profile.hits_in(0..1, 256 * 1024), lines);
        assert_eq!(profile.hits_in(0..1, 4 * 1024), 0);
        assert_eq!(profile.working_set_lines(0..1), lines);
    }

    #[test]
    #[should_panic(expected = "candidate list")]
    fn querying_unknown_size_panics() {
        let (comp, _) = two_phase();
        let profile = WorkingSetProfile::collect(&comp, &[64 * 1024]);
        profile.hits_in(0..1, 128 * 1024);
    }

    #[test]
    fn histogram_is_sparse() {
        let (comp, _) = two_phase();
        let profile = WorkingSetProfile::collect(&comp, &[64 * 1024, 1 << 20]);
        let total_cells: usize = (0..4u32)
            .map(|r| profile.histograms[r as usize].len())
            .sum();
        // Each re-reference pattern collapses into a handful of cells, far
        // fewer than the number of references.
        assert!(total_cells <= 8, "got {total_cells}");
        assert!(
            profile.histograms[0].is_empty(),
            "first task is all cold misses"
        );
    }
}
