//! The `SetAssoc` baseline profiler (Section 6.1).
//!
//! The straightforward way to measure a task group's working set is to replay
//! its memory-reference trace through simulated caches of every candidate
//! size, starting cold.  Doing this for every group in the hierarchical
//! task-group tree re-processes each memory record once per tree level —
//! the paper measured 22 re-visits per record on average for Mergesort,
//! making this approach ~18× slower than the one-pass `LruTree` profiler.
//! It is retained as the correctness baseline and for the Section 6.1
//! performance comparison (`sec61_profiler_speed` in `ccs-bench`).

use ccs_cache::{IdealCache, StackDistanceModel};
use ccs_dag::{Computation, GroupId, TaskGroupTree};

/// Hit/miss counts of one task group at one cache size, measured from a cold
/// cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupCacheStats {
    /// Cache size in bytes.
    pub cache_bytes: u64,
    /// Line-granularity references issued by the group.
    pub refs: u64,
    /// Hits starting from a cold cache.
    pub hits: u64,
}

impl GroupCacheStats {
    /// Misses = references − hits.
    pub fn misses(&self) -> u64 {
        self.refs - self.hits
    }
}

/// Replay the references of the tasks covered by `group` (in sequential
/// order) through a cold fully-associative LRU cache of each candidate size,
/// returning one entry per size.
pub fn profile_group(
    comp: &Computation,
    tree: &TaskGroupTree,
    group: GroupId,
    cache_sizes_bytes: &[u64],
) -> Vec<GroupCacheStats> {
    cache_sizes_bytes
        .iter()
        .map(|&cache_bytes| {
            let mut cache = IdealCache::with_bytes(cache_bytes, comp.line_size());
            for &task in tree.tasks_in(group) {
                for mem in comp.trace(task).refs() {
                    cache.access_ref(&mem);
                }
            }
            GroupCacheStats {
                cache_bytes,
                refs: cache.stats().accesses,
                hits: cache.stats().hits,
            }
        })
        .collect()
}

/// The working set of a group in cache lines: distinct lines touched,
/// measured by a direct replay (cross-check for the one-pass profiler).
pub fn group_working_set_lines(comp: &Computation, tree: &TaskGroupTree, group: GroupId) -> u64 {
    let mut stack = ccs_cache::NaiveLruStack::new();
    for &task in tree.tasks_in(group) {
        for mem in comp.trace(task).refs() {
            for line in mem.lines(comp.line_size()) {
                stack.access(line);
            }
        }
    }
    stack.num_lines() as u64
}

/// Profile *every* group of the task-group tree (the multi-pass behaviour the
/// paper's `SetAssoc` column measures).  Returns, per group, the stats at
/// every candidate cache size.
pub fn profile_all_groups(
    comp: &Computation,
    tree: &TaskGroupTree,
    cache_sizes_bytes: &[u64],
) -> Vec<Vec<GroupCacheStats>> {
    tree.iter()
        .map(|(gid, _)| profile_group(comp, tree, gid, cache_sizes_bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkingSetProfile;
    use ccs_dag::synth::{random_computation, SynthParams};

    #[test]
    fn setassoc_and_lrutree_agree_on_every_group() {
        let params = SynthParams {
            max_depth: 4,
            max_strand_refs: 24,
            num_regions: 3,
            region_bytes: 4 * 1024,
            ..SynthParams::default()
        };
        let sizes = [1024u64, 8 * 1024, 64 * 1024];
        for seed in 0..5 {
            let comp = random_computation(seed, &params);
            let tree = TaskGroupTree::from_computation(&comp);
            let profile = WorkingSetProfile::collect(&comp, &sizes);
            for (gid, g) in tree.iter() {
                let direct = profile_group(&comp, &tree, gid, &sizes);
                for d in &direct {
                    let hits = profile.hits_in(g.rank_range(), d.cache_bytes);
                    assert_eq!(
                        hits, d.hits,
                        "seed {seed}, group {gid:?}, size {}",
                        d.cache_bytes
                    );
                    assert_eq!(profile.refs_in(g.rank_range()), d.refs);
                }
                let ws = group_working_set_lines(&comp, &tree, gid);
                assert_eq!(profile.working_set_lines(g.rank_range()), ws);
            }
        }
    }

    #[test]
    fn bigger_caches_never_hit_less() {
        let comp = random_computation(99, &SynthParams::default());
        let tree = TaskGroupTree::from_computation(&comp);
        let sizes = [512u64, 4096, 32 * 1024, 1 << 20];
        let stats = profile_group(&comp, &tree, tree.root(), &sizes);
        for w in stats.windows(2) {
            assert!(w[1].hits >= w[0].hits);
        }
    }

    #[test]
    fn profile_all_groups_covers_tree() {
        let comp = random_computation(7, &SynthParams::default());
        let tree = TaskGroupTree::from_computation(&comp);
        let all = profile_all_groups(&comp, &tree, &[8 * 1024]);
        assert_eq!(all.len(), tree.num_groups());
    }
}
