//! Tasks, memory references and per-task traces.
//!
//! A *task* is a node in the computation DAG: a thread (or portion of a
//! thread) that has no internal dependences to or from other nodes
//! (Section 3 of the paper).  Each task carries a weight (its runtime in
//! instructions) and, for trace-driven simulation and working-set profiling,
//! an ordered list of memory references.
//!
//! Trace storage is *pooled*: inside a [`Computation`](crate::Computation)
//! every task's ops live in one flat [`TracePool`] arena
//! and the task holds only a [`TraceRange`] into it (see
//! the [`pool`](crate::pool) module).  The standalone [`TaskTrace`] value
//! type survives for callers that build or carry a single trace outside a
//! computation; [`ComputationBuilder`](crate::ComputationBuilder) copies it
//! into the pool on [`strand`](crate::ComputationBuilder::strand).

use std::fmt;

use crate::pool::{TracePool, TraceRange};

/// Identifier of a task inside a [`crate::Computation`].
///
/// Task ids are dense indices (`0..num_tasks`) assigned in *creation* order by
/// the builder.  The *sequential* (1DF) order used by the PDF scheduler is a
/// separate permutation computed by [`crate::Dag::seq_order`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Index into per-task arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Whether a memory reference reads or writes its target.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// A single memory reference: a contiguous byte range plus an access kind.
///
/// Workload generators usually emit references at cache-line granularity (one
/// reference per touched line, see [`TraceBuilder`]), but byte-granular
/// references are also supported; the cache models split a reference that
/// crosses line boundaries into one probe per line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemRef {
    /// Starting byte address in the synthetic virtual address space.
    pub addr: u64,
    /// Number of bytes touched (must be at least 1).
    pub size: u32,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemRef {
    /// A read of `size` bytes at `addr`.
    #[inline]
    pub fn read(addr: u64, size: u32) -> Self {
        MemRef {
            addr,
            size,
            kind: AccessKind::Read,
        }
    }

    /// A write of `size` bytes at `addr`.
    #[inline]
    pub fn write(addr: u64, size: u32) -> Self {
        MemRef {
            addr,
            size,
            kind: AccessKind::Write,
        }
    }

    /// Iterator over the cache-line addresses (aligned to `line_size`) that
    /// this reference touches.
    pub fn lines(&self, line_size: u64) -> impl Iterator<Item = u64> {
        debug_assert!(line_size.is_power_of_two());
        let first = self.addr & !(line_size - 1);
        let last = (self.addr + self.size.max(1) as u64 - 1) & !(line_size - 1);
        (0..=((last - first) / line_size)).map(move |i| first + i * line_size)
    }
}

/// One step of a task's trace: `pre_compute` compute-only instructions
/// followed by a single memory reference.
///
/// The memory reference itself accounts for one additional instruction
/// (the load/store), mirroring the in-order scalar core model of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Compute-only instructions executed immediately before `mem`.
    pub pre_compute: u32,
    /// The memory reference.
    pub mem: MemRef,
}

impl TraceOp {
    /// Instructions represented by this op (compute + the access itself).
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.pre_compute as u64 + 1
    }
}

/// A standalone task trace: a sequence of [`TraceOp`]s plus a trailing run of
/// compute-only instructions executed after the final memory reference.
///
/// Inside a [`Computation`](crate::Computation) traces are pooled (see
/// [`TracePool`]); `TaskTrace` is the owned value type for building a trace
/// outside a computation ([`TraceBuilder::finish`]) or carrying one around
/// (e.g. trace fusion in the coarsening pipeline).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskTrace {
    ops: Vec<TraceOp>,
    post_compute: u64,
}

impl TaskTrace {
    /// An empty trace (zero instructions).
    pub fn empty() -> Self {
        TaskTrace::default()
    }

    /// A compute-only trace of `instructions` instructions and no memory
    /// references.
    pub fn compute_only(instructions: u64) -> Self {
        TaskTrace {
            ops: Vec::new(),
            post_compute: instructions,
        }
    }

    /// Build a trace from raw parts.
    pub fn from_parts(ops: Vec<TraceOp>, post_compute: u64) -> Self {
        TaskTrace { ops, post_compute }
    }

    /// The ordered memory-reference ops.
    #[inline]
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Compute-only instructions after the last memory reference.
    #[inline]
    pub fn post_compute(&self) -> u64 {
        self.post_compute
    }

    /// Number of memory references in the trace.
    #[inline]
    pub fn num_refs(&self) -> usize {
        self.ops.len()
    }

    /// Total instruction count of the task (compute + one per reference).
    pub fn instructions(&self) -> u64 {
        self.ops.iter().map(TraceOp::instructions).sum::<u64>() + self.post_compute
    }

    /// Iterate over the memory references in program order.
    pub fn refs(&self) -> impl Iterator<Item = &MemRef> {
        self.ops.iter().map(|op| &op.mem)
    }
}

/// A node of the computation DAG: instruction weight plus the location of
/// its memory trace in the computation's [`TracePool`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Task {
    /// The task's ops inside the owning computation's trace pool.
    pub ops: TraceRange,
    /// Compute-only instructions after the last memory reference.
    pub post_compute: u64,
    /// Cached instruction count (compute + one per reference).
    pub work: u64,
}

/// Where a [`TraceBuilder`] writes its ops: its own vector (standalone
/// builders that [`finish`](TraceBuilder::finish) into a [`TaskTrace`]) or a
/// borrowed slot of a computation's shared [`TracePool`].
#[derive(Debug)]
enum Dest<'p> {
    Owned(Vec<TraceOp>),
    Pool { pool: &'p mut TracePool, start: u32 },
}

/// Incremental builder for a task trace.
///
/// The builder offers two levels of granularity:
///
/// * [`TraceBuilder::access`] records a single reference verbatim;
/// * [`TraceBuilder::read_range`] / [`TraceBuilder::write_range`] record a
///   streaming access over a byte range, emitting **one reference per cache
///   line** with a caller-supplied number of compute instructions per line.
///   This is how the workload generators keep multi-megabyte traces tractable
///   while preserving the exact set of lines touched and the instruction
///   counts (Section 4 of DESIGN.md).
///
/// [`TraceBuilder::new`] gives a standalone builder whose
/// [`finish`](TraceBuilder::finish) produces an owned [`TaskTrace`];
/// [`ComputationBuilder::strand_with`](crate::ComputationBuilder::strand_with)
/// hands closures a builder that appends straight into the computation's
/// shared [`TracePool`] — same API, no per-task allocation.
#[derive(Debug)]
pub struct TraceBuilder<'p> {
    line_size: u64,
    pending_compute: u64,
    /// Instructions already committed to ops (pre-compute + one per ref),
    /// maintained incrementally so pooled finishes need no second pass.
    recorded_instr: u64,
    dest: Dest<'p>,
}

impl TraceBuilder<'static> {
    /// Create a standalone builder that coalesces range accesses at
    /// `line_size`-byte granularity. `line_size` must be a power of two.
    pub fn new(line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        TraceBuilder {
            line_size,
            pending_compute: 0,
            recorded_instr: 0,
            dest: Dest::Owned(Vec::new()),
        }
    }
}

impl<'p> TraceBuilder<'p> {
    /// A builder that appends straight into `pool` (used by
    /// `ComputationBuilder`).
    pub(crate) fn pooled(pool: &'p mut TracePool, line_size: u64) -> Self {
        debug_assert!(line_size.is_power_of_two());
        let start = pool.end_index();
        TraceBuilder {
            line_size,
            pending_compute: 0,
            recorded_instr: 0,
            dest: Dest::Pool { pool, start },
        }
    }

    /// The configured cache-line size.
    #[inline]
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    #[inline]
    fn push_op(&mut self, pre_compute: u32, mem: MemRef) {
        self.recorded_instr += pre_compute as u64 + 1;
        match &mut self.dest {
            Dest::Owned(ops) => ops.push(TraceOp { pre_compute, mem }),
            Dest::Pool { pool, .. } => pool.push(pre_compute, mem),
        }
    }

    /// Record `n` compute-only instructions.
    pub fn compute(&mut self, n: u64) -> &mut Self {
        self.pending_compute += n;
        self
    }

    /// Record a single memory reference.
    pub fn access(&mut self, mem: MemRef) -> &mut Self {
        // Split pending compute into u32-sized chunks if a pathological
        // amount of compute accumulated (keeps `pre_compute` lossless).
        while self.pending_compute > u32::MAX as u64 {
            self.push_op(u32::MAX, MemRef::read(mem.addr & !(self.line_size - 1), 1));
            self.pending_compute -= u32::MAX as u64 + 1;
        }
        let pre = self.pending_compute as u32;
        self.push_op(pre, mem);
        self.pending_compute = 0;
        self
    }

    /// Record a read of `size` bytes at `addr` as a single reference.
    pub fn read(&mut self, addr: u64, size: u32) -> &mut Self {
        self.access(MemRef::read(addr, size))
    }

    /// Record a write of `size` bytes at `addr` as a single reference.
    pub fn write(&mut self, addr: u64, size: u32) -> &mut Self {
        self.access(MemRef::write(addr, size))
    }

    fn range(&mut self, addr: u64, bytes: u64, instr_per_line: u64, kind: AccessKind) {
        if bytes == 0 {
            return;
        }
        let line = self.line_size;
        let first = addr & !(line - 1);
        let last = (addr + bytes - 1) & !(line - 1);
        let mut a = first;
        loop {
            self.compute(instr_per_line);
            self.access(MemRef {
                addr: a,
                size: line as u32,
                kind,
            });
            if a == last {
                break;
            }
            a += line;
        }
    }

    /// Record a streaming read of `bytes` bytes starting at `addr`:
    /// one reference per touched line, each preceded by `instr_per_line`
    /// compute instructions.
    pub fn read_range(&mut self, addr: u64, bytes: u64, instr_per_line: u64) -> &mut Self {
        self.range(addr, bytes, instr_per_line, AccessKind::Read);
        self
    }

    /// Record a streaming write of `bytes` bytes starting at `addr`.
    pub fn write_range(&mut self, addr: u64, bytes: u64, instr_per_line: u64) -> &mut Self {
        self.range(addr, bytes, instr_per_line, AccessKind::Write);
        self
    }

    /// Number of references recorded so far.
    pub fn num_refs(&self) -> usize {
        match &self.dest {
            Dest::Owned(ops) => ops.len(),
            Dest::Pool { pool, start } => pool.len() - *start as usize,
        }
    }

    /// Finish a standalone trace.
    ///
    /// # Panics
    /// Panics on a pool-backed builder (those are finished internally by
    /// `ComputationBuilder`, which records the range instead).
    pub fn finish(self) -> TaskTrace {
        match self.dest {
            Dest::Owned(ops) => TaskTrace {
                ops,
                post_compute: self.pending_compute,
            },
            Dest::Pool { .. } => {
                panic!("pool-backed TraceBuilder must be finished by its ComputationBuilder")
            }
        }
    }

    /// Finish a pool-backed trace: the recorded range, the trailing compute,
    /// and the total instruction count (the task's `work`).
    pub(crate) fn finish_pooled(self) -> (TraceRange, u64, u64) {
        match self.dest {
            Dest::Pool { pool, start } => (
                TraceRange {
                    start,
                    end: pool.end_index(),
                },
                self.pending_compute,
                self.recorded_instr + self.pending_compute,
            ),
            Dest::Owned(_) => unreachable!("finish_pooled on a standalone TraceBuilder"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_lines_single_line() {
        let r = MemRef::read(130, 4);
        let lines: Vec<u64> = r.lines(128).collect();
        assert_eq!(lines, vec![128]);
    }

    #[test]
    fn memref_lines_straddling() {
        let r = MemRef::write(120, 16);
        let lines: Vec<u64> = r.lines(128).collect();
        assert_eq!(lines, vec![0, 128]);
    }

    #[test]
    fn memref_lines_exact_span() {
        let r = MemRef::read(256, 256);
        let lines: Vec<u64> = r.lines(128).collect();
        assert_eq!(lines, vec![256, 384]);
    }

    #[test]
    fn trace_instruction_accounting() {
        let mut b = TraceBuilder::new(64);
        b.compute(10).read(0, 4).compute(5).write(64, 8).compute(3);
        let t = b.finish();
        assert_eq!(t.num_refs(), 2);
        // 10 + 1 + 5 + 1 + 3
        assert_eq!(t.instructions(), 20);
        assert_eq!(t.post_compute(), 3);
    }

    #[test]
    fn trace_compute_only() {
        let t = TaskTrace::compute_only(42);
        assert_eq!(t.instructions(), 42);
        assert_eq!(t.num_refs(), 0);
    }

    #[test]
    fn read_range_touches_each_line_once() {
        let mut b = TraceBuilder::new(128);
        b.read_range(128, 512, 3);
        let t = b.finish();
        assert_eq!(t.num_refs(), 4);
        let addrs: Vec<u64> = t.refs().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![128, 256, 384, 512]);
        // per line: 3 compute + 1 access
        assert_eq!(t.instructions(), 16);
    }

    #[test]
    fn read_range_unaligned_covers_partial_lines() {
        let mut b = TraceBuilder::new(128);
        b.read_range(100, 60, 0); // bytes 100..160 -> lines 0 and 128
        let t = b.finish();
        let addrs: Vec<u64> = t.refs().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![0, 128]);
    }

    #[test]
    fn write_range_zero_bytes_is_noop() {
        let mut b = TraceBuilder::new(128);
        b.write_range(1024, 0, 5);
        let t = b.finish();
        assert_eq!(t.num_refs(), 0);
        assert_eq!(t.instructions(), 0);
    }

    #[test]
    fn pooled_builder_matches_standalone() {
        // The same builder calls must record the same ops whether they land
        // in an owned vector or straight in a shared pool.
        let record = |t: &mut TraceBuilder<'_>| {
            t.compute(4).read(0, 8).write_range(256, 300, 2).compute(6);
        };
        let mut owned = TraceBuilder::new(128);
        record(&mut owned);
        let standalone = owned.finish();

        let mut pool = TracePool::new();
        let mut pooled = TraceBuilder::pooled(&mut pool, 128);
        record(&mut pooled);
        assert_eq!(pooled.num_refs(), standalone.num_refs());
        let (range, post, work) = pooled.finish_pooled();
        assert_eq!(post, standalone.post_compute());
        assert_eq!(work, standalone.instructions());
        let view = pool.view(range, post);
        let pooled_ops: Vec<TraceOp> = view.ops().collect();
        assert_eq!(pooled_ops.as_slice(), standalone.ops());
        assert_eq!(view.instructions(), standalone.instructions());
    }

    #[test]
    fn task_id_display() {
        assert_eq!(format!("{}", TaskId(3)), "T3");
        assert_eq!(format!("{:?}", TaskId(3)), "T3");
        assert_eq!(TaskId(5).index(), 5);
    }
}
