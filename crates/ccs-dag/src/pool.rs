//! The flat trace arena: every [`TraceOp`] of a computation in one
//! structure-of-arrays pool.
//!
//! The seed stored each task's trace as its own boxed `Vec<TraceOp>`, so a
//! simulated access chased a per-task heap pointer and the host's cache
//! behaviour — not the simulated algorithm — bounded throughput.  The
//! [`TracePool`] applies the paper's own locality discipline to the
//! simulator's data structures: all trace ops of a computation live in three
//! contiguous lanes (`pre_compute`, `addr`, packed `kind`/`size`), and each
//! [`Task`](crate::Task) holds only a [`TraceRange`] — a `(start, end)` pair
//! of indices into the pool.  Builders append straight into the pool, so
//! building a computation performs O(1) allocations per *lane*, not per
//! task.
//!
//! [`TraceView`] is the read side: a borrowed window over one task's range
//! that reassembles [`TraceOp`]s on the fly (the lanes are `#[inline]`
//! indexed, so a sequential scan compiles to three streaming loads).

use crate::task::{AccessKind, MemRef, TaskTrace, TraceOp};

/// Write flag in the packed `meta` lane (bit 31; bits 0..31 hold the size).
const WRITE_BIT: u32 = 1 << 31;
/// Mask of the size bits in the packed `meta` lane.
const SIZE_MASK: u32 = WRITE_BIT - 1;

/// A contiguous range of ops inside a [`TracePool`] — all a task keeps of
/// its trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceRange {
    /// Index of the first op in the pool.
    pub start: u32,
    /// One past the last op.
    pub end: u32,
}

impl TraceRange {
    /// Number of ops in the range.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the range contains no ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Structure-of-arrays arena holding every trace op of a computation.
///
/// Lanes are index-aligned: op `i` is `(pre_compute[i], addr[i], meta[i])`
/// with the access kind in bit 31 of `meta` and the byte size in the low 31
/// bits.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TracePool {
    pre_compute: Vec<u32>,
    addr: Vec<u64>,
    meta: Vec<u32>,
}

impl TracePool {
    /// An empty pool.
    pub fn new() -> Self {
        TracePool::default()
    }

    /// Number of ops in the pool.
    #[inline]
    pub fn len(&self) -> usize {
        self.addr.len()
    }

    /// Whether the pool holds no ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addr.is_empty()
    }

    /// Append one op.  Panics if the reference size does not fit the packed
    /// lane.  (`u32` indexing overflow is caught at range-creation time by
    /// the builders — `end_index` — so the hot path carries one branch,
    /// not two.)
    #[inline]
    pub fn push(&mut self, pre_compute: u32, mem: MemRef) {
        assert!(
            mem.size <= SIZE_MASK,
            "reference size {} exceeds the packed meta lane",
            mem.size
        );
        self.pre_compute.push(pre_compute);
        self.addr.push(mem.addr);
        self.meta
            .push(mem.size | if mem.kind.is_write() { WRITE_BIT } else { 0 });
    }

    /// Reassemble op `i` (pool-wide index).
    #[inline]
    pub fn op(&self, i: usize) -> TraceOp {
        TraceOp {
            pre_compute: self.pre_compute[i],
            mem: self.mem(i),
        }
    }

    /// Reassemble the memory reference of op `i` (pool-wide index).
    #[inline]
    pub fn mem(&self, i: usize) -> MemRef {
        let meta = self.meta[i];
        MemRef {
            addr: self.addr[i],
            size: meta & SIZE_MASK,
            kind: if meta & WRITE_BIT != 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        }
    }

    /// Compute instructions preceding op `i` (pool-wide index).
    #[inline]
    pub fn pre_compute(&self, i: usize) -> u64 {
        self.pre_compute[i] as u64
    }

    /// The pool length as a range endpoint, checked against `u32`
    /// indexing.  Called once per strand by the builders.
    pub(crate) fn end_index(&self) -> u32 {
        u32::try_from(self.addr.len()).expect("trace pool exceeds u32 indexing")
    }

    /// Borrow a view over `range` with the given trailing compute.
    #[inline]
    pub fn view(&self, range: TraceRange, post_compute: u64) -> TraceView<'_> {
        TraceView {
            pool: self,
            range,
            post_compute,
        }
    }

    /// Heap bytes held by the three lanes (capacity, i.e. the arena
    /// footprint reported as `trace_bytes` in bench records).
    pub fn heap_bytes(&self) -> u64 {
        (self.pre_compute.capacity() * std::mem::size_of::<u32>()
            + self.addr.capacity() * std::mem::size_of::<u64>()
            + self.meta.capacity() * std::mem::size_of::<u32>()) as u64
    }

    /// Drop unused lane capacity (called once when a builder finishes).
    pub(crate) fn shrink_to_fit(&mut self) {
        self.pre_compute.shrink_to_fit();
        self.addr.shrink_to_fit();
        self.meta.shrink_to_fit();
    }
}

/// A borrowed window over one task's ops in the pool, plus the task's
/// trailing compute — the pool-backed replacement for `&TaskTrace`.
#[derive(Clone, Copy, Debug)]
pub struct TraceView<'a> {
    pool: &'a TracePool,
    range: TraceRange,
    post_compute: u64,
}

impl<'a> TraceView<'a> {
    /// Number of memory references in the trace.
    #[inline]
    pub fn num_refs(&self) -> usize {
        self.range.len()
    }

    /// Whether the trace has no memory references.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Op `i` of the task (task-local index).
    #[inline]
    pub fn op(&self, i: usize) -> TraceOp {
        debug_assert!(i < self.num_refs());
        self.pool.op(self.range.start as usize + i)
    }

    /// Compute-only instructions after the last memory reference.
    #[inline]
    pub fn post_compute(&self) -> u64 {
        self.post_compute
    }

    /// The range this view covers (pool-wide indices).
    #[inline]
    pub fn range(&self) -> TraceRange {
        self.range
    }

    /// Iterate the ops in program order.
    pub fn ops(&self) -> impl Iterator<Item = TraceOp> + 'a {
        let pool = self.pool;
        (self.range.start as usize..self.range.end as usize).map(move |i| pool.op(i))
    }

    /// Iterate the memory references in program order.
    pub fn refs(&self) -> impl Iterator<Item = MemRef> + 'a {
        let pool = self.pool;
        (self.range.start as usize..self.range.end as usize).map(move |i| pool.mem(i))
    }

    /// Total instruction count (compute + one per reference).
    pub fn instructions(&self) -> u64 {
        self.ops().map(|op| op.instructions()).sum::<u64>() + self.post_compute
    }

    /// Materialise a standalone [`TaskTrace`] (the legacy per-task form,
    /// used by the reference engine's thin adapter and by trace surgery in
    /// `ccs-profile`).
    pub fn to_task_trace(&self) -> TaskTrace {
        TaskTrace::from_parts(self.ops().collect(), self.post_compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_reassemble_round_trip() {
        let mut pool = TracePool::new();
        pool.push(7, MemRef::read(0x1000, 128));
        pool.push(0, MemRef::write(0x2040, 8));
        assert_eq!(pool.len(), 2);
        assert_eq!(
            pool.op(0),
            TraceOp {
                pre_compute: 7,
                mem: MemRef::read(0x1000, 128)
            }
        );
        assert_eq!(pool.mem(1), MemRef::write(0x2040, 8));
        assert_eq!(pool.pre_compute(1), 0);
    }

    #[test]
    fn view_iterates_its_range_only() {
        let mut pool = TracePool::new();
        for i in 0..6u64 {
            pool.push(i as u32, MemRef::read(i * 64, 4));
        }
        let view = pool.view(TraceRange { start: 2, end: 5 }, 9);
        assert_eq!(view.num_refs(), 3);
        let addrs: Vec<u64> = view.refs().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![128, 192, 256]);
        assert_eq!(view.post_compute(), 9);
        // 3 refs + pre 2+3+4 + post 9
        assert_eq!(view.instructions(), 3 + 9 + 9);
        let trace = view.to_task_trace();
        assert_eq!(trace.num_refs(), 3);
        assert_eq!(trace.ops()[0], view.op(0));
    }

    #[test]
    #[should_panic(expected = "packed meta lane")]
    fn oversized_reference_is_rejected() {
        let mut pool = TracePool::new();
        pool.push(0, MemRef::read(0, u32::MAX));
    }

    #[test]
    fn heap_bytes_tracks_lanes() {
        let mut pool = TracePool::new();
        assert_eq!(TracePool::new().heap_bytes(), 0);
        for i in 0..100 {
            pool.push(0, MemRef::read(i * 64, 4));
        }
        pool.shrink_to_fit();
        assert_eq!(pool.heap_bytes(), 100 * (4 + 8 + 4));
    }
}
