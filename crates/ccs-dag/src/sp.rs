//! Series-parallel computation trees and the [`ComputationBuilder`].
//!
//! The paper's benchmarks are fine-grained fork-join programs.  Such programs
//! are naturally described by a *series-parallel (SP) tree*: leaves are
//! strands (tasks with no internal parallelism), internal nodes compose their
//! children either **sequentially** (`Seq`) or **in parallel** (`Par`).
//!
//! The SP tree serves three purposes at once:
//!
//! 1. it flattens into the computation [`Dag`](crate::Dag) executed by the
//!    schedulers and the CMP simulator;
//! 2. its left-to-right leaf order *is* the 1DF sequential execution order
//!    used to assign PDF priorities;
//! 3. it *is* the hierarchical task-group tree consumed by the working-set
//!    profiler and the automatic task-coarsening algorithm (Section 6):
//!    parents are supersets of children, siblings are disjoint, and every
//!    group covers a range of consecutive sequential tasks.

use std::sync::{Arc, Mutex};

use crate::pool::{TracePool, TraceView};
use crate::stream::LineStream;
use crate::task::{Task, TaskId, TaskTrace, TraceBuilder};

/// Identifier of a node in the SP tree of a [`Computation`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpNodeId(pub u32);

impl SpNodeId {
    /// Index into the node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How an SP node composes its children.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpKind {
    /// A leaf: one task.
    Strand(TaskId),
    /// Children execute one after another.
    Seq,
    /// Children may execute concurrently (fork/join block).
    Par,
}

/// Source-location of the spawn decision that produced a task group, used by
/// the parallelization table of Fig. 7(b).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CallSite {
    /// Source file of the spawn site.
    pub file: &'static str,
    /// Line of the spawn site.
    pub line: u32,
}

impl CallSite {
    /// Construct a call site.
    pub const fn new(file: &'static str, line: u32) -> Self {
        CallSite { file, line }
    }
}

/// Metadata attached to SP nodes: the call site that created the group and
/// the "param" value (e.g. sub-array length, matrix block size) the program
/// would compare against a threshold to decide whether to parallelize
/// (Fig. 7a).  Used by the automatic task-coarsening algorithm.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupMeta {
    /// Spawn call site, if known.
    pub site: Option<CallSite>,
    /// The parallelization parameter value for this group (e.g. problem size).
    pub param: u64,
    /// Free-form label for diagnostics (`"merge"`, `"sort"`, `"probe"`, ...).
    pub label: &'static str,
}

impl GroupMeta {
    /// Metadata with just a label.
    pub fn labeled(label: &'static str) -> Self {
        GroupMeta {
            site: None,
            param: 0,
            label,
        }
    }

    /// Metadata with a label and a parallelization parameter.
    pub fn with_param(label: &'static str, param: u64) -> Self {
        GroupMeta {
            site: None,
            param,
            label,
        }
    }

    /// Attach a call site.
    pub fn at(mut self, site: CallSite) -> Self {
        self.site = Some(site);
        self
    }
}

/// One node of the SP tree.
#[derive(Clone, Debug)]
pub struct SpNode {
    /// Leaf / Seq / Par.
    pub kind: SpKind,
    /// Children (empty for strands).
    pub children: Vec<SpNodeId>,
    /// Group metadata.
    pub meta: GroupMeta,
}

/// A complete fine-grained multithreaded computation: the task arena, the
/// flat trace pool holding every task's ops, and the SP tree describing its
/// fork-join structure.
#[derive(Debug)]
pub struct Computation {
    pub(crate) tasks: Vec<Task>,
    pub(crate) nodes: Vec<SpNode>,
    pub(crate) root: SpNodeId,
    /// Default cache-line size used when building traces (informational).
    pub(crate) line_size: u64,
    /// The flat trace arena: every task's ops, indexed by its `TraceRange`.
    pub(crate) pool: TracePool,
    /// Precompiled line streams, one per line size, built lazily by
    /// [`Computation::line_stream`] and shared across simulations.
    pub(crate) streams: Mutex<Vec<(u64, Arc<LineStream>)>>,
}

impl Clone for Computation {
    /// Clones share nothing: the stream cache restarts empty (it is a pure
    /// memoisation of `line_stream`, rebuilt on demand).
    fn clone(&self) -> Computation {
        Computation {
            tasks: self.tasks.clone(),
            nodes: self.nodes.clone(),
            root: self.root,
            line_size: self.line_size,
            pool: self.pool.clone(),
            streams: Mutex::new(Vec::new()),
        }
    }
}

impl Computation {
    /// Number of tasks (strands).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Access a task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// All tasks, indexed by [`TaskId`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The flat trace arena holding every task's ops.
    pub fn trace_pool(&self) -> &TracePool {
        &self.pool
    }

    /// Borrow a task's trace as a view over the shared pool.
    #[inline]
    pub fn trace(&self, id: TaskId) -> TraceView<'_> {
        let task = &self.tasks[id.index()];
        self.pool.view(task.ops, task.post_compute)
    }

    /// Heap bytes of the trace arena (the `trace_bytes` bench metric).
    pub fn trace_arena_bytes(&self) -> u64 {
        self.pool.heap_bytes()
    }

    /// The root of the SP tree.
    pub fn root(&self) -> SpNodeId {
        self.root
    }

    /// Access an SP node.
    pub fn node(&self, id: SpNodeId) -> &SpNode {
        &self.nodes[id.index()]
    }

    /// All SP nodes.
    pub fn nodes(&self) -> &[SpNode] {
        &self.nodes
    }

    /// The cache-line size the traces were generated at.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Total work (instructions) over all tasks.
    pub fn total_work(&self) -> u64 {
        self.tasks.iter().map(|t| t.work).sum()
    }

    /// Total number of memory references over all tasks.
    pub fn total_refs(&self) -> u64 {
        // Every pool op belongs to exactly one task.
        self.pool.len() as u64
    }

    /// The tasks in 1DF (sequential depth-first) order, i.e. the order a
    /// sequential execution of the program would run them: the left-to-right
    /// leaf order of the SP tree.
    pub fn sequential_order(&self) -> Vec<TaskId> {
        let mut order = Vec::with_capacity(self.tasks.len());
        // Iterative DFS to avoid recursion depth limits on deep trees.
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            match node.kind {
                SpKind::Strand(t) => order.push(t),
                SpKind::Seq | SpKind::Par => {
                    for &c in node.children.iter().rev() {
                        stack.push(c);
                    }
                }
            }
        }
        order
    }

    /// Iterate over all memory references of the whole computation in
    /// sequential (1DF) order, yielding each reference with the task that
    /// issues it.  This is the trace the working-set profiler consumes.
    pub fn sequential_refs(&self) -> impl Iterator<Item = (TaskId, crate::task::MemRef)> + '_ {
        self.sequential_order()
            .into_iter()
            .flat_map(move |tid| self.trace(tid).refs().map(move |r| (tid, r)))
    }

    /// Depth of the SP tree (number of nodes on the longest root-to-leaf
    /// path).  This is a structural measure, distinct from the weighted DAG
    /// depth `D` of [`crate::Dag::depth`].
    pub fn sp_height(&self) -> usize {
        // Compute heights bottom-up without recursion: children are created
        // before parents by the builder, so a forward pass over the arena
        // visits every child before its parent.
        let mut height = vec![1usize; self.nodes.len()];
        for idx in 0..self.nodes.len() {
            let node = &self.nodes[idx];
            if !node.children.is_empty() {
                height[idx] = 1 + node
                    .children
                    .iter()
                    .map(|c| height[c.index()])
                    .max()
                    .unwrap_or(0);
            }
        }
        height[self.root.index()]
    }
}

/// Builder for [`Computation`]s.
///
/// Workload generators compose computations functionally:
///
/// ```
/// use ccs_dag::{ComputationBuilder, GroupMeta};
///
/// let mut b = ComputationBuilder::new(128);
/// let left = b.strand_with(|t| { t.compute(100).read_range(0, 1024, 2); });
/// let right = b.strand_with(|t| { t.compute(100).read_range(4096, 1024, 2); });
/// let join = b.strand_with(|t| { t.compute(10); });
/// let par = b.par(vec![left, right], GroupMeta::labeled("children"));
/// let root = b.seq(vec![par, join], GroupMeta::labeled("root"));
/// let comp = b.finish(root);
/// assert_eq!(comp.num_tasks(), 3);
/// ```
#[derive(Debug)]
pub struct ComputationBuilder {
    tasks: Vec<Task>,
    nodes: Vec<SpNode>,
    line_size: u64,
    pool: TracePool,
}

impl ComputationBuilder {
    /// Create a builder; `line_size` is the cache-line granularity passed to
    /// every [`TraceBuilder`] it hands out.
    pub fn new(line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        ComputationBuilder {
            tasks: Vec::new(),
            nodes: Vec::new(),
            line_size,
            pool: TracePool::new(),
        }
    }

    /// The cache-line granularity of this builder.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of tasks created so far.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn push_node(&mut self, node: SpNode) -> SpNodeId {
        let id = SpNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Add a strand (leaf task) with an explicit trace (copied into the
    /// shared trace pool; prefer [`ComputationBuilder::strand_with`], which
    /// records straight into the pool).
    pub fn strand(&mut self, trace: TaskTrace) -> SpNodeId {
        self.strand_meta(trace, GroupMeta::default())
    }

    /// Add a strand with metadata.
    pub fn strand_meta(&mut self, trace: TaskTrace, meta: GroupMeta) -> SpNodeId {
        let start = self.pool.end_index();
        for op in trace.ops() {
            self.pool.push(op.pre_compute, op.mem);
        }
        let ops = crate::pool::TraceRange {
            start,
            end: self.pool.end_index(),
        };
        self.push_strand(ops, trace.post_compute(), trace.instructions(), meta)
    }

    fn push_strand(
        &mut self,
        ops: crate::pool::TraceRange,
        post_compute: u64,
        work: u64,
        meta: GroupMeta,
    ) -> SpNodeId {
        let tid = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task {
            ops,
            post_compute,
            work,
        });
        self.push_node(SpNode {
            kind: SpKind::Strand(tid),
            children: Vec::new(),
            meta,
        })
    }

    /// Add a strand whose trace is produced by `f` on a [`TraceBuilder`]
    /// that appends straight into the computation's trace pool.
    pub fn strand_with(&mut self, f: impl FnOnce(&mut TraceBuilder<'_>)) -> SpNodeId {
        self.strand_with_meta(GroupMeta::default(), f)
    }

    /// Add a strand with metadata, trace produced by `f`.
    pub fn strand_with_meta(
        &mut self,
        meta: GroupMeta,
        f: impl FnOnce(&mut TraceBuilder<'_>),
    ) -> SpNodeId {
        let mut tb = TraceBuilder::pooled(&mut self.pool, self.line_size);
        f(&mut tb);
        let (ops, post_compute, work) = tb.finish_pooled();
        self.push_strand(ops, post_compute, work, meta)
    }

    /// A zero-work strand, useful as an explicit fork or join point.
    pub fn nop(&mut self) -> SpNodeId {
        self.strand(TaskTrace::empty())
    }

    /// Compose `children` sequentially.
    ///
    /// Panics if `children` is empty (an empty composition has no meaning in
    /// the DAG flattening).
    pub fn seq(&mut self, children: Vec<SpNodeId>, meta: GroupMeta) -> SpNodeId {
        assert!(!children.is_empty(), "seq requires at least one child");
        self.check_children(&children);
        self.push_node(SpNode {
            kind: SpKind::Seq,
            children,
            meta,
        })
    }

    /// Compose `children` in parallel (fork/join block).
    ///
    /// Panics if `children` is empty.
    pub fn par(&mut self, children: Vec<SpNodeId>, meta: GroupMeta) -> SpNodeId {
        assert!(!children.is_empty(), "par requires at least one child");
        self.check_children(&children);
        self.push_node(SpNode {
            kind: SpKind::Par,
            children,
            meta,
        })
    }

    /// Compose `children` in parallel, preceded by an explicit *fork strand*
    /// of `spawn_cost` compute instructions: `seq(spawn, par(children))`.
    ///
    /// Real fork-join programs have a task that performs the spawning, and
    /// the children only become ready once that task runs.  Without it, every
    /// child of a leading `par` would be a DAG source, ready from time zero —
    /// which misrepresents how a work-stealing runtime unfolds the DAG
    /// (thieves steal whole sub-trees from the forking core).  Workload
    /// generators should use this for any `par` that is not already preceded
    /// by a strand in an enclosing `seq`.
    pub fn forked_par(
        &mut self,
        children: Vec<SpNodeId>,
        meta: GroupMeta,
        spawn_cost: u64,
    ) -> SpNodeId {
        let spawn_meta = GroupMeta {
            site: meta.site,
            param: meta.param,
            label: "spawn",
        };
        let spawn = self.strand_meta(TaskTrace::compute_only(spawn_cost), spawn_meta);
        let par = self.par(children, meta.clone());
        self.seq(vec![spawn, par], meta)
    }

    fn check_children(&self, children: &[SpNodeId]) {
        for &c in children {
            assert!(
                c.index() < self.nodes.len(),
                "child {:?} does not exist yet",
                c
            );
        }
        // Each node may have at most one parent: verify children were not
        // already consumed.  We track this lazily by checking in debug builds
        // only (the scan is O(n) per call).
        #[cfg(debug_assertions)]
        {
            for node in &self.nodes {
                for &existing in &node.children {
                    assert!(
                        !children.contains(&existing),
                        "SP node {:?} already has a parent",
                        existing
                    );
                }
            }
        }
    }

    /// Finish the computation with `root` as the root of the SP tree.
    ///
    /// Panics if `root` does not dominate all created nodes (every node must
    /// be reachable from the root, otherwise tasks would be lost).
    pub fn finish(self, root: SpNodeId) -> Computation {
        let mut pool = self.pool;
        pool.shrink_to_fit();
        let comp = Computation {
            tasks: self.tasks,
            nodes: self.nodes,
            root,
            line_size: self.line_size,
            pool,
            streams: Mutex::new(Vec::new()),
        };
        // Reachability check: every strand must appear exactly once in the
        // sequential order.
        let order = comp.sequential_order();
        assert_eq!(
            order.len(),
            comp.tasks.len(),
            "every created task must be reachable from the root exactly once \
             (got {} of {})",
            order.len(),
            comp.tasks.len()
        );
        let mut seen = vec![false; comp.tasks.len()];
        for t in &order {
            assert!(
                !seen[t.index()],
                "task {:?} appears twice in the SP tree",
                t
            );
            seen[t.index()] = true;
        }
        comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(b: &mut ComputationBuilder, work: u64) -> SpNodeId {
        b.strand(TaskTrace::compute_only(work))
    }

    #[test]
    fn builder_basic_composition() {
        let mut b = ComputationBuilder::new(128);
        let a = leaf(&mut b, 1);
        let c = leaf(&mut b, 2);
        let d = leaf(&mut b, 3);
        let p = b.par(vec![c, d], GroupMeta::labeled("p"));
        let root = b.seq(vec![a, p], GroupMeta::labeled("root"));
        let comp = b.finish(root);
        assert_eq!(comp.num_tasks(), 3);
        assert_eq!(comp.total_work(), 6);
        assert_eq!(comp.sp_height(), 3);
    }

    #[test]
    fn sequential_order_is_left_to_right_leaf_order() {
        let mut b = ComputationBuilder::new(128);
        let t0 = leaf(&mut b, 1);
        let t1 = leaf(&mut b, 1);
        let t2 = leaf(&mut b, 1);
        let t3 = leaf(&mut b, 1);
        let p = b.par(vec![t1, t2], GroupMeta::default());
        let root = b.seq(vec![t0, p, t3], GroupMeta::default());
        let comp = b.finish(root);
        let order = comp.sequential_order();
        assert_eq!(order, vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)]);
    }

    #[test]
    #[should_panic(expected = "reachable")]
    fn finish_panics_on_unreachable_tasks() {
        let mut b = ComputationBuilder::new(128);
        let a = leaf(&mut b, 1);
        let _orphan = leaf(&mut b, 1);
        b.finish(a);
    }

    #[test]
    #[should_panic(expected = "at least one child")]
    fn empty_par_panics() {
        let mut b = ComputationBuilder::new(128);
        b.par(vec![], GroupMeta::default());
    }

    #[test]
    fn nested_structure_work_and_refs() {
        let mut b = ComputationBuilder::new(128);
        let l = b.strand_with(|t| {
            t.read_range(0, 1024, 1);
        });
        let r = b.strand_with(|t| {
            t.read_range(1024, 1024, 1);
        });
        let p = b.par(vec![l, r], GroupMeta::with_param("halves", 1024));
        let comp = b.finish(p);
        assert_eq!(comp.total_refs(), 16);
        assert_eq!(comp.total_work(), 32);
        assert_eq!(comp.node(comp.root()).meta.param, 1024);
    }

    #[test]
    fn sequential_refs_concatenates_task_traces() {
        let mut b = ComputationBuilder::new(64);
        let a = b.strand_with(|t| {
            t.read(0, 4).read(64, 4);
        });
        let c = b.strand_with(|t| {
            t.read(128, 4);
        });
        let root = b.seq(vec![a, c], GroupMeta::default());
        let comp = b.finish(root);
        let refs: Vec<(TaskId, u64)> = comp.sequential_refs().map(|(t, r)| (t, r.addr)).collect();
        assert_eq!(
            refs,
            vec![(TaskId(0), 0), (TaskId(0), 64), (TaskId(1), 128)]
        );
    }

    #[test]
    fn nop_strand_has_zero_work() {
        let mut b = ComputationBuilder::new(128);
        let n = b.nop();
        let comp = b.finish(n);
        assert_eq!(comp.total_work(), 0);
        assert_eq!(comp.num_tasks(), 1);
    }

    #[test]
    fn forked_par_has_explicit_fork_task() {
        let mut b = ComputationBuilder::new(128);
        let l = leaf(&mut b, 5);
        let r = leaf(&mut b, 5);
        let root = b.forked_par(vec![l, r], GroupMeta::with_param("halves", 10), 16);
        let comp = b.finish(root);
        assert_eq!(comp.num_tasks(), 3);
        // The fork strand comes first sequentially and is the only DAG source.
        let dag = crate::dag::Dag::from_computation(&comp);
        assert_eq!(dag.sources().len(), 1);
        assert_eq!(dag.work_of(dag.sources()[0]), 16);
        assert_eq!(dag.successors(dag.sources()[0]).len(), 2);
    }

    #[test]
    fn callsite_and_meta_builders() {
        let site = CallSite::new("mergesort.rs", 42);
        let meta = GroupMeta::with_param("sort", 1 << 20).at(site);
        assert_eq!(meta.site.unwrap().line, 42);
        assert_eq!(meta.param, 1 << 20);
        assert_eq!(meta.label, "sort");
    }
}
