//! Synthetic virtual address space for trace generation.
//!
//! Workload generators need concrete addresses for the data structures their
//! tasks touch (arrays, hash tables, temporary buffers).  [`AddressSpace`] is
//! a simple bump allocator over a flat 64-bit virtual address space; it never
//! frees, but supports explicit *regions* so a workload can reuse a buffer
//! (e.g. Mergesort ping-pong buffers) by allocating it once and re-touching
//! the same addresses.

/// A named, contiguous allocation in the synthetic address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First byte address of the region.
    pub base: u64,
    /// Size in bytes.
    pub bytes: u64,
}

impl Region {
    /// Address of byte `offset` within the region (checked in debug builds).
    #[inline]
    pub fn at(&self, offset: u64) -> u64 {
        debug_assert!(
            offset < self.bytes,
            "offset {offset} out of region of {} bytes",
            self.bytes
        );
        self.base + offset
    }

    /// Address of element `index` for elements of `elem_size` bytes.
    #[inline]
    pub fn elem(&self, index: u64, elem_size: u64) -> u64 {
        self.at(index * elem_size)
    }

    /// Sub-region starting at `offset` with `bytes` bytes.
    ///
    /// # Panics
    /// Panics when the slice exceeds the region — including when
    /// `offset + bytes` overflows `u64` (huge `--scale`-derived sizes must
    /// fail loudly, not wrap).
    pub fn slice(&self, offset: u64, bytes: u64) -> Region {
        let end = offset.checked_add(bytes).unwrap_or_else(|| {
            panic!(
                "slice {offset}+{bytes} overflows u64 and exceeds region of {} bytes",
                self.bytes
            )
        });
        assert!(
            end <= self.bytes,
            "slice {offset}+{bytes} exceeds region of {} bytes",
            self.bytes
        );
        Region {
            base: self.base + offset,
            bytes,
        }
    }

    /// One past the last byte of the region.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.bytes
    }
}

/// Bump allocator for the synthetic virtual address space used by workload
/// generators.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    next: u64,
    allocated: u64,
}

/// Regions are aligned to this many bytes by default (one typical page), so
/// distinct allocations never share a cache line.
pub const DEFAULT_ALIGN: u64 = 4096;

impl AddressSpace {
    /// A fresh address space starting at a non-zero base (so address 0 is
    /// never valid, which helps catch uninitialised-address bugs).
    pub fn new() -> Self {
        AddressSpace {
            next: DEFAULT_ALIGN,
            allocated: 0,
        }
    }

    /// Allocate `bytes` bytes aligned to [`DEFAULT_ALIGN`].
    pub fn alloc(&mut self, bytes: u64) -> Region {
        self.alloc_aligned(bytes, DEFAULT_ALIGN)
    }

    /// Allocate `bytes` bytes with the given power-of-two alignment.
    pub fn alloc_aligned(&mut self, bytes: u64, align: u64) -> Region {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes.max(1);
        self.allocated += bytes;
        Region { base, bytes }
    }

    /// Allocate an array of `count` elements of `elem_size` bytes.
    ///
    /// # Panics
    /// Panics when `count * elem_size` overflows `u64` — a plausible outcome
    /// of extreme `--scale` arithmetic that must not wrap into a silently
    /// tiny allocation.
    pub fn alloc_array(&mut self, count: u64, elem_size: u64) -> Region {
        let bytes = count.checked_mul(elem_size).unwrap_or_else(|| {
            panic!("array allocation of {count} elements x {elem_size} bytes overflows u64")
        });
        self.alloc(bytes)
    }

    /// Total bytes handed out so far (excluding alignment padding).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Highest address handed out so far.
    pub fn high_water_mark(&self) -> u64 {
        self.next
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc(1000);
        let r2 = a.alloc(1000);
        let r3 = a.alloc(1);
        assert!(r1.end() <= r2.base);
        assert!(r2.end() <= r3.base);
        assert_eq!(a.allocated_bytes(), 2001);
    }

    #[test]
    fn allocations_are_aligned() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc(10);
        let r2 = a.alloc_aligned(10, 64);
        assert_eq!(r1.base % DEFAULT_ALIGN, 0);
        assert_eq!(r2.base % 64, 0);
    }

    #[test]
    fn zero_never_allocated() {
        let mut a = AddressSpace::new();
        let r = a.alloc(8);
        assert!(r.base > 0);
    }

    #[test]
    fn region_addressing() {
        let mut a = AddressSpace::new();
        let r = a.alloc_array(100, 8);
        assert_eq!(r.bytes, 800);
        assert_eq!(r.elem(3, 8), r.base + 24);
        let s = r.slice(80, 160);
        assert_eq!(s.base, r.base + 80);
        assert_eq!(s.bytes, 160);
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn slice_out_of_bounds_panics() {
        let mut a = AddressSpace::new();
        let r = a.alloc(100);
        let _ = r.slice(90, 20);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn alloc_array_overflow_panics_instead_of_wrapping() {
        let mut a = AddressSpace::new();
        // Would silently wrap to 0 bytes with unchecked multiplication.
        let _ = a.alloc_array(u64::MAX / 2, 4);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn slice_offset_overflow_panics_instead_of_wrapping() {
        let mut a = AddressSpace::new();
        let r = a.alloc(100);
        let _ = r.slice(u64::MAX - 4, 8);
    }
}
