//! Synthetic computation generators for tests and property-based checks.
//!
//! These produce random (but seeded, hence reproducible) series-parallel
//! computations with random task traces.  They are used by the scheduler
//! property tests (e.g. the Theorem 3.1 miss bound) and by integration tests
//! that need a wide variety of DAG shapes without depending on the full
//! workload generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::addr::AddressSpace;
use crate::sp::{Computation, ComputationBuilder, GroupMeta, SpNodeId};
use crate::task::MemRef;

/// Parameters controlling random computation generation.
#[derive(Clone, Debug)]
pub struct SynthParams {
    /// Maximum depth of the random SP tree.
    pub max_depth: u32,
    /// Maximum fan-out of `Par` nodes.
    pub max_par_width: u32,
    /// Maximum number of children of `Seq` nodes.
    pub max_seq_len: u32,
    /// Maximum compute instructions per strand.
    pub max_strand_work: u64,
    /// Maximum memory references per strand.
    pub max_strand_refs: u32,
    /// Number of distinct shared data regions strands may touch.
    pub num_regions: u32,
    /// Bytes per shared region.
    pub region_bytes: u64,
    /// Probability that a strand reference targets a shared region (otherwise
    /// it touches strand-private data).
    pub shared_ref_prob: f64,
    /// Cache-line size for trace generation.
    pub line_size: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            max_depth: 5,
            max_par_width: 4,
            max_seq_len: 3,
            max_strand_work: 200,
            max_strand_refs: 32,
            num_regions: 4,
            region_bytes: 16 * 1024,
            shared_ref_prob: 0.5,
            line_size: 128,
        }
    }
}

/// Generate a random series-parallel computation from a seed.
pub fn random_computation(seed: u64, params: &SynthParams) -> Computation {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut space = AddressSpace::new();
    let regions: Vec<_> = (0..params.num_regions.max(1))
        .map(|_| space.alloc(params.region_bytes.max(params.line_size)))
        .collect();
    let mut b = ComputationBuilder::new(params.line_size);
    let root = gen_node(
        &mut b,
        &mut rng,
        &mut space,
        &regions,
        params,
        params.max_depth,
    );
    b.finish(root)
}

fn gen_strand(
    b: &mut ComputationBuilder,
    rng: &mut SmallRng,
    space: &mut AddressSpace,
    regions: &[crate::addr::Region],
    params: &SynthParams,
) -> SpNodeId {
    let work = rng.gen_range(0..=params.max_strand_work);
    let nrefs = rng.gen_range(0..=params.max_strand_refs);
    let private = space.alloc((nrefs as u64 + 1) * params.line_size);
    // Pre-draw randomness to avoid borrowing issues inside the closure.
    let mut ops: Vec<MemRef> = Vec::with_capacity(nrefs as usize);
    for i in 0..nrefs {
        let shared = rng.gen_bool(params.shared_ref_prob);
        let addr = if shared && !regions.is_empty() {
            let r = &regions[rng.gen_range(0..regions.len())];
            let line = rng.gen_range(0..(r.bytes / params.line_size).max(1));
            r.base + line * params.line_size
        } else {
            private.base + (i as u64) * params.line_size
        };
        let write = rng.gen_bool(0.3);
        ops.push(if write {
            MemRef::write(addr, params.line_size as u32)
        } else {
            MemRef::read(addr, params.line_size as u32)
        });
    }
    let per_ref_compute = if nrefs > 0 { work / nrefs as u64 } else { 0 };
    b.strand_with(move |t| {
        for op in &ops {
            t.compute(per_ref_compute);
            t.access(*op);
        }
        if nrefs == 0 {
            t.compute(work);
        }
    })
}

fn gen_node(
    b: &mut ComputationBuilder,
    rng: &mut SmallRng,
    space: &mut AddressSpace,
    regions: &[crate::addr::Region],
    params: &SynthParams,
    depth: u32,
) -> SpNodeId {
    if depth == 0 || rng.gen_bool(0.3) {
        return gen_strand(b, rng, space, regions, params);
    }
    if rng.gen_bool(0.5) {
        // Fork strand + par of k children + a join strand, as a fork-join
        // program would unfold.
        let k = rng.gen_range(2..=params.max_par_width.max(2));
        let children: Vec<_> = (0..k)
            .map(|_| gen_node(b, rng, space, regions, params, depth - 1))
            .collect();
        let par = b.forked_par(
            children,
            GroupMeta::with_param("synth-par", depth as u64),
            8,
        );
        let join = gen_strand(b, rng, space, regions, params);
        b.seq(
            vec![par, join],
            GroupMeta::with_param("synth-fork-join", depth as u64),
        )
    } else {
        let k = rng.gen_range(2..=params.max_seq_len.max(2));
        let children: Vec<_> = (0..k)
            .map(|_| gen_node(b, rng, space, regions, params, depth - 1))
            .collect();
        b.seq(children, GroupMeta::with_param("synth-seq", depth as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use crate::group::TaskGroupTree;

    #[test]
    fn random_computation_is_reproducible() {
        let p = SynthParams::default();
        let a = random_computation(42, &p);
        let b = random_computation(42, &p);
        assert_eq!(a.num_tasks(), b.num_tasks());
        assert_eq!(a.total_work(), b.total_work());
        assert_eq!(a.total_refs(), b.total_refs());
    }

    #[test]
    fn different_seeds_give_different_computations() {
        let p = SynthParams::default();
        let a = random_computation(1, &p);
        let b = random_computation(2, &p);
        // Overwhelmingly likely to differ in at least one of these.
        assert!(
            a.num_tasks() != b.num_tasks()
                || a.total_work() != b.total_work()
                || a.total_refs() != b.total_refs()
        );
    }

    #[test]
    fn random_computations_are_valid_dags() {
        let p = SynthParams::default();
        for seed in 0..20 {
            let comp = random_computation(seed, &p);
            let dag = Dag::from_computation(&comp);
            dag.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let tree = TaskGroupTree::from_computation(&comp);
            tree.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn depth_zero_gives_single_strand() {
        let p = SynthParams {
            max_depth: 0,
            ..SynthParams::default()
        };
        let comp = random_computation(7, &p);
        assert_eq!(comp.num_tasks(), 1);
    }
}
