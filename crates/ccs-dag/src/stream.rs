//! Precompiled per-line access streams.
//!
//! The simulator engines consume traces one *cache line* at a time: every
//! [`MemRef`](crate::MemRef) is split into the lines it touches, each line
//! address is masked to its line boundary, and the number of lines per
//! reference is recomputed — per access, per cache level, per simulation.
//! Since a sweep simulates the same computation under every scheduler ×
//! core-count point at a fixed line size, all of that arithmetic is
//! invariant across the points.
//!
//! A [`LineStream`] performs the resolution **once per `(computation, line
//! size)` pair**: the pooled ops are expanded into a dense `u32` stream of
//! line-granular steps (line id in the low bits, the write flag in bit 31)
//! plus a parallel `u32` lane of pre-access compute, with one contiguous
//! range per task.  Line ids index a `line_addr` table holding the aligned
//! addresses the cache models need, so the hot loop does three streaming
//! loads and zero divisions.  [`Computation::line_stream`] memoises the
//! compiled stream behind an `Arc`, so every simulation of the same
//! computation at the same line size shares one copy.
//!
//! On top of the stream sits the **geometry-compiled layer**: for the
//! `(L1, L2)` cache-geometry pair a sweep simulates against,
//! [`LineStream::geometry_pair`] compiles — once, memoised per
//! [`CacheGeometry`] pair — a flat packed [`PairedSetLanes`] table mapping
//! every line id to both set indices in one `u64` word
//! ([`GeometryLanes`] is the single-geometry reference form the tests
//! check it against).  Together with the id-as-tag convention (see
//! [`GeometryLanes::tag_of`] and `ccs-cache::line_tag`) this removes the
//! *remaining* address math from the simulator: a probe becomes one lane
//! load plus a shift, and the `line_addr` table drops off the hot path
//! entirely.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex};

use crate::sp::Computation;
use crate::task::TaskId;

/// Multiplicative hasher for line addresses (Fibonacci hashing).  Stream
/// compilation interns one id per line-granular step; the default SipHash
/// costs more than the simulator's own per-access work, which would make
/// compilation — paid once per sweep configuration — eat the win it buys.
/// Line addresses are bump-allocated and line-aligned, so a single
/// multiply mixes them plenty.
#[derive(Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        // 2^64 / phi, the classic Fibonacci-hashing multiplier.
        self.0 = (self.0 ^ value).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Write flag of a packed step (bits 0..31 hold the line id).
pub const STEP_WRITE_BIT: u32 = 1 << 31;
/// Mask of the line-id bits of a packed step.
pub const STEP_ID_MASK: u32 = STEP_WRITE_BIT - 1;

/// Line-address → line-id interner used during stream compilation.
///
/// Workload address spaces come from a bump allocator, so the touched lines
/// are dense within `[min, max]`; when that span is compact the interner is
/// a direct-mapped table indexed by `(line - base) >> log2(line_size)` —
/// first-touch assignment with one indexed load per step, no hashing at
/// all.  Pathologically sparse traces (hand-built addresses) fall back to a
/// hash map with a cheap multiplicative [`LineHasher`].
enum Interner {
    Dense {
        base: u64,
        shift: u32,
        /// Line index → id (`u32::MAX` = not yet interned).
        table: Vec<u32>,
    },
    Sparse(HashMap<u64, u32, BuildHasherDefault<LineHasher>>),
}

/// Unassigned-slot sentinel of the dense interner.
const UNASSIGNED: u32 = u32::MAX;

impl Interner {
    /// Pick dense or sparse interning by scanning the pool's address range.
    fn for_pool(pool: &crate::pool::TracePool, line_size: u64) -> Interner {
        let shift = line_size.trailing_zeros();
        let (mut min, mut max) = (u64::MAX, 0u64);
        for i in 0..pool.len() {
            let mem = pool.mem(i);
            let first = mem.addr & !(line_size - 1);
            let last = (mem.addr + mem.size.max(1) as u64 - 1) & !(line_size - 1);
            min = min.min(first);
            max = max.max(last);
        }
        if pool.is_empty() {
            return Interner::Dense {
                base: 0,
                shift,
                table: Vec::new(),
            };
        }
        let span_lines = ((max - min) >> shift) + 1;
        // The table costs 4 bytes per line in the span; accept it while it
        // stays within a small constant of the per-op lanes (bump-allocated
        // address spaces always do — only hand-scattered addresses don't).
        let budget = (pool.len() as u64 * 8).max(1 << 16);
        if span_lines <= budget {
            Interner::Dense {
                base: min,
                shift,
                table: vec![UNASSIGNED; span_lines as usize],
            }
        } else {
            Interner::Sparse(HashMap::with_capacity_and_hasher(
                pool.len() / 2,
                BuildHasherDefault::default(),
            ))
        }
    }

    /// Id of `line`, assigning the next id (and recording the address in
    /// `line_addr`) on first touch.
    #[inline]
    fn intern(&mut self, line: u64, line_addr: &mut Vec<u64>) -> u32 {
        match self {
            Interner::Dense { base, shift, table } => {
                let slot = &mut table[((line - *base) >> *shift) as usize];
                if *slot == UNASSIGNED {
                    let id = line_addr.len() as u32;
                    assert!(id < STEP_ID_MASK, "line-id space exhausted");
                    line_addr.push(line);
                    *slot = id;
                }
                *slot
            }
            Interner::Sparse(map) => *map.entry(line).or_insert_with(|| {
                let id = line_addr.len() as u32;
                assert!(id < STEP_ID_MASK, "line-id space exhausted");
                line_addr.push(line);
                id
            }),
        }
    }
}

/// The set-indexing geometry of one cache level: everything the compiled
/// lanes depend on.  Two caches with equal line size and set count share
/// one [`GeometryLanes`] table regardless of associativity, capacity or
/// latency — associativity only shapes the *cache's* way arrays, never the
/// id → set mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Cache line size in bytes (power of two; must equal the stream's).
    pub line_size: u64,
    /// Number of sets (need not be a power of two — the modulo is paid at
    /// compile time, once per line, never per probe).
    pub num_sets: u64,
}

impl CacheGeometry {
    /// Construct a geometry key.
    pub fn new(line_size: u64, num_sets: u64) -> CacheGeometry {
        assert!(num_sets > 0, "need at least one set");
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        CacheGeometry {
            line_size,
            num_sets,
        }
    }
}

/// The compiled per-line lanes of one [`CacheGeometry`]: the pure function
/// `(line id, geometry) → (set index, tag)` materialised as a flat table.
/// This is the *reference form* of the derivation — the simulator consumes
/// the packed two-level [`PairedSetLanes`] (memoised via
/// [`LineStream::geometry_pair`]), whose correctness the tests check
/// against this single-geometry compile.
///
/// The *set-index lane* is stored flat (`id → set`); the *tag lane*
/// degenerates to the identity on dense line ids — two distinct lines
/// always have distinct ids, so the id is a collision-free tag in every
/// geometry — and is therefore compiled down to the pure function
/// [`GeometryLanes::tag_of`] (`id << 1`, pre-shifted for the cache's
/// folded dirty bit) rather than materialised as an array the hot loop
/// would have to stream for no information.
#[derive(Debug)]
pub struct GeometryLanes {
    geometry: CacheGeometry,
    /// Line id → set index in this geometry.
    set_index: Vec<u32>,
}

impl GeometryLanes {
    /// Compile the lanes for `geometry` over `stream`'s interned lines.
    ///
    /// # Panics
    /// Panics if the geometry's line size differs from the stream's (set
    /// indices would be meaningless) or if a set index would not fit the
    /// `u32` lane.
    pub fn compile(stream: &LineStream, geometry: CacheGeometry) -> GeometryLanes {
        assert_eq!(
            geometry.line_size,
            stream.line_size(),
            "geometry compiled against a stream of a different line size"
        );
        assert!(
            geometry.num_sets <= u32::MAX as u64 + 1,
            "set index exceeds the u32 lane"
        );
        let shift = geometry.line_size.trailing_zeros();
        let set_index = stream
            .line_addr()
            .iter()
            .map(|&line| ((line >> shift) % geometry.num_sets) as u32)
            .collect();
        GeometryLanes {
            geometry,
            set_index,
        }
    }

    /// The geometry the lanes were compiled for.
    #[inline]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The line-id → set-index lane.
    #[inline]
    pub fn set_index(&self) -> &[u32] {
        &self.set_index
    }

    /// The tag lane, compiled to a pure function: the tag of line id `id`
    /// in any geometry (dense ids are collision-free tags), pre-shifted
    /// one bit for the cache's folded dirty flag.  Mirrors
    /// `ccs-cache::line_tag`.
    #[inline]
    pub const fn tag_of(id: u32) -> u32 {
        id << 1
    }

    /// Heap bytes held by the compiled lanes.
    pub fn heap_bytes(&self) -> u64 {
        (self.set_index.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

/// The packed set-index lanes of one *(L1 geometry, L2 geometry)* pair:
/// per line id, the L1 set index in the low 32 bits and the L2 set index
/// in the high 32 bits of a single `u64` word.
///
/// The simulator probes the L2 only on an L1 miss, and the sweeps this
/// engine exists for are miss-heavy — so the L2 set index must not cost a
/// second indexed load from a cold lane on the miss path.  Packing both
/// levels into one word makes the L1-hit path one 8-byte load (the same
/// bandwidth as the old `line_addr` load it replaces, minus all the
/// shift/mask/modulo math) and makes the L2 set a register shift on a
/// miss.  Measured on the quick sweep, the split-lane variant of this
/// table was ~7% *slower* than the address path; the packed form is what
/// delivers the id-native win.
#[derive(Debug)]
pub struct PairedSetLanes {
    l1: CacheGeometry,
    l2: CacheGeometry,
    /// Line id → `l1_set | (l2_set << 32)`.
    packed: Vec<u64>,
}

impl PairedSetLanes {
    /// Compile the packed lanes for an `(l1, l2)` geometry pair over
    /// `stream`'s interned lines.
    ///
    /// # Panics
    /// Panics if either geometry's line size differs from the stream's.
    pub fn compile(stream: &LineStream, l1: CacheGeometry, l2: CacheGeometry) -> PairedSetLanes {
        for geometry in [l1, l2] {
            assert_eq!(
                geometry.line_size,
                stream.line_size(),
                "geometry compiled against a stream of a different line size"
            );
            assert!(
                geometry.num_sets <= u32::MAX as u64 + 1,
                "set index exceeds the u32 lane"
            );
        }
        let shift = stream.line_size().trailing_zeros();
        let packed = stream
            .line_addr()
            .iter()
            .map(|&line| {
                let line_no = line >> shift;
                (line_no % l1.num_sets) | ((line_no % l2.num_sets) << 32)
            })
            .collect();
        PairedSetLanes { l1, l2, packed }
    }

    /// The L1 geometry of the pair.
    pub fn l1_geometry(&self) -> CacheGeometry {
        self.l1
    }

    /// The L2 geometry of the pair.
    pub fn l2_geometry(&self) -> CacheGeometry {
        self.l2
    }

    /// The packed lane: line id → `l1_set | (l2_set << 32)`.
    #[inline]
    pub fn packed(&self) -> &[u64] {
        &self.packed
    }

    /// The L1 set index of a packed word.
    #[inline]
    pub const fn l1_set(word: u64) -> u32 {
        word as u32
    }

    /// The L2 set index of a packed word.
    #[inline]
    pub const fn l2_set(word: u64) -> u32 {
        (word >> 32) as u32
    }

    /// Heap bytes held by the packed lane.
    pub fn heap_bytes(&self) -> u64 {
        (self.packed.capacity() * std::mem::size_of::<u64>()) as u64
    }
}

/// The packed set-index lanes of an *(L1, L2, L3)* geometry triple: all
/// three set indices of a line id folded into a single `u64` word, with the
/// bit budget re-cut to [`TripleSetLanes::L1_BITS`] + [`TripleSetLanes::L2_BITS`]
/// + [`TripleSetLanes::L3_BITS`] bits.
///
/// This is the three-level form of [`PairedSetLanes`], and the same one-word
/// argument applies (DESIGN.md §12): the L1-hit fast path still costs one
/// 8-byte lane load, an L1 miss gets its L2 set as a register shift, and an
/// L2 miss gets its L3 set from the *same already-loaded word* — the rare
/// deep-miss path never touches a second cold lane.  21 bits per private
/// level cover 2 M sets (the paper's largest L2 uses 16 K), so the narrower
/// fields cost nothing in practice; the compile asserts them.
///
/// The two-level [`PairedSetLanes`] keeps its full 32-bit fields and its own
/// memo ([`LineStream::geometry_pair`]) — machines without an L3 never pay
/// for (or observe) the re-budgeted packing.
#[derive(Debug)]
pub struct TripleSetLanes {
    l1: CacheGeometry,
    l2: CacheGeometry,
    l3: CacheGeometry,
    /// Line id → `l1_set | (l2_set << L1_BITS) | (l3_set << (L1_BITS + L2_BITS))`.
    packed: Vec<u64>,
}

impl TripleSetLanes {
    /// Bits of the L1 set field (low bits of the word).
    pub const L1_BITS: u32 = 21;
    /// Bits of the L2 set field.
    pub const L2_BITS: u32 = 21;
    /// Bits of the L3 set field (high bits of the word).
    pub const L3_BITS: u32 = 64 - Self::L1_BITS - Self::L2_BITS;

    /// Compile the packed lanes for an `(l1, l2, l3)` geometry triple over
    /// `stream`'s interned lines.
    ///
    /// # Panics
    /// Panics if any geometry's line size differs from the stream's, or if
    /// a set count exceeds its bit field.
    pub fn compile(
        stream: &LineStream,
        l1: CacheGeometry,
        l2: CacheGeometry,
        l3: CacheGeometry,
    ) -> TripleSetLanes {
        for (geometry, bits) in [
            (l1, Self::L1_BITS),
            (l2, Self::L2_BITS),
            (l3, Self::L3_BITS),
        ] {
            assert_eq!(
                geometry.line_size,
                stream.line_size(),
                "geometry compiled against a stream of a different line size"
            );
            assert!(
                geometry.num_sets <= 1u64 << bits,
                "set count {} exceeds the {bits}-bit triple-lane field",
                geometry.num_sets
            );
        }
        let shift = stream.line_size().trailing_zeros();
        let packed = stream
            .line_addr()
            .iter()
            .map(|&line| {
                let line_no = line >> shift;
                (line_no % l1.num_sets)
                    | ((line_no % l2.num_sets) << Self::L1_BITS)
                    | ((line_no % l3.num_sets) << (Self::L1_BITS + Self::L2_BITS))
            })
            .collect();
        TripleSetLanes { l1, l2, l3, packed }
    }

    /// The L1 geometry of the triple.
    pub fn l1_geometry(&self) -> CacheGeometry {
        self.l1
    }

    /// The L2 geometry of the triple.
    pub fn l2_geometry(&self) -> CacheGeometry {
        self.l2
    }

    /// The L3 geometry of the triple.
    pub fn l3_geometry(&self) -> CacheGeometry {
        self.l3
    }

    /// The packed lane: line id → all three set indices in one word.
    #[inline]
    pub fn packed(&self) -> &[u64] {
        &self.packed
    }

    /// The L1 set index of a packed word.
    #[inline]
    pub const fn l1_set(word: u64) -> u32 {
        (word & ((1 << Self::L1_BITS) - 1)) as u32
    }

    /// The L2 set index of a packed word.
    #[inline]
    pub const fn l2_set(word: u64) -> u32 {
        ((word >> Self::L1_BITS) & ((1 << Self::L2_BITS) - 1)) as u32
    }

    /// The L3 set index of a packed word.
    #[inline]
    pub const fn l3_set(word: u64) -> u32 {
        (word >> (Self::L1_BITS + Self::L2_BITS)) as u32
    }

    /// Heap bytes held by the packed lane.
    pub fn heap_bytes(&self) -> u64 {
        (self.packed.capacity() * std::mem::size_of::<u64>()) as u64
    }
}

/// The precompiled line-granular access stream of one computation at one
/// cache-line size.  See the module docs for the layout.
#[derive(Debug)]
pub struct LineStream {
    line_size: u64,
    /// One `u64` word per step: the pre-access compute count in the high
    /// 32 bits (the op's `pre_compute` on its first line, 0 on subsequent
    /// straddled lines) over the packed step (line id |
    /// [`STEP_WRITE_BIT`]) in the low 32.  One lane instead of two
    /// parallel `u32` lanes: the simulator reads *both* halves of every
    /// step, so splitting them costs a second streaming load and a second
    /// bounds check per access for nothing.
    packed: Vec<u64>,
    /// Line id → aligned line address.
    line_addr: Vec<u64>,
    /// Per-task step ranges: task `t` owns `packed[starts[t]..starts[t+1]]`.
    starts: Vec<u32>,
    /// Memoised packed `(L1, L2)` pair lanes, one per distinct geometry
    /// pair (typically one per sweep).
    geom_pairs: Mutex<PairCache>,
    /// Memoised packed `(L1, L2, L3)` triple lanes for three-level
    /// hierarchies (empty unless a sweep point carries an L3).
    geom_triples: Mutex<TripleCache>,
    /// Memoised prefix sums of the pre-access compute lane
    /// ([`LineStream::pre_prefix`]): the batched engine's replay cursor.
    pre_prefix: Mutex<Option<Arc<Vec<u64>>>>,
}

/// Memo storage of [`LineStream::geometry_pair`]: a short association list
/// — sweeps see one or two distinct geometry pairs, so a linear scan beats
/// any map.
type PairCache = Vec<((CacheGeometry, CacheGeometry), Arc<PairedSetLanes>)>;

/// Memo storage of [`LineStream::geometry_triple`]; same association-list
/// reasoning as [`PairCache`].
type TripleCache = Vec<(
    (CacheGeometry, CacheGeometry, CacheGeometry),
    Arc<TripleSetLanes>,
)>;

impl LineStream {
    /// Expand `comp`'s pooled trace at `line_size`-byte granularity.
    pub fn compile(comp: &Computation, line_size: u64) -> LineStream {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        let pool = comp.trace_pool();
        let mut packed: Vec<u64> = Vec::with_capacity(pool.len());
        let mut line_addr: Vec<u64> = Vec::new();
        let mut ids = Interner::for_pool(pool, line_size);
        let mut starts: Vec<u32> = Vec::with_capacity(comp.num_tasks() + 1);
        starts.push(0);

        for t in 0..comp.num_tasks() as u32 {
            let view = comp.trace(TaskId(t));
            for op in view.ops() {
                let first = op.mem.addr & !(line_size - 1);
                let last = (op.mem.addr + op.mem.size.max(1) as u64 - 1) & !(line_size - 1);
                let write_bit = if op.mem.kind.is_write() {
                    STEP_WRITE_BIT
                } else {
                    0
                };
                let mut line = first;
                let mut op_pre = op.pre_compute;
                loop {
                    let id = ids.intern(line, &mut line_addr);
                    packed.push(((op_pre as u64) << 32) | (id | write_bit) as u64);
                    op_pre = 0;
                    if line == last {
                        break;
                    }
                    line += line_size;
                }
            }
            assert!(
                packed.len() < u32::MAX as usize,
                "line stream exceeds u32 indexing"
            );
            starts.push(packed.len() as u32);
        }

        packed.shrink_to_fit();
        LineStream {
            line_size,
            packed,
            line_addr,
            starts,
            geom_pairs: Mutex::new(Vec::new()),
            geom_triples: Mutex::new(Vec::new()),
            pre_prefix: Mutex::new(None),
        }
    }

    /// The packed [`PairedSetLanes`] of an `(L1, L2)` geometry pair,
    /// compiled on first use and shared afterwards — the form the
    /// simulator's hot loop consumes (one lane load serves both cache
    /// levels; see the type docs).
    pub fn geometry_pair(&self, l1: CacheGeometry, l2: CacheGeometry) -> Arc<PairedSetLanes> {
        let mut cache = self.geom_pairs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, lanes)) = cache.iter().find(|(pair, _)| *pair == (l1, l2)) {
            return Arc::clone(lanes);
        }
        let lanes = Arc::new(PairedSetLanes::compile(self, l1, l2));
        cache.push(((l1, l2), Arc::clone(&lanes)));
        lanes
    }

    /// The packed [`TripleSetLanes`] of an `(L1, L2, L3)` geometry triple,
    /// compiled on first use and shared afterwards — the three-level
    /// counterpart of [`LineStream::geometry_pair`], consumed by the
    /// simulator when a configuration carries a shared L3.
    pub fn geometry_triple(
        &self,
        l1: CacheGeometry,
        l2: CacheGeometry,
        l3: CacheGeometry,
    ) -> Arc<TripleSetLanes> {
        let mut cache = self.geom_triples.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, lanes)) = cache.iter().find(|(triple, _)| *triple == (l1, l2, l3)) {
            return Arc::clone(lanes);
        }
        let lanes = Arc::new(TripleSetLanes::compile(self, l1, l2, l3));
        cache.push(((l1, l2, l3), Arc::clone(&lanes)));
        lanes
    }

    /// Prefix sums of the pre-access compute lane, compiled on first use
    /// and shared afterwards: `pre_prefix()[i]` is the total pre-access
    /// compute of steps `0..i` (length [`LineStream::num_steps`]` + 1`).
    ///
    /// This is the batched engine's **replay cursor**: the compute cycles a
    /// single-core run spends between two recorded misses at steps `a < b`
    /// are `prefix[b] - prefix[a]` — one subtraction instead of re-walking
    /// the packed lane per configuration of a latency sweep.
    pub fn pre_prefix(&self) -> Arc<Vec<u64>> {
        let mut slot = self.pre_prefix.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(prefix) = slot.as_ref() {
            return Arc::clone(prefix);
        }
        let mut prefix = Vec::with_capacity(self.packed.len() + 1);
        let mut sum = 0u64;
        prefix.push(0);
        for &word in &self.packed {
            sum += Self::pre_of(word) as u64;
            prefix.push(sum);
        }
        let prefix = Arc::new(prefix);
        *slot = Some(Arc::clone(&prefix));
        prefix
    }

    /// Number of distinct `(L1, L2)` geometry pairs compiled against this
    /// stream so far (diagnostics/tests).
    pub fn compiled_geometry_pairs(&self) -> usize {
        self.geom_pairs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Number of distinct `(L1, L2, L3)` geometry triples compiled against
    /// this stream so far (diagnostics/tests).
    pub fn compiled_geometry_triples(&self) -> usize {
        self.geom_triples
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// The cache-line size the stream was compiled for.
    #[inline]
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// The packed step lane: per step, `pre_compute` in the high 32 bits
    /// over `line id | STEP_WRITE_BIT` in the low 32 (split them with
    /// [`LineStream::pre_of`] / [`LineStream::step_of`]).
    #[inline]
    pub fn packed(&self) -> &[u64] {
        &self.packed
    }

    /// The pre-access compute count of a packed step word.
    #[inline]
    pub const fn pre_of(word: u64) -> u32 {
        (word >> 32) as u32
    }

    /// The `line id | STEP_WRITE_BIT` half of a packed step word.
    #[inline]
    pub const fn step_of(word: u64) -> u32 {
        word as u32
    }

    /// The line-id → aligned-address table.
    #[inline]
    pub fn line_addr(&self) -> &[u64] {
        &self.line_addr
    }

    /// The step range of one task.
    #[inline]
    pub fn range(&self, t: TaskId) -> (usize, usize) {
        (
            self.starts[t.index()] as usize,
            self.starts[t.index() + 1] as usize,
        )
    }

    /// Total line-granular steps in the stream.
    pub fn num_steps(&self) -> usize {
        self.packed.len()
    }

    /// Number of distinct cache lines the computation touches.
    pub fn num_lines(&self) -> usize {
        self.line_addr.len()
    }

    /// Heap bytes held by the compiled stream.
    ///
    /// Deliberately *excludes* the lazily memoised [`pre_prefix`] lane:
    /// this figure feeds the deterministic `peak_alloc_estimate` record
    /// field, which must not depend on whether a batched run compiled the
    /// replay cursor on a shared stream first.
    ///
    /// [`pre_prefix`]: LineStream::pre_prefix
    pub fn heap_bytes(&self) -> u64 {
        (self.packed.capacity() * std::mem::size_of::<u64>()
            + self.line_addr.capacity() * std::mem::size_of::<u64>()
            + self.starts.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

impl Computation {
    /// The precompiled line stream of this computation at `line_size`,
    /// compiled on first use and shared (one per line size) afterwards.
    ///
    /// Simulations of the same computation at the same line size — every
    /// scheduler × core-count point of a sweep — reuse the same stream, so
    /// address-to-line resolution happens once per sweep configuration.
    pub fn line_stream(&self, line_size: u64) -> Arc<LineStream> {
        let mut cache = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, stream)) = cache.iter().find(|(ls, _)| *ls == line_size) {
            return Arc::clone(stream);
        }
        let stream = Arc::new(LineStream::compile(self, line_size));
        cache.push((line_size, Arc::clone(&stream)));
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp::{ComputationBuilder, GroupMeta};

    fn sample() -> Computation {
        let mut b = ComputationBuilder::new(128);
        let a = b.strand_with(|t| {
            t.compute(5).read(0x1000, 4).write(0x1040, 4); // same line twice
        });
        let c = b.strand_with(|t| {
            t.read(0x10F8, 16); // straddles 0x1080 and 0x1100
        });
        let root = b.seq(vec![a, c], GroupMeta::default());
        b.finish(root)
    }

    #[test]
    fn expansion_matches_per_op_line_iteration() {
        let comp = sample();
        let stream = LineStream::compile(&comp, 128);
        // Replay via MemRef::lines and compare.
        let mut expect: Vec<(u32, u64, bool)> = Vec::new();
        for t in 0..comp.num_tasks() as u32 {
            for op in comp.trace(TaskId(t)).ops() {
                let mut pre = op.pre_compute;
                for line in op.mem.lines(128) {
                    expect.push((pre, line, op.mem.kind.is_write()));
                    pre = 0;
                }
            }
        }
        let got: Vec<(u32, u64, bool)> = (0..stream.num_steps())
            .map(|i| {
                let w = stream.packed()[i];
                let s = LineStream::step_of(w);
                (
                    LineStream::pre_of(w),
                    stream.line_addr()[(s & STEP_ID_MASK) as usize],
                    s & STEP_WRITE_BIT != 0,
                )
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn ranges_partition_the_stream() {
        let comp = sample();
        let stream = LineStream::compile(&comp, 128);
        let (s0, e0) = stream.range(TaskId(0));
        let (s1, e1) = stream.range(TaskId(1));
        assert_eq!((s0, e0), (0, 2));
        assert_eq!((s1, e1), (2, 4), "straddling ref expands to two steps");
        assert_eq!(e1, stream.num_steps());
        // Lines 0x1000 (shared by both refs of task 0), 0x1080, 0x1100.
        assert_eq!(stream.num_lines(), 3);
        assert!(stream.heap_bytes() > 0);
    }

    #[test]
    fn geometry_lanes_match_address_math() {
        let comp = sample();
        let stream = LineStream::compile(&comp, 128);
        // A power-of-two and a non-power-of-two set count.
        for num_sets in [8u64, 6] {
            let lanes = GeometryLanes::compile(&stream, CacheGeometry::new(128, num_sets));
            assert_eq!(lanes.set_index().len(), stream.num_lines());
            for (id, &line) in stream.line_addr().iter().enumerate() {
                assert_eq!(
                    lanes.set_index()[id] as u64,
                    (line / 128) % num_sets,
                    "set of line {line:#x} at {num_sets} sets"
                );
                assert_eq!(GeometryLanes::tag_of(id as u32), (id as u32) << 1);
            }
            assert_eq!(lanes.geometry().num_sets, num_sets);
            assert!(lanes.heap_bytes() >= stream.num_lines() as u64 * 4);
        }
    }

    #[test]
    fn geometry_pairs_are_memoised_and_match_split_lanes() {
        let comp = sample();
        let stream = comp.line_stream(128);
        assert_eq!(stream.compiled_geometry_pairs(), 0);
        let l1 = CacheGeometry::new(128, 8);
        let l2 = CacheGeometry::new(128, 32);
        let pair = stream.geometry_pair(l1, l2);
        let again = stream.geometry_pair(l1, l2);
        assert!(Arc::ptr_eq(&pair, &again), "same pair shares one table");
        assert!(!Arc::ptr_eq(&pair, &stream.geometry_pair(l2, l1)));
        assert_eq!(stream.compiled_geometry_pairs(), 2);
        // The packed words agree with the single-geometry reference form.
        let l1_ref = GeometryLanes::compile(&stream, l1);
        let l2_ref = GeometryLanes::compile(&stream, l2);
        for (id, &word) in pair.packed().iter().enumerate() {
            assert_eq!(PairedSetLanes::l1_set(word), l1_ref.set_index()[id]);
            assert_eq!(PairedSetLanes::l2_set(word), l2_ref.set_index()[id]);
        }
    }

    #[test]
    fn geometry_triples_are_memoised_and_match_split_lanes() {
        let comp = sample();
        let stream = comp.line_stream(128);
        assert_eq!(stream.compiled_geometry_triples(), 0);
        let l1 = CacheGeometry::new(128, 8);
        let l2 = CacheGeometry::new(128, 32);
        let l3 = CacheGeometry::new(128, 96); // non-power-of-two set count
        let triple = stream.geometry_triple(l1, l2, l3);
        let again = stream.geometry_triple(l1, l2, l3);
        assert!(Arc::ptr_eq(&triple, &again), "same triple shares one table");
        assert_eq!(stream.compiled_geometry_triples(), 1);
        assert_eq!(
            stream.compiled_geometry_pairs(),
            0,
            "triples do not populate the pair memo"
        );
        // Each field of the packed word agrees with the single-geometry
        // reference compile.
        for (geometry, field) in [
            (l1, TripleSetLanes::l1_set as fn(u64) -> u32),
            (l2, TripleSetLanes::l2_set),
            (l3, TripleSetLanes::l3_set),
        ] {
            let lanes = GeometryLanes::compile(&stream, geometry);
            for (id, &word) in triple.packed().iter().enumerate() {
                assert_eq!(
                    field(word),
                    lanes.set_index()[id],
                    "line id {id} at {} sets",
                    geometry.num_sets
                );
            }
        }
        assert!(triple.heap_bytes() >= stream.num_lines() as u64 * 8);
        assert_eq!(triple.l1_geometry(), l1);
        assert_eq!(triple.l2_geometry(), l2);
        assert_eq!(triple.l3_geometry(), l3);
    }

    #[test]
    #[should_panic(expected = "triple-lane field")]
    fn triple_lane_rejects_oversized_set_counts() {
        let comp = sample();
        let stream = LineStream::compile(&comp, 128);
        let huge = CacheGeometry::new(128, 1 << 22); // > 21-bit L1 field
        let small = CacheGeometry::new(128, 8);
        let _ = TripleSetLanes::compile(&stream, huge, small, small);
    }

    #[test]
    #[should_panic(expected = "different line size")]
    fn geometry_line_size_must_match_stream() {
        let comp = sample();
        let stream = LineStream::compile(&comp, 128);
        let _ = GeometryLanes::compile(&stream, CacheGeometry::new(64, 8));
    }

    #[test]
    fn line_stream_is_cached_per_line_size() {
        let comp = sample();
        let a = comp.line_stream(128);
        let b = comp.line_stream(128);
        assert!(Arc::ptr_eq(&a, &b), "same line size shares one stream");
        let c = comp.line_stream(64);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.line_size(), 64);
        // A clone starts with an empty cache but compiles an equal stream.
        let clone = comp.clone();
        let d = clone.line_stream(128);
        assert_eq!(d.num_steps(), a.num_steps());
        assert_eq!(d.line_addr(), a.line_addr());
    }
}
