//! Precompiled per-line access streams.
//!
//! The simulator engines consume traces one *cache line* at a time: every
//! [`MemRef`](crate::MemRef) is split into the lines it touches, each line
//! address is masked to its line boundary, and the number of lines per
//! reference is recomputed — per access, per cache level, per simulation.
//! Since a sweep simulates the same computation under every scheduler ×
//! core-count point at a fixed line size, all of that arithmetic is
//! invariant across the points.
//!
//! A [`LineStream`] performs the resolution **once per `(computation, line
//! size)` pair**: the pooled ops are expanded into a dense `u32` stream of
//! line-granular steps (line id in the low bits, the write flag in bit 31)
//! plus a parallel `u32` lane of pre-access compute, with one contiguous
//! range per task.  Line ids index a `line_addr` table holding the aligned
//! addresses the cache models need, so the hot loop does three streaming
//! loads and zero divisions.  [`Computation::line_stream`] memoises the
//! compiled stream behind an `Arc`, so every simulation of the same
//! computation at the same line size shares one copy.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::sp::Computation;
use crate::task::TaskId;

/// Multiplicative hasher for line addresses (Fibonacci hashing).  Stream
/// compilation interns one id per line-granular step; the default SipHash
/// costs more than the simulator's own per-access work, which would make
/// compilation — paid once per sweep configuration — eat the win it buys.
/// Line addresses are bump-allocated and line-aligned, so a single
/// multiply mixes them plenty.
#[derive(Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        // 2^64 / phi, the classic Fibonacci-hashing multiplier.
        self.0 = (self.0 ^ value).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Write flag of a packed step (bits 0..31 hold the line id).
pub const STEP_WRITE_BIT: u32 = 1 << 31;
/// Mask of the line-id bits of a packed step.
pub const STEP_ID_MASK: u32 = STEP_WRITE_BIT - 1;

/// Line-address → line-id interner used during stream compilation.
///
/// Workload address spaces come from a bump allocator, so the touched lines
/// are dense within `[min, max]`; when that span is compact the interner is
/// a direct-mapped table indexed by `(line - base) >> log2(line_size)` —
/// first-touch assignment with one indexed load per step, no hashing at
/// all.  Pathologically sparse traces (hand-built addresses) fall back to a
/// hash map with a cheap multiplicative [`LineHasher`].
enum Interner {
    Dense {
        base: u64,
        shift: u32,
        /// Line index → id (`u32::MAX` = not yet interned).
        table: Vec<u32>,
    },
    Sparse(HashMap<u64, u32, BuildHasherDefault<LineHasher>>),
}

/// Unassigned-slot sentinel of the dense interner.
const UNASSIGNED: u32 = u32::MAX;

impl Interner {
    /// Pick dense or sparse interning by scanning the pool's address range.
    fn for_pool(pool: &crate::pool::TracePool, line_size: u64) -> Interner {
        let shift = line_size.trailing_zeros();
        let (mut min, mut max) = (u64::MAX, 0u64);
        for i in 0..pool.len() {
            let mem = pool.mem(i);
            let first = mem.addr & !(line_size - 1);
            let last = (mem.addr + mem.size.max(1) as u64 - 1) & !(line_size - 1);
            min = min.min(first);
            max = max.max(last);
        }
        if pool.is_empty() {
            return Interner::Dense {
                base: 0,
                shift,
                table: Vec::new(),
            };
        }
        let span_lines = ((max - min) >> shift) + 1;
        // The table costs 4 bytes per line in the span; accept it while it
        // stays within a small constant of the per-op lanes (bump-allocated
        // address spaces always do — only hand-scattered addresses don't).
        let budget = (pool.len() as u64 * 8).max(1 << 16);
        if span_lines <= budget {
            Interner::Dense {
                base: min,
                shift,
                table: vec![UNASSIGNED; span_lines as usize],
            }
        } else {
            Interner::Sparse(HashMap::with_capacity_and_hasher(
                pool.len() / 2,
                BuildHasherDefault::default(),
            ))
        }
    }

    /// Id of `line`, assigning the next id (and recording the address in
    /// `line_addr`) on first touch.
    #[inline]
    fn intern(&mut self, line: u64, line_addr: &mut Vec<u64>) -> u32 {
        match self {
            Interner::Dense { base, shift, table } => {
                let slot = &mut table[((line - *base) >> *shift) as usize];
                if *slot == UNASSIGNED {
                    let id = line_addr.len() as u32;
                    assert!(id < STEP_ID_MASK, "line-id space exhausted");
                    line_addr.push(line);
                    *slot = id;
                }
                *slot
            }
            Interner::Sparse(map) => *map.entry(line).or_insert_with(|| {
                let id = line_addr.len() as u32;
                assert!(id < STEP_ID_MASK, "line-id space exhausted");
                line_addr.push(line);
                id
            }),
        }
    }
}

/// The precompiled line-granular access stream of one computation at one
/// cache-line size.  See the module docs for the layout.
#[derive(Debug)]
pub struct LineStream {
    line_size: u64,
    /// Compute instructions charged before step `i`'s cache probe (the op's
    /// `pre_compute` on its first line, 0 on subsequent straddled lines).
    pre: Vec<u32>,
    /// Packed steps: line id | [`STEP_WRITE_BIT`].
    steps: Vec<u32>,
    /// Line id → aligned line address.
    line_addr: Vec<u64>,
    /// Per-task step ranges: task `t` owns `steps[starts[t]..starts[t+1]]`.
    starts: Vec<u32>,
}

impl LineStream {
    /// Expand `comp`'s pooled trace at `line_size`-byte granularity.
    pub fn compile(comp: &Computation, line_size: u64) -> LineStream {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        let pool = comp.trace_pool();
        let mut pre: Vec<u32> = Vec::with_capacity(pool.len());
        let mut steps: Vec<u32> = Vec::with_capacity(pool.len());
        let mut line_addr: Vec<u64> = Vec::new();
        let mut ids = Interner::for_pool(pool, line_size);
        let mut starts: Vec<u32> = Vec::with_capacity(comp.num_tasks() + 1);
        starts.push(0);

        for t in 0..comp.num_tasks() as u32 {
            let view = comp.trace(TaskId(t));
            for op in view.ops() {
                let first = op.mem.addr & !(line_size - 1);
                let last = (op.mem.addr + op.mem.size.max(1) as u64 - 1) & !(line_size - 1);
                let write_bit = if op.mem.kind.is_write() {
                    STEP_WRITE_BIT
                } else {
                    0
                };
                let mut line = first;
                let mut op_pre = op.pre_compute;
                loop {
                    let id = ids.intern(line, &mut line_addr);
                    pre.push(op_pre);
                    steps.push(id | write_bit);
                    op_pre = 0;
                    if line == last {
                        break;
                    }
                    line += line_size;
                }
            }
            assert!(
                steps.len() < u32::MAX as usize,
                "line stream exceeds u32 indexing"
            );
            starts.push(steps.len() as u32);
        }

        pre.shrink_to_fit();
        steps.shrink_to_fit();
        LineStream {
            line_size,
            pre,
            steps,
            line_addr,
            starts,
        }
    }

    /// The cache-line size the stream was compiled for.
    #[inline]
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// The pre-access compute lane.
    #[inline]
    pub fn pre(&self) -> &[u32] {
        &self.pre
    }

    /// The packed step lane.
    #[inline]
    pub fn steps(&self) -> &[u32] {
        &self.steps
    }

    /// The line-id → aligned-address table.
    #[inline]
    pub fn line_addr(&self) -> &[u64] {
        &self.line_addr
    }

    /// The step range of one task.
    #[inline]
    pub fn range(&self, t: TaskId) -> (usize, usize) {
        (
            self.starts[t.index()] as usize,
            self.starts[t.index() + 1] as usize,
        )
    }

    /// Total line-granular steps in the stream.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of distinct cache lines the computation touches.
    pub fn num_lines(&self) -> usize {
        self.line_addr.len()
    }

    /// Heap bytes held by the compiled stream.
    pub fn heap_bytes(&self) -> u64 {
        (self.pre.capacity() * std::mem::size_of::<u32>()
            + self.steps.capacity() * std::mem::size_of::<u32>()
            + self.line_addr.capacity() * std::mem::size_of::<u64>()
            + self.starts.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

impl Computation {
    /// The precompiled line stream of this computation at `line_size`,
    /// compiled on first use and shared (one per line size) afterwards.
    ///
    /// Simulations of the same computation at the same line size — every
    /// scheduler × core-count point of a sweep — reuse the same stream, so
    /// address-to-line resolution happens once per sweep configuration.
    pub fn line_stream(&self, line_size: u64) -> Arc<LineStream> {
        let mut cache = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, stream)) = cache.iter().find(|(ls, _)| *ls == line_size) {
            return Arc::clone(stream);
        }
        let stream = Arc::new(LineStream::compile(self, line_size));
        cache.push((line_size, Arc::clone(&stream)));
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp::{ComputationBuilder, GroupMeta};

    fn sample() -> Computation {
        let mut b = ComputationBuilder::new(128);
        let a = b.strand_with(|t| {
            t.compute(5).read(0x1000, 4).write(0x1040, 4); // same line twice
        });
        let c = b.strand_with(|t| {
            t.read(0x10F8, 16); // straddles 0x1080 and 0x1100
        });
        let root = b.seq(vec![a, c], GroupMeta::default());
        b.finish(root)
    }

    #[test]
    fn expansion_matches_per_op_line_iteration() {
        let comp = sample();
        let stream = LineStream::compile(&comp, 128);
        // Replay via MemRef::lines and compare.
        let mut expect: Vec<(u32, u64, bool)> = Vec::new();
        for t in 0..comp.num_tasks() as u32 {
            for op in comp.trace(TaskId(t)).ops() {
                let mut pre = op.pre_compute;
                for line in op.mem.lines(128) {
                    expect.push((pre, line, op.mem.kind.is_write()));
                    pre = 0;
                }
            }
        }
        let got: Vec<(u32, u64, bool)> = (0..stream.num_steps())
            .map(|i| {
                let s = stream.steps()[i];
                (
                    stream.pre()[i],
                    stream.line_addr()[(s & STEP_ID_MASK) as usize],
                    s & STEP_WRITE_BIT != 0,
                )
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn ranges_partition_the_stream() {
        let comp = sample();
        let stream = LineStream::compile(&comp, 128);
        let (s0, e0) = stream.range(TaskId(0));
        let (s1, e1) = stream.range(TaskId(1));
        assert_eq!((s0, e0), (0, 2));
        assert_eq!((s1, e1), (2, 4), "straddling ref expands to two steps");
        assert_eq!(e1, stream.num_steps());
        // Lines 0x1000 (shared by both refs of task 0), 0x1080, 0x1100.
        assert_eq!(stream.num_lines(), 3);
        assert!(stream.heap_bytes() > 0);
    }

    #[test]
    fn line_stream_is_cached_per_line_size() {
        let comp = sample();
        let a = comp.line_stream(128);
        let b = comp.line_stream(128);
        assert!(Arc::ptr_eq(&a, &b), "same line size shares one stream");
        let c = comp.line_stream(64);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.line_size(), 64);
        // A clone starts with an empty cache but compiles an equal stream.
        let clone = comp.clone();
        let d = clone.line_stream(128);
        assert_eq!(d.num_steps(), a.num_steps());
        assert_eq!(d.line_addr(), a.line_addr());
    }
}
