//! Hierarchical task groups (Section 6.1).
//!
//! A *task group* is a group of tasks that are consecutive in the sequential
//! (1DF) execution of the program — a sub-graph of the DAG corresponding to a
//! subtree of the SP tree.  Task groups form a hierarchy: each parent group is
//! a superset of its child groups, sibling groups are disjoint, and the leaves
//! are individual tasks.  The working-set profiler computes working-set sizes
//! for task groups, and the automatic task-coarsening algorithm walks this
//! tree top-down to decide where to stop parallelizing.

use crate::sp::{Computation, GroupMeta, SpKind, SpNodeId};
use crate::task::TaskId;

/// Identifier of a group in a [`TaskGroupTree`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Index into the group arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Structural kind of a group, mirroring the SP node it was derived from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroupKind {
    /// A single task.
    Leaf(TaskId),
    /// Children are executed one after another (dependent).
    Seq,
    /// Children may execute concurrently (independent siblings).
    Par,
}

/// A node of the task-group hierarchy.
#[derive(Clone, Debug)]
pub struct TaskGroup {
    /// The SP node this group was derived from.
    pub sp_node: SpNodeId,
    /// Parent group (`None` for the root).
    pub parent: Option<GroupId>,
    /// Child groups in sequential order.
    pub children: Vec<GroupId>,
    /// Structural kind.
    pub kind: GroupKind,
    /// First sequential rank covered by this group (inclusive).
    pub first_rank: u32,
    /// One past the last sequential rank covered by this group.
    pub end_rank: u32,
    /// Group metadata (call site, parallelization parameter, label).
    pub meta: GroupMeta,
}

impl TaskGroup {
    /// Number of tasks contained in the group.
    #[inline]
    pub fn num_tasks(&self) -> u32 {
        self.end_rank - self.first_rank
    }

    /// Whether the group is a single task.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, GroupKind::Leaf(_))
    }

    /// The range of sequential ranks `[first, end)` covered by the group.
    #[inline]
    pub fn rank_range(&self) -> std::ops::Range<u32> {
        self.first_rank..self.end_rank
    }
}

/// The hierarchical task-group tree of a computation.
#[derive(Clone, Debug)]
pub struct TaskGroupTree {
    groups: Vec<TaskGroup>,
    root: GroupId,
    /// Tasks in 1DF sequential order, so rank ranges map back to task ids.
    seq_tasks: Vec<TaskId>,
}

impl TaskGroupTree {
    /// Build the task-group tree of `comp`.  Every SP node becomes a group;
    /// rank ranges follow the 1DF leaf order.
    pub fn from_computation(comp: &Computation) -> TaskGroupTree {
        let seq_tasks = comp.sequential_order();
        let num_nodes = comp.nodes().len();

        // First pass (bottom-up over the arena — children precede parents):
        // compute the number of leaves under each SP node.
        let mut leaf_count = vec![0u32; num_nodes];
        for idx in 0..num_nodes {
            let node = &comp.nodes()[idx];
            leaf_count[idx] = match node.kind {
                SpKind::Strand(_) => 1,
                _ => node.children.iter().map(|c| leaf_count[c.index()]).sum(),
            };
        }

        // Second pass (top-down DFS from the root): assign rank ranges and
        // build the group arena in DFS pre-order.
        let mut groups: Vec<TaskGroup> = Vec::with_capacity(num_nodes);
        // stack entries: (sp node, parent group, first rank)
        let mut stack: Vec<(SpNodeId, Option<GroupId>, u32)> = vec![(comp.root(), None, 0)];
        while let Some((sp_id, parent, first_rank)) = stack.pop() {
            let node = comp.node(sp_id);
            let gid = GroupId(groups.len() as u32);
            let kind = match node.kind {
                SpKind::Strand(t) => GroupKind::Leaf(t),
                SpKind::Seq => GroupKind::Seq,
                SpKind::Par => GroupKind::Par,
            };
            groups.push(TaskGroup {
                sp_node: sp_id,
                parent,
                children: Vec::new(),
                kind,
                first_rank,
                end_rank: first_rank + leaf_count[sp_id.index()],
                meta: node.meta.clone(),
            });
            if let Some(p) = parent {
                groups[p.index()].children.push(gid);
            }
            // Push children in reverse so they pop (and get ids) left-to-right.
            let mut rank = first_rank;
            let child_ranks: Vec<(SpNodeId, u32)> = node
                .children
                .iter()
                .map(|&c| {
                    let r = rank;
                    rank += leaf_count[c.index()];
                    (c, r)
                })
                .collect();
            for &(c, r) in child_ranks.iter().rev() {
                stack.push((c, Some(gid), r));
            }
        }

        TaskGroupTree {
            groups,
            root: GroupId(0),
            seq_tasks,
        }
    }

    /// The root group (covers every task).
    pub fn root(&self) -> GroupId {
        self.root
    }

    /// Number of groups (equals the number of SP nodes).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Access a group.
    pub fn group(&self, id: GroupId) -> &TaskGroup {
        &self.groups[id.index()]
    }

    /// All groups in DFS pre-order (parents before children).
    pub fn groups(&self) -> &[TaskGroup] {
        &self.groups
    }

    /// Tasks in 1DF sequential order.
    pub fn seq_tasks(&self) -> &[TaskId] {
        &self.seq_tasks
    }

    /// The tasks contained in a group, in sequential order.
    pub fn tasks_in(&self, id: GroupId) -> &[TaskId] {
        let g = self.group(id);
        &self.seq_tasks[g.first_rank as usize..g.end_rank as usize]
    }

    /// Iterate over `(GroupId, &TaskGroup)` in DFS pre-order.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, &TaskGroup)> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| (GroupId(i as u32), g))
    }

    /// Partition the children of `id` into *independent sets*: maximal runs of
    /// children that may execute concurrently.  For a `Par` group all children
    /// form a single set; for a `Seq` group every child is its own set (its
    /// children are mutually dependent).  Leaves have no children.
    ///
    /// The automatic coarsening criterion of Section 6.2 is applied to each
    /// independent set separately.
    pub fn independent_child_sets(&self, id: GroupId) -> Vec<Vec<GroupId>> {
        let g = self.group(id);
        match g.kind {
            GroupKind::Leaf(_) => Vec::new(),
            GroupKind::Par => {
                if g.children.is_empty() {
                    Vec::new()
                } else {
                    vec![g.children.clone()]
                }
            }
            GroupKind::Seq => g.children.iter().map(|&c| vec![c]).collect(),
        }
    }

    /// Depth of the group tree.
    pub fn height(&self) -> usize {
        // Groups are stored in pre-order, so children follow parents; compute
        // heights with a reverse pass.
        let mut h = vec![1usize; self.groups.len()];
        for i in (0..self.groups.len()).rev() {
            if !self.groups[i].children.is_empty() {
                h[i] = 1 + self.groups[i]
                    .children
                    .iter()
                    .map(|c| h[c.index()])
                    .max()
                    .unwrap();
            }
        }
        h[self.root.index()]
    }

    /// Validate structural invariants (used in tests): parents cover the
    /// union of their children, siblings are disjoint and ordered, leaves
    /// cover exactly one task.
    pub fn validate(&self) -> Result<(), String> {
        for (i, g) in self.groups.iter().enumerate() {
            if g.first_rank > g.end_rank {
                return Err(format!("group {i} has inverted rank range"));
            }
            match g.kind {
                GroupKind::Leaf(_) => {
                    if g.num_tasks() != 1 {
                        return Err(format!("leaf group {i} covers {} tasks", g.num_tasks()));
                    }
                    if !g.children.is_empty() {
                        return Err(format!("leaf group {i} has children"));
                    }
                }
                _ => {
                    if g.children.is_empty() {
                        return Err(format!("internal group {i} has no children"));
                    }
                    let mut expected = g.first_rank;
                    for &c in &g.children {
                        let cg = self.group(c);
                        if cg.parent != Some(GroupId(i as u32)) {
                            return Err(format!("child {c:?} of group {i} has wrong parent"));
                        }
                        if cg.first_rank != expected {
                            return Err(format!(
                                "children of group {i} are not contiguous at {c:?}"
                            ));
                        }
                        expected = cg.end_rank;
                    }
                    if expected != g.end_rank {
                        return Err(format!("children of group {i} do not cover the parent"));
                    }
                }
            }
        }
        let root = self.group(self.root);
        if root.first_rank != 0 || root.end_rank as usize != self.seq_tasks.len() {
            return Err("root group does not cover all tasks".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp::{ComputationBuilder, GroupMeta};
    use crate::task::TaskTrace;

    fn mergesort_like(depth: u32) -> Computation {
        fn build(b: &mut ComputationBuilder, depth: u32, size: u64) -> SpNodeId {
            if depth == 0 {
                return b.strand_meta(
                    TaskTrace::compute_only(size),
                    GroupMeta::with_param("base", size),
                );
            }
            let l = build(b, depth - 1, size / 2);
            let r = build(b, depth - 1, size / 2);
            let halves = b.par(vec![l, r], GroupMeta::with_param("halves", size));
            let merge = b.strand_meta(
                TaskTrace::compute_only(size),
                GroupMeta::with_param("merge", size),
            );
            b.seq(vec![halves, merge], GroupMeta::with_param("sort", size))
        }
        let mut b = ComputationBuilder::new(128);
        let root = build(&mut b, depth, 1 << 20);
        b.finish(root)
    }

    #[test]
    fn group_tree_covers_all_tasks() {
        let comp = mergesort_like(4);
        let tree = TaskGroupTree::from_computation(&comp);
        assert!(tree.validate().is_ok());
        let root = tree.group(tree.root());
        assert_eq!(root.num_tasks() as usize, comp.num_tasks());
        assert_eq!(tree.num_groups(), comp.nodes().len());
    }

    #[test]
    fn leaf_groups_map_to_tasks() {
        let comp = mergesort_like(2);
        let tree = TaskGroupTree::from_computation(&comp);
        for (id, g) in tree.iter() {
            if let GroupKind::Leaf(t) = g.kind {
                assert_eq!(tree.tasks_in(id), &[t]);
            }
        }
    }

    #[test]
    fn sibling_groups_are_contiguous_and_disjoint() {
        let comp = mergesort_like(3);
        let tree = TaskGroupTree::from_computation(&comp);
        for (_, g) in tree.iter() {
            for w in g.children.windows(2) {
                let a = tree.group(w[0]);
                let b = tree.group(w[1]);
                assert_eq!(a.end_rank, b.first_rank);
            }
        }
    }

    #[test]
    fn independent_sets_par_vs_seq() {
        let comp = mergesort_like(1);
        let tree = TaskGroupTree::from_computation(&comp);
        // Root is seq(par(leaf, leaf), merge leaf)
        let root_sets = tree.independent_child_sets(tree.root());
        assert_eq!(root_sets.len(), 2, "seq children are separate sets");
        assert_eq!(root_sets[0].len(), 1);
        // The par child's set has both halves together.
        let par_group = root_sets[0][0];
        let par_sets = tree.independent_child_sets(par_group);
        assert_eq!(par_sets.len(), 1);
        assert_eq!(par_sets[0].len(), 2);
        // Leaves have no sets.
        let leaf = par_sets[0][0];
        assert!(tree.independent_child_sets(leaf).is_empty());
    }

    #[test]
    fn height_matches_sp_height() {
        let comp = mergesort_like(5);
        let tree = TaskGroupTree::from_computation(&comp);
        assert_eq!(tree.height(), comp.sp_height());
    }

    #[test]
    fn group_meta_preserved() {
        let comp = mergesort_like(2);
        let tree = TaskGroupTree::from_computation(&comp);
        let root = tree.group(tree.root());
        assert_eq!(root.meta.label, "sort");
        assert_eq!(root.meta.param, 1 << 20);
    }

    #[test]
    fn preorder_parent_before_children() {
        let comp = mergesort_like(3);
        let tree = TaskGroupTree::from_computation(&comp);
        for (id, g) in tree.iter() {
            if let Some(p) = g.parent {
                assert!(p < id, "parents must precede children in pre-order");
            }
        }
    }
}
