//! Computation DAG, task, trace and task-group model for the CCS
//! (constructive cache sharing) reproduction of Chen et al., *"Scheduling
//! Threads for Constructive Cache Sharing on CMPs"*, SPAA 2007.
//!
//! The paper models fine-grained multithreaded programs as computation DAGs
//! whose nodes are *tasks* (threads or thread portions with no internal
//! dependences), each carrying an instruction weight and — for trace-driven
//! simulation — a memory-reference trace.  This crate provides:
//!
//! * [`Task`], [`MemRef`], [`TaskTrace`], [`TraceBuilder`] — the per-task
//!   model (module [`task`]);
//! * [`TracePool`] / [`TraceView`] — the flat structure-of-arrays trace
//!   arena every computation stores its ops in (module [`pool`]);
//! * [`LineStream`] — precompiled line-granular access streams, one per
//!   `(computation, line size)`, consumed by the simulator's event engine,
//!   plus the [`CacheGeometry`]-keyed [`GeometryLanes`] mapping line ids
//!   straight to cache-set indices (module [`stream`]);
//! * [`Computation`] and [`ComputationBuilder`] — fork-join programs as
//!   series-parallel trees (module [`sp`]);
//! * [`Dag`] — the flattened dependency DAG with 1DF (sequential depth-first)
//!   ordering, work/depth analysis and validation (module [`dag`]);
//! * [`TaskGroupTree`] — the hierarchical task groups of Section 6 used by the
//!   working-set profiler and automatic task coarsening (module [`group`]);
//! * [`AddressSpace`] — a synthetic virtual address space for workload trace
//!   generation (module [`addr`]);
//! * [`synth`] — seeded random computations for property tests.
//!
//! # Example
//!
//! ```
//! use ccs_dag::{ComputationBuilder, Dag, GroupMeta, TaskGroupTree};
//!
//! // A two-way fork-join: two strands stream over disjoint arrays, then a
//! // third strand combines them.
//! let mut b = ComputationBuilder::new(128);
//! let left = b.strand_with(|t| { t.read_range(0x10000, 8192, 2); });
//! let right = b.strand_with(|t| { t.read_range(0x20000, 8192, 2); });
//! let halves = b.par(vec![left, right], GroupMeta::labeled("halves"));
//! let combine = b.strand_with(|t| { t.compute(100); });
//! let root = b.seq(vec![halves, combine], GroupMeta::labeled("root"));
//! let comp = b.finish(root);
//!
//! let dag = Dag::from_computation(&comp);
//! assert_eq!(dag.num_tasks(), 3);
//! assert!(dag.parallelism() > 1.0);
//!
//! let groups = TaskGroupTree::from_computation(&comp);
//! assert_eq!(groups.tasks_in(groups.root()).len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod dag;
pub mod group;
pub mod pool;
pub mod sp;
pub mod stream;
pub mod synth;
pub mod task;

pub use addr::{AddressSpace, Region};
pub use dag::Dag;
pub use group::{GroupId, GroupKind, TaskGroup, TaskGroupTree};
pub use pool::{TracePool, TraceRange, TraceView};
pub use sp::{CallSite, Computation, ComputationBuilder, GroupMeta, SpKind, SpNode, SpNodeId};
pub use stream::{
    CacheGeometry, GeometryLanes, LineStream, PairedSetLanes, TripleSetLanes, STEP_ID_MASK,
    STEP_WRITE_BIT,
};
pub use task::{AccessKind, MemRef, Task, TaskId, TaskTrace, TraceBuilder, TraceOp};
