//! The computation DAG: dependency structure, 1DF ordering and analysis.

use crate::sp::{Computation, SpKind};
use crate::task::TaskId;

/// The dependency structure of a [`Computation`], flattened from its SP tree.
///
/// A node of the DAG is a task; an edge `(u, v)` means `v` may not start until
/// `u` has completed.  The DAG also records the 1DF *sequential order*: the
/// order a single-core execution of the program would run the tasks, which is
/// the priority order used by the PDF scheduler.
///
/// Adjacency is stored in **CSR form**: one flat edge array per direction
/// plus an `n + 1` offset array, so `successors`/`predecessors` are
/// contiguous slices and the whole DAG is four allocations instead of the
/// seed's two `Vec`s per task.
#[derive(Clone, Debug)]
pub struct Dag {
    /// Per-task instruction counts (copied from the computation for cheap
    /// access during scheduling).
    work: Vec<u64>,
    /// CSR offsets into `succ`: task `t`'s successors are
    /// `succ[succ_off[t]..succ_off[t + 1]]`.
    succ_off: Vec<u32>,
    /// Flat successor array (per-task segments keep edge insertion order).
    succ: Vec<TaskId>,
    /// CSR offsets into `pred`.
    pred_off: Vec<u32>,
    /// Flat predecessor array.
    pred: Vec<TaskId>,
    /// Tasks in 1DF sequential order.
    seq_order: Vec<TaskId>,
    /// Inverse of `seq_order`: `seq_rank[t] = position of t in seq_order`.
    seq_rank: Vec<u32>,
}

/// Build one CSR direction from an edge list: `key` picks the indexing
/// endpoint, `value` the stored endpoint.  Per-key segments preserve the
/// order edges appear in `edges`.
fn csr_from_edges(
    n: usize,
    edges: &[(TaskId, TaskId)],
    key: impl Fn(&(TaskId, TaskId)) -> TaskId,
    value: impl Fn(&(TaskId, TaskId)) -> TaskId,
) -> (Vec<u32>, Vec<TaskId>) {
    let mut off = vec![0u32; n + 1];
    for e in edges {
        off[key(e).index() + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut cursor = off.clone();
    let mut flat = vec![TaskId(0); edges.len()];
    for e in edges {
        let k = key(e).index();
        flat[cursor[k] as usize] = value(e);
        cursor[k] += 1;
    }
    (off, flat)
}

impl Dag {
    /// Flatten a computation's SP tree into its dependency DAG.
    pub fn from_computation(comp: &Computation) -> Dag {
        let n = comp.num_tasks();
        // Edges in discovery order; CSR construction preserves this order
        // within every per-task segment, matching the seed's nested lists.
        let mut edges: Vec<(TaskId, TaskId)> = Vec::new();

        // Recursively compute (sources, sinks) of every SP subtree and add
        // edges for sequential compositions.  Iterative post-order traversal
        // to avoid stack overflows on deep recursions.
        #[derive(Default, Clone)]
        struct Ends {
            sources: Vec<TaskId>,
            sinks: Vec<TaskId>,
        }

        let num_nodes = comp.nodes().len();
        let mut ends: Vec<Option<Ends>> = vec![None; num_nodes];

        // Children are always created before parents by the builder, so a
        // simple forward pass over the arena is a valid bottom-up order.
        for idx in 0..num_nodes {
            let node = &comp.nodes()[idx];
            let e = match node.kind {
                SpKind::Strand(t) => Ends {
                    sources: vec![t],
                    sinks: vec![t],
                },
                SpKind::Par => {
                    let mut sources = Vec::new();
                    let mut sinks = Vec::new();
                    for &c in &node.children {
                        let ce = ends[c.index()]
                            .as_ref()
                            .expect("children precede parents in the arena");
                        sources.extend_from_slice(&ce.sources);
                        sinks.extend_from_slice(&ce.sinks);
                    }
                    Ends { sources, sinks }
                }
                SpKind::Seq => {
                    let children = &node.children;
                    // Add edges between consecutive children.
                    for w in children.windows(2) {
                        let left = ends[w[0].index()].as_ref().unwrap();
                        let right = ends[w[1].index()].as_ref().unwrap();
                        for &u in &left.sinks {
                            for &v in &right.sources {
                                edges.push((u, v));
                            }
                        }
                    }
                    let first = ends[children.first().unwrap().index()].as_ref().unwrap();
                    let last = ends[children.last().unwrap().index()].as_ref().unwrap();
                    Ends {
                        sources: first.sources.clone(),
                        sinks: last.sinks.clone(),
                    }
                }
            };
            ends[idx] = Some(e);
        }

        assert!(
            edges.len() < u32::MAX as usize,
            "edge count exceeds u32 CSR"
        );
        let (succ_off, succ) = csr_from_edges(n, &edges, |e| e.0, |e| e.1);
        let (pred_off, pred) = csr_from_edges(n, &edges, |e| e.1, |e| e.0);

        let seq_order = comp.sequential_order();
        let mut seq_rank = vec![0u32; n];
        for (rank, t) in seq_order.iter().enumerate() {
            seq_rank[t.index()] = rank as u32;
        }

        let work = comp.tasks().iter().map(|t| t.work).collect();

        Dag {
            work,
            succ_off,
            succ,
            pred_off,
            pred,
            seq_order,
            seq_rank,
        }
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.work.len()
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }

    /// Instruction count of a task.
    #[inline]
    pub fn work_of(&self, t: TaskId) -> u64 {
        self.work[t.index()]
    }

    /// Successors of a task.
    #[inline]
    pub fn successors(&self, t: TaskId) -> &[TaskId] {
        &self.succ[self.succ_off[t.index()] as usize..self.succ_off[t.index() + 1] as usize]
    }

    /// Predecessors of a task.
    #[inline]
    pub fn predecessors(&self, t: TaskId) -> &[TaskId] {
        &self.pred[self.pred_off[t.index()] as usize..self.pred_off[t.index() + 1] as usize]
    }

    /// In-degree of a task.
    #[inline]
    pub fn in_degree(&self, t: TaskId) -> usize {
        (self.pred_off[t.index() + 1] - self.pred_off[t.index()]) as usize
    }

    /// Tasks with no predecessors (the DAG may have several).
    pub fn sources(&self) -> Vec<TaskId> {
        (0..self.num_tasks() as u32)
            .map(TaskId)
            .filter(|t| self.in_degree(*t) == 0)
            .collect()
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        (0..self.num_tasks() as u32)
            .map(TaskId)
            .filter(|t| self.successors(*t).is_empty())
            .collect()
    }

    /// Heap bytes of the CSR arrays and orderings (for the bench harness's
    /// peak-allocation estimate).
    pub fn heap_bytes(&self) -> u64 {
        (self.work.capacity() * 8
            + (self.succ_off.capacity()
                + self.pred_off.capacity()
                + self.succ.capacity()
                + self.pred.capacity()
                + self.seq_order.capacity()
                + self.seq_rank.capacity())
                * 4) as u64
    }

    /// Tasks in 1DF (sequential) order.  This is always a valid topological
    /// order of the DAG.
    pub fn seq_order(&self) -> &[TaskId] {
        &self.seq_order
    }

    /// Rank of a task in the sequential order (the PDF priority: lower runs
    /// earlier in the sequential execution).
    #[inline]
    pub fn seq_rank(&self, t: TaskId) -> u32 {
        self.seq_rank[t.index()]
    }

    /// Total work `W` (sum of task weights).
    pub fn total_work(&self) -> u64 {
        self.work.iter().sum()
    }

    /// Weighted depth `D`: the longest (weighted) path through the DAG, a.k.a.
    /// the critical path or span.  Used by Theorem 3.1 (`C_P ≥ C + P · D`).
    pub fn depth(&self) -> u64 {
        let mut finish = vec![0u64; self.num_tasks()];
        let mut max = 0;
        for &t in &self.seq_order {
            let start = self
                .predecessors(t)
                .iter()
                .map(|p| finish[p.index()])
                .max()
                .unwrap_or(0);
            finish[t.index()] = start + self.work[t.index()];
            max = max.max(finish[t.index()]);
        }
        max
    }

    /// Average parallelism `W / D` (0 if the DAG is empty).
    pub fn parallelism(&self) -> f64 {
        let d = self.depth();
        if d == 0 {
            0.0
        } else {
            self.total_work() as f64 / d as f64
        }
    }

    /// Verify structural invariants; used by tests and debug assertions.
    ///
    /// Checks that the sequential order is a permutation of all tasks and a
    /// valid topological order, and that successor/predecessor lists are
    /// mutually consistent.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_tasks();
        if self.seq_order.len() != n {
            return Err(format!(
                "sequential order has {} entries for {} tasks",
                self.seq_order.len(),
                n
            ));
        }
        let mut seen = vec![false; n];
        for &t in &self.seq_order {
            if seen[t.index()] {
                return Err(format!("{t:?} appears twice in sequential order"));
            }
            seen[t.index()] = true;
        }
        // Topological: every edge goes from a lower seq rank to a higher one.
        for u in 0..n {
            for &v in self.successors(TaskId(u as u32)) {
                if self.seq_rank[u] >= self.seq_rank(v) {
                    return Err(format!(
                        "edge T{} -> {:?} violates the sequential order",
                        u, v
                    ));
                }
                if !self.predecessors(v).contains(&TaskId(u as u32)) {
                    return Err(format!(
                        "edge T{} -> {:?} missing from predecessor list",
                        u, v
                    ));
                }
            }
        }
        for v in 0..n {
            for &u in self.predecessors(TaskId(v as u32)) {
                if !self.successors(u).contains(&TaskId(v as u32)) {
                    return Err(format!(
                        "edge {:?} -> T{} missing from successor list",
                        u, v
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sp::{ComputationBuilder, GroupMeta, SpNodeId};
    use crate::task::TaskTrace;

    fn leaf(b: &mut ComputationBuilder, work: u64) -> SpNodeId {
        b.strand(TaskTrace::compute_only(work))
    }

    /// seq(A, par(B, C), D) — the classic diamond.
    fn diamond() -> Dag {
        let mut b = ComputationBuilder::new(128);
        let a = leaf(&mut b, 10);
        let c1 = leaf(&mut b, 20);
        let c2 = leaf(&mut b, 30);
        let d = leaf(&mut b, 5);
        let p = b.par(vec![c1, c2], GroupMeta::default());
        let root = b.seq(vec![a, p, d], GroupMeta::default());
        let comp = b.finish(root);
        Dag::from_computation(&comp)
    }

    #[test]
    fn diamond_edges() {
        let dag = diamond();
        assert_eq!(dag.num_tasks(), 4);
        assert_eq!(dag.num_edges(), 4);
        assert_eq!(dag.successors(TaskId(0)), &[TaskId(1), TaskId(2)]);
        assert_eq!(dag.successors(TaskId(1)), &[TaskId(3)]);
        assert_eq!(dag.successors(TaskId(2)), &[TaskId(3)]);
        assert_eq!(dag.predecessors(TaskId(3)), &[TaskId(1), TaskId(2)]);
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn diamond_work_depth_parallelism() {
        let dag = diamond();
        assert_eq!(dag.total_work(), 65);
        // critical path: A (10) -> C2 (30) -> D (5)
        assert_eq!(dag.depth(), 45);
        let p = dag.parallelism();
        assert!((p - 65.0 / 45.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_sources_sinks() {
        let dag = diamond();
        assert_eq!(dag.sources(), vec![TaskId(0)]);
        assert_eq!(dag.sinks(), vec![TaskId(3)]);
    }

    #[test]
    fn seq_rank_matches_order() {
        let dag = diamond();
        for (rank, &t) in dag.seq_order().iter().enumerate() {
            assert_eq!(dag.seq_rank(t), rank as u32);
        }
    }

    #[test]
    fn single_task_dag() {
        let mut b = ComputationBuilder::new(128);
        let a = leaf(&mut b, 7);
        let comp = b.finish(a);
        let dag = Dag::from_computation(&comp);
        assert_eq!(dag.num_tasks(), 1);
        assert_eq!(dag.num_edges(), 0);
        assert_eq!(dag.depth(), 7);
        assert_eq!(dag.sources(), dag.sinks());
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn pure_sequential_chain() {
        let mut b = ComputationBuilder::new(128);
        let leaves: Vec<_> = (0..5).map(|i| leaf(&mut b, i + 1)).collect();
        let root = b.seq(leaves, GroupMeta::default());
        let comp = b.finish(root);
        let dag = Dag::from_computation(&comp);
        assert_eq!(dag.num_edges(), 4);
        assert_eq!(dag.depth(), dag.total_work());
        assert!((dag.parallelism() - 1.0).abs() < 1e-12);
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn pure_parallel_fan() {
        let mut b = ComputationBuilder::new(128);
        let leaves: Vec<_> = (0..8).map(|_| leaf(&mut b, 10)).collect();
        let root = b.par(leaves, GroupMeta::default());
        let comp = b.finish(root);
        let dag = Dag::from_computation(&comp);
        assert_eq!(dag.num_edges(), 0);
        assert_eq!(dag.depth(), 10);
        assert_eq!(dag.total_work(), 80);
        assert_eq!(dag.sources().len(), 8);
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn nested_seq_of_pars_connects_all_pairs() {
        let mut b = ComputationBuilder::new(128);
        let l1: Vec<_> = (0..3).map(|_| leaf(&mut b, 1)).collect();
        let l2: Vec<_> = (0..2).map(|_| leaf(&mut b, 1)).collect();
        let p1 = b.par(l1, GroupMeta::default());
        let p2 = b.par(l2, GroupMeta::default());
        let root = b.seq(vec![p1, p2], GroupMeta::default());
        let comp = b.finish(root);
        let dag = Dag::from_computation(&comp);
        // every task of p1 -> every task of p2
        assert_eq!(dag.num_edges(), 6);
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn seq_order_is_topological_for_deep_nesting() {
        // Binary divide-and-conquer tree of depth 6.
        fn build(b: &mut ComputationBuilder, depth: u32) -> SpNodeId {
            if depth == 0 {
                return b.strand(TaskTrace::compute_only(1));
            }
            let l = build(b, depth - 1);
            let r = build(b, depth - 1);
            let join = b.strand(TaskTrace::compute_only(1));
            let p = b.par(vec![l, r], GroupMeta::default());
            b.seq(vec![p, join], GroupMeta::default())
        }
        let mut b = ComputationBuilder::new(128);
        let root = build(&mut b, 6);
        let comp = b.finish(root);
        let dag = Dag::from_computation(&comp);
        assert_eq!(dag.num_tasks(), 2 * 64 - 1);
        assert!(dag.validate().is_ok());
        // Depth of the weighted DAG: leaf + 6 joins = 7 instructions.
        assert_eq!(dag.depth(), 7);
    }
}
