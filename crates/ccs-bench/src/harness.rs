//! The performance-benchmark harness: timed macro-runs of the figure
//! sweeps and raw-simulator microbenches, emitted as a stable-schema
//! `BENCH_sim.json` so every PR extends one perf trajectory.
//!
//! The criterion shim under `shims/` satisfies the `cargo bench` targets
//! but measures nothing; this module is the real harness.  It is invoked by
//! `run_all --bench` (usually together with `--quick`) and produces a
//! [`BenchReport`] with three kinds of records:
//!
//! * `macro/<sweep>` — one per figure sweep (fig2–fig6, the §5.4
//!   comparison and the latency profile), timing the production
//!   (event-driven) engine on the selected options;
//! * `macro/<sweep>_batch` — the latency-style sweeps (fig4, fig5 and the
//!   latency profile) re-timed on the *batch* engine (quick options), after
//!   asserting the batched report is byte-identical to an event-engine run;
//! * `macro/quick_sweep` and `macro/quick_sweep_reference` — the whole
//!   quick sweep timed on the event-driven engine and on the retained
//!   reference cycle-stepper.  `speedup_vs_reference` on the former is the
//!   headline number: how much faster the event-driven core runs the exact
//!   same (metrics-identical) simulations;
//! * `micro/sim_<scheduler>` — the raw simulator on a fixed synthetic DAG,
//!   bypassing the experiment layer, with its own reference comparison;
//! * `runtime/*` — the native thread pool with no simulator in the loop:
//!   fork-join `fib`, a detached-spawn fan-out, and a quick sweep run at
//!   `Experiment::parallelism(8)` (byte-identity-asserted against the
//!   sequential run) — see DESIGN.md §14.
//!
//! # `BENCH_sim.json` schema (stable)
//!
//! ```json
//! {
//!   "schema": "ccs-bench/6",
//!   "scale": 256,
//!   "quick": true,
//!   "records": [
//!     {
//!       "name": "macro/quick_sweep",
//!       "wall_ms": 812.4,
//!       "tasks_per_sec": 161234.0,
//!       "total_misses": 93511,
//!       "l3_misses": 0,
//!       "tasks": 130934,
//!       "cycles": 55173921,
//!       "clusters": 1,
//!       "trace_bytes": 1224736,
//!       "peak_alloc_estimate": 2449472,
//!       "compile_ms": 8.4,
//!       "batch_width": 0,
//!       "speedup_vs_reference": 2.9
//!     }
//!   ]
//! }
//! ```
//!
//! `name`, `wall_ms`, `tasks_per_sec` (simulated tasks per wall-clock
//! second) and `total_misses` (summed simulated L2 misses) are guaranteed;
//! `tasks`/`cycles` are the matching simulated totals,
//! `trace_bytes`/`peak_alloc_estimate` are the *peak* per-computation
//! memory footprints over the runs the record covers (flat trace arena,
//! and arena + compiled line stream + geometry lanes + CSR DAG
//! respectively), `compile_ms` is the wall-clock the record's runs spent
//! compiling line streams and geometry set lanes (the split of `wall_ms`
//! that is *not* simulation; near zero when the process-global build
//! cache already held the artifacts — see DESIGN.md §9), `batch_width` is
//! the largest latency-batch the record's runs simulated in one grouped
//! pass (0 for non-batched engines — see DESIGN.md §11), and
//! `speedup_vs_reference` is present only on records with a reference
//! counterpart.  `l3_misses` sums the simulated shared-L3 misses over the
//! record's runs (0 unless a sweep simulates three-level hierarchies —
//! see DESIGN.md §12) and `clusters` is the largest L2-cluster count among
//! those runs (1 = every core shares one L2).  `total_misses`,
//! `l3_misses`, `tasks`, `cycles`, `clusters`, `batch_width`,
//! `trace_bytes` and `peak_alloc_estimate` are *deterministic* for a given
//! scale/quick setting — the CI gate ([`gate`]) checks the simulated
//! metrics for exact equality against the committed baseline,
//! `tasks_per_sec` within a relative tolerance, and fails memory-footprint
//! growth beyond the same tolerance; `compile_ms` is reported but not
//! gated (it is wall-clock noise at the millisecond scale) and is surfaced
//! by the gate's `summary:` line (schema `ccs-bench/6`; `--trials N`
//! overrides the noise-averaging trial counts).  The synthetic `runtime/*`
//! records carry zero for every simulated metric: the zeros are
//! exact-gated and the footprint ratio checks skip zero-byte baselines,
//! so their gated signal is `tasks_per_sec` alone.

use std::io;
use std::path::Path;
use std::time::Instant;

use ccs_dag::synth::{random_computation, SynthParams};
use ccs_experiment::json::{self, Json, JsonError};
use ccs_experiment::{Options, Report};
use ccs_sim::{simulate_engine, CmpConfig, SimEngine};

use crate::figs;

pub mod gate;
mod runtime;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "ccs-bench/6";

/// Default output path (written into the invoking directory, gitignored at
/// the repo root).
pub const BENCH_SIM_PATH: &str = "BENCH_sim.json";

/// One timed benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Stable record name (`"macro/fig2"`, `"micro/sim_pdf"`, …).
    pub name: String,
    /// Wall-clock time of the bench in milliseconds.
    pub wall_ms: f64,
    /// Simulated tasks completed per wall-clock second.
    pub tasks_per_sec: f64,
    /// Total simulated L2 misses (deterministic per scale/quick setting).
    pub total_misses: u64,
    /// Total simulated shared-L3 misses over the record's runs; 0 unless
    /// the sweep simulates three-level hierarchies (deterministic).
    pub l3_misses: u64,
    /// Total simulated tasks (deterministic).
    pub tasks: u64,
    /// Total simulated cycles (deterministic).
    pub cycles: u64,
    /// Largest L2-cluster count among the record's runs (1 = every core
    /// shares one L2; deterministic).
    pub clusters: u64,
    /// Peak trace-arena footprint in bytes over the computations this
    /// record simulated (deterministic).
    pub trace_bytes: u64,
    /// Peak per-computation allocation estimate in bytes: trace arena +
    /// compiled line stream + geometry lanes + CSR DAG (deterministic).
    pub peak_alloc_estimate: u64,
    /// Wall-clock milliseconds spent compiling line streams and geometry
    /// lanes across the runs this record covers (not gated; the non-
    /// simulation split of `wall_ms`).
    pub compile_ms: f64,
    /// Largest latency-batch the record's runs simulated in one grouped
    /// pass (0 when the batch engine was not in play; deterministic).
    pub batch_width: u64,
    /// Wall-clock speedup over the reference cycle-stepper on the identical
    /// work, where measured.
    pub speedup_vs_reference: Option<f64>,
}

impl BenchRecord {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.as_str().into()),
            ("wall_ms", self.wall_ms.into()),
            ("tasks_per_sec", self.tasks_per_sec.into()),
            ("total_misses", self.total_misses.into()),
            ("l3_misses", self.l3_misses.into()),
            ("tasks", self.tasks.into()),
            ("cycles", self.cycles.into()),
            ("clusters", self.clusters.into()),
            ("trace_bytes", self.trace_bytes.into()),
            ("peak_alloc_estimate", self.peak_alloc_estimate.into()),
            ("compile_ms", self.compile_ms.into()),
            ("batch_width", self.batch_width.into()),
            ("speedup_vs_reference", self.speedup_vs_reference.into()),
        ])
    }

    fn from_json(value: &Json) -> Result<BenchRecord, JsonError> {
        let field = |key: &str| {
            value.get(key).ok_or_else(|| JsonError {
                message: format!("bench record missing {key:?}"),
                offset: 0,
            })
        };
        let num = |key: &str| -> Result<f64, JsonError> {
            field(key)?.as_f64().ok_or_else(|| JsonError {
                message: format!("bench record field {key:?} is not a number"),
                offset: 0,
            })
        };
        let uint = |key: &str| -> Result<u64, JsonError> {
            field(key)?.as_u64().ok_or_else(|| JsonError {
                message: format!("bench record field {key:?} is not an unsigned integer"),
                offset: 0,
            })
        };
        Ok(BenchRecord {
            name: field("name")?
                .as_str()
                .ok_or_else(|| JsonError {
                    message: "bench record name is not a string".into(),
                    offset: 0,
                })?
                .to_string(),
            wall_ms: num("wall_ms")?,
            tasks_per_sec: num("tasks_per_sec")?,
            total_misses: uint("total_misses")?,
            l3_misses: uint("l3_misses")?,
            tasks: uint("tasks")?,
            cycles: uint("cycles")?,
            clusters: uint("clusters")?,
            trace_bytes: uint("trace_bytes")?,
            peak_alloc_estimate: uint("peak_alloc_estimate")?,
            compile_ms: num("compile_ms")?,
            batch_width: uint("batch_width")?,
            speedup_vs_reference: match field("speedup_vs_reference") {
                Ok(v) if !v.is_null() => Some(v.as_f64().ok_or_else(|| JsonError {
                    message: "speedup_vs_reference is not a number".into(),
                    offset: 0,
                })?),
                _ => None,
            },
        })
    }
}

/// A full harness run: the perf trajectory one `run_all --bench` leaves
/// behind.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Effective scale divisor the simulations ran at.
    pub scale: u64,
    /// Whether quick mode was on (the gate only compares like with like).
    pub quick: bool,
    /// The timed benchmarks.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Look up a record by name.
    pub fn find(&self, name: &str) -> Option<&BenchRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Serialise to the stable `BENCH_sim.json` document.
    pub fn to_json(&self) -> String {
        Json::object([
            ("schema", SCHEMA.into()),
            ("scale", self.scale.into()),
            ("quick", self.quick.into()),
            (
                "records",
                Json::Array(self.records.iter().map(BenchRecord::to_json).collect()),
            ),
        ])
        .to_string_pretty()
    }

    /// Parse a `BENCH_sim.json` document (used by the CI gate).
    pub fn from_json(text: &str) -> Result<BenchReport, JsonError> {
        let doc = json::parse(text)?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(JsonError {
                message: format!("unsupported bench schema {schema:?} (expected {SCHEMA:?})"),
                offset: 0,
            });
        }
        let missing = |key: &str| JsonError {
            message: format!("bench report missing {key:?}"),
            offset: 0,
        };
        let records = doc
            .get("records")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("records"))?
            .iter()
            .map(BenchRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            scale: doc
                .get("scale")
                .and_then(Json::as_u64)
                .ok_or_else(|| missing("scale"))?,
            quick: doc
                .get("quick")
                .and_then(Json::as_bool)
                .ok_or_else(|| missing("quick"))?,
            records,
        })
    }

    /// Write the JSON document to `path`.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read and parse a report from `path`.
    pub fn read_json(path: impl AsRef<Path>) -> io::Result<BenchReport> {
        let text = std::fs::read_to_string(path)?;
        BenchReport::from_json(&text).map_err(io::Error::other)
    }

    /// Human-readable table (TSV, one line per record).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("name\twall_ms\ttasks/s\tl2_misses\ttrace_kb\tspeedup_vs_ref\n");
        for r in &self.records {
            let speedup = r
                .speedup_vs_reference
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{}\t{:.1}\t{:.0}\t{}\t{}\t{}\n",
                r.name,
                r.wall_ms,
                r.tasks_per_sec,
                r.total_misses,
                r.trace_bytes / 1024,
                speedup
            ));
        }
        out
    }
}

/// Wall-clock a closure, returning its result and the elapsed milliseconds.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1000.0)
}

/// Aggregate a sweep [`Report`] plus its wall time into a bench record.
/// The memory footprints are the *maximum* over the sweep's runs — the
/// largest single computation's footprint, which is the quantity the gate
/// watches for layout regressions.  (It is deliberately not a process-RSS
/// estimate: a sweep holds its distinct prebuilt computations concurrently,
/// so resident memory is closer to the sum over distinct builds.)
fn record_from_report(name: impl Into<String>, report: &Report, wall_ms: f64) -> BenchRecord {
    let tasks: u64 = report.records.iter().map(|r| r.tasks as u64).sum();
    let misses: u64 = report.records.iter().map(|r| r.l2_misses).sum();
    let l3_misses: u64 = report.records.iter().map(|r| r.l3_misses).sum();
    let cycles: u64 = report.records.iter().map(|r| r.cycles).sum();
    BenchRecord {
        name: name.into(),
        wall_ms,
        tasks_per_sec: per_second(tasks, wall_ms),
        total_misses: misses,
        l3_misses,
        tasks,
        cycles,
        clusters: report
            .records
            .iter()
            .map(|r| r.clusters as u64)
            .max()
            .unwrap_or(1),
        trace_bytes: report
            .records
            .iter()
            .map(|r| r.trace_bytes)
            .max()
            .unwrap_or(0),
        peak_alloc_estimate: report
            .records
            .iter()
            .map(|r| r.peak_alloc_estimate)
            .max()
            .unwrap_or(0),
        compile_ms: report.records.iter().map(|r| r.compile_ms).sum(),
        batch_width: report
            .records
            .iter()
            .map(|r| r.batch_width)
            .max()
            .unwrap_or(0),
        speedup_vs_reference: None,
    }
}

fn per_second(count: u64, wall_ms: f64) -> f64 {
    if wall_ms <= 0.0 {
        0.0
    } else {
        count as f64 / (wall_ms / 1000.0)
    }
}

/// Run one full pass of the figure sweeps ([`figs::figure_sweeps`], the
/// same canonical list `run_all` executes) under `opts`, returning the
/// merged report, the per-sweep records, and the total wall time.
fn sweep_pass(opts: &Options, prefix: &str) -> (Report, Vec<BenchRecord>, f64) {
    let mut merged = Report::new("run_all", opts.effective_scale());
    let mut records = Vec::new();
    let mut total_ms = 0.0;
    for (name, run) in figs::figure_sweeps() {
        let (report, wall_ms) = timed(|| run(opts));
        records.push(record_from_report(
            format!("{prefix}/{name}"),
            &report,
            wall_ms,
        ));
        total_ms += wall_ms;
        merged.merge(report);
    }
    (merged, records, total_ms)
}

/// [`sweep_pass`], repeated `trials` times keeping the fastest wall time
/// per sweep (and the fastest pass total).  Same rationale as the
/// microbench trials: single samples on shared CI boxes swing well past
/// the gate tolerance, the minimum converges on the machine's true floor.
/// The simulated metrics are identical across trials (simulations are
/// deterministic), so only the timings are folded.
fn best_sweep_pass(opts: &Options, prefix: &str, trials: u32) -> (Report, Vec<BenchRecord>, f64) {
    let (merged, mut records, mut total_ms) = sweep_pass(opts, prefix);
    for _ in 1..trials {
        let (_, again, again_total) = sweep_pass(opts, prefix);
        for (best, candidate) in records.iter_mut().zip(again) {
            debug_assert_eq!(best.total_misses, candidate.total_misses);
            if candidate.wall_ms < best.wall_ms {
                // `compile_ms` rides with the winning pass so the pair
                // stays a consistent wall/compile split (warm passes reuse
                // the build cache and compile ~nothing).
                best.wall_ms = candidate.wall_ms;
                best.tasks_per_sec = candidate.tasks_per_sec;
                best.compile_ms = candidate.compile_ms;
            }
        }
        total_ms = total_ms.min(again_total);
    }
    (merged, records, total_ms)
}

/// The latency-style sweeps re-timed on the batch engine (`macro/<name>_batch`
/// records).  Runs on the quick options (bounded even when the macro phase
/// ran full-scale), best-of-`trials` like every other timed record, and
/// asserts — not just measures — that the batched report is byte-identical
/// to a fresh event-engine run of the same sweep.
fn batch_benches(records: &mut Vec<BenchRecord>, quick_event: &Options, trials: u32) {
    const LATENCY_SWEEPS: [&str; 3] = ["fig4_l2_hit_time", "fig5_mem_latency", "latency_profile"];
    let mut batch_opts = quick_event.clone();
    batch_opts.engine = SimEngine::Batch;
    for (name, run) in figs::figure_sweeps() {
        if !LATENCY_SWEEPS.contains(&name) {
            continue;
        }
        let event_report = run(quick_event);
        let (batch_report, mut best_ms) = timed(|| run(&batch_opts));
        for _ in 1..trials {
            let (_, ms) = timed(|| run(&batch_opts));
            best_ms = best_ms.min(ms);
        }
        assert_eq!(
            batch_report.to_json(),
            event_report.to_json(),
            "batch engine diverged from the event engine on {name}"
        );
        records.push(record_from_report(
            format!("macro/{name}_batch"),
            &batch_report,
            best_ms,
        ));
    }
}

/// Fixed synthetic DAG for the raw-simulator microbench: large enough to
/// time, independent of `--scale` so trajectories stay comparable.
fn micro_computation() -> ccs_dag::Computation {
    let params = SynthParams {
        max_depth: 7,
        max_par_width: 4,
        max_seq_len: 3,
        max_strand_work: 200,
        max_strand_refs: 48,
        num_regions: 8,
        region_bytes: 32 * 1024,
        shared_ref_prob: 0.4,
        line_size: 128,
    };
    random_computation(12, &params)
}

/// The raw-simulator microbenches: both schedulers on a fixed synthetic
/// DAG and an 8-core default configuration, event-driven vs reference.
///
/// Each side is timed as the *fastest* of several trials — the individual
/// runs are only a few milliseconds, so a single sample would be at the
/// mercy of scheduler noise on shared CI boxes and make the ±20% gate
/// flaky.
fn micro_benches(records: &mut Vec<BenchRecord>, trials: u32) {
    let comp = micro_computation();
    let config = CmpConfig::default_with_cores(8)
        .expect("8-core default config")
        .scaled(64);
    let trace_bytes = comp.trace_arena_bytes();
    // Pay (and time) the stream/geometry compilation up front, so the
    // timed simulations below measure the engine alone.
    let ((stream, lanes), compile_ms) = timed(|| {
        let stream = comp.line_stream(config.l2.line_size);
        let lanes = stream.geometry_pair(
            ccs_dag::CacheGeometry::new(config.l1.line_size, config.l1.num_sets()),
            ccs_dag::CacheGeometry::new(config.l2.line_size, config.l2.num_sets()),
        );
        (stream, lanes)
    });
    let peak_alloc_estimate = trace_bytes
        + stream.heap_bytes()
        + lanes.heap_bytes()
        + ccs_dag::Dag::from_computation(&comp).heap_bytes();
    const ITERS: u32 = 3;
    let mut compile_ms = compile_ms;
    for sched in ["pdf", "ws"] {
        let best_of = |engine: SimEngine| {
            let mut best_ms = f64::INFINITY;
            let mut last = None;
            for _ in 0..trials {
                let (result, ms) = timed(|| {
                    let mut result = None;
                    for _ in 0..ITERS {
                        result = Some(simulate_engine(&comp, &config, sched, engine));
                    }
                    result.expect("at least one iteration")
                });
                best_ms = best_ms.min(ms);
                last = Some(result);
            }
            (last.expect("at least one trial"), best_ms)
        };
        let (result, event_ms) = best_of(SimEngine::EventDriven);
        let (_, reference_ms) = best_of(SimEngine::Reference);
        // Report per-iteration wall time so the schema invariant
        // `tasks_per_sec == tasks / (wall_ms / 1000)` holds for micro
        // records exactly as it does for macro records.
        let per_iter_ms = event_ms / ITERS as f64;
        records.push(BenchRecord {
            name: format!("micro/sim_{sched}"),
            wall_ms: per_iter_ms,
            tasks_per_sec: per_second(result.tasks as u64, per_iter_ms),
            total_misses: result.l2.misses,
            l3_misses: result.l3.misses,
            tasks: result.tasks as u64,
            cycles: result.cycles,
            clusters: result.clusters as u64,
            trace_bytes,
            peak_alloc_estimate,
            // The one-time compile cost is charged to the first record only
            // (summing compile_ms across records must not double-count it).
            compile_ms: std::mem::take(&mut compile_ms),
            batch_width: 0,
            speedup_vs_reference: Some(reference_ms / event_ms.max(f64::MIN_POSITIVE)),
        });
    }
}

/// Run the full harness: timed macro sweeps (event-driven), the
/// quick-sweep engine comparison, the batched latency sweeps, and the
/// raw-simulator microbenches.
///
/// Returns the bench report plus the merged sweep [`Report`], so `run_all
/// --bench` still leaves the usual `BENCH_run_all.json` trajectory behind.
pub fn run(opts: &Options) -> (BenchReport, Report) {
    // Quick sweeps are fast enough to repeat for noise-resistant minima;
    // full-scale sweeps take minutes and run once.  `--trials N`
    // overrides every trial count.
    let trials = opts.trials.unwrap_or(if opts.quick { 3 } else { 1 });

    // Phase 1: the figure sweeps as selected (quick or full), production
    // engine — the trajectory every future PR extends.
    let mut event_opts = opts.clone();
    event_opts.engine = SimEngine::EventDriven;
    let (merged, mut records, macro_ms) = best_sweep_pass(&event_opts, "macro", trials);

    // Phase 2: engine comparison on the *quick* sweep (bounded even when
    // the macro phase ran full-scale; the reference engine is too slow for
    // full sweeps).  When the macro phase already was the quick sweep its
    // timing is reused as the event-driven side.
    let mut quick_event = event_opts.clone();
    quick_event.quick = true;
    let (quick_report, quick_records, event_ms) = if opts.quick {
        (merged.clone(), records.clone(), macro_ms)
    } else {
        let (report, per_sweep, total) =
            best_sweep_pass(&quick_event, "quick", opts.trials.unwrap_or(3));
        // The per-sweep quick records are only needed for the aggregate.
        (report, per_sweep, total)
    };
    let mut quick_reference = quick_event.clone();
    quick_reference.engine = SimEngine::Reference;
    let (reference_report, reference_records, reference_ms) =
        best_sweep_pass(&quick_reference, "reference", opts.trials.unwrap_or(2));
    let mut event_side = record_from_report("macro/quick_sweep", &quick_report, event_ms);
    // `wall_ms` is the fastest pass total, so the compile split must also
    // come from the fastest per-sweep passes (a warm pass reuses the build
    // cache and compiles ~nothing), not from the merged first-pass report.
    event_side.compile_ms = quick_records.iter().map(|r| r.compile_ms).sum();
    event_side.speedup_vs_reference = Some(reference_ms / event_ms.max(f64::MIN_POSITIVE));
    records.push(event_side);
    let mut reference_side = record_from_report(
        "macro/quick_sweep_reference",
        &reference_report,
        reference_ms,
    );
    reference_side.compile_ms = reference_records.iter().map(|r| r.compile_ms).sum();
    records.push(reference_side);

    // Phase 3: the batch engine on the latency-style sweeps, quick options
    // — timed *and* equivalence-asserted against the event engine.
    batch_benches(&mut records, &quick_event, opts.trials.unwrap_or(3));

    // Phase 4: raw simulator, no experiment layer in the way.
    micro_benches(&mut records, opts.trials.unwrap_or(5));

    // Phase 5: raw runtime — the native pool with no simulator in the
    // loop (fork-join, spawn fan-out, and a pool-parallel quick sweep).
    runtime::runtime_benches(&mut records, &quick_event, opts.trials.unwrap_or(5));

    let bench = BenchReport {
        scale: opts.effective_scale(),
        quick: opts.quick,
        records,
    };
    (bench, merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            scale: 256,
            quick: true,
            records: vec![
                BenchRecord {
                    name: "macro/quick_sweep".into(),
                    wall_ms: 812.5,
                    tasks_per_sec: 161234.5,
                    total_misses: 93511,
                    l3_misses: 4021,
                    tasks: 130934,
                    cycles: 55173921,
                    clusters: 8,
                    trace_bytes: 1_224_736,
                    peak_alloc_estimate: 2_449_472,
                    compile_ms: 8.25,
                    batch_width: 0,
                    speedup_vs_reference: Some(2.9),
                },
                BenchRecord {
                    name: "micro/sim_pdf".into(),
                    wall_ms: 45.0,
                    tasks_per_sec: 9000.0,
                    total_misses: 1200,
                    l3_misses: 0,
                    tasks: 405,
                    cycles: 99000,
                    clusters: 1,
                    trace_bytes: 64_000,
                    peak_alloc_estimate: 130_000,
                    compile_ms: 0.5,
                    batch_width: 6,
                    speedup_vs_reference: None,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let report = sample_report();
        let text = report.to_json();
        let parsed = BenchReport::from_json(&text).expect("round trip");
        assert_eq!(parsed, report);
        assert!(text.contains("\"schema\": \"ccs-bench/6\""), "{text}");
        assert!(text.contains("\"trace_bytes\": 1224736"), "{text}");
        assert!(text.contains("\"compile_ms\": 8.25"), "{text}");
        assert!(text.contains("\"batch_width\": 6"), "{text}");
        assert!(text.contains("\"l3_misses\": 4021"), "{text}");
        assert!(text.contains("\"clusters\": 8"), "{text}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = sample_report().to_json().replace("ccs-bench/6", "other/9");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.message.contains("unsupported bench schema"), "{err}");
    }

    #[test]
    fn find_and_tsv() {
        let report = sample_report();
        assert_eq!(report.find("micro/sim_pdf").unwrap().total_misses, 1200);
        assert!(report.find("missing").is_none());
        let tsv = report.to_tsv();
        assert!(tsv.contains("macro/quick_sweep\t812.5"), "{tsv}");
        assert!(tsv.contains("2.90x"), "{tsv}");
        assert!(tsv.contains("\t-\n"), "no-reference records print a dash");
    }

    #[test]
    fn per_second_handles_zero_wall() {
        assert_eq!(per_second(100, 0.0), 0.0);
        assert!((per_second(500, 250.0) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn micro_computation_is_nontrivial_and_stable() {
        let a = micro_computation();
        let b = micro_computation();
        assert_eq!(a.num_tasks(), b.num_tasks());
        assert!(a.num_tasks() > 50, "got {}", a.num_tasks());
    }
}
