//! Shared harness code for the experiment binaries that regenerate every
//! table and figure of Chen et al., SPAA 2007.
//!
//! Each binary in `src/bin/` reproduces one figure/table (see DESIGN.md's
//! experiment index).  The sweeps themselves are described with the
//! [`Experiment`] builder from `ccs-experiment` — the per-figure functions in
//! [`figs`] return a serialisable [`Report`], and the binaries are thin
//! wrappers that print it as TSV and optionally emit JSON (`--json PATH`).
//!
//! All binaries accept the shared [`Options`] flags (`--scale`, `--quick`,
//! `--app`, `--json`, `--engine`) plus binary-specific extras.  `run_all
//! --bench` additionally runs the timed [`harness`] and emits the
//! `BENCH_sim.json` perf trajectory that CI gates on (see the `bench_gate`
//! binary).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ccs_experiment::{Experiment, Options, Report, RunRecord, WorkloadSpec};

use ccs_dag::Computation;
use ccs_sched::SchedulerSpec;
use ccs_sim::{simulate_engine, CmpConfig, SimResult};

pub mod figs;
pub mod harness;

/// Simulate `comp` on the scaled version of `cfg` under the selected
/// scheduler.  Used by the non-sweep binaries (`fig8_auto_coarsening`);
/// sweep-shaped work goes through [`Experiment`] instead.
pub fn run_sim(
    comp: &Computation,
    cfg: &CmpConfig,
    opts: &Options,
    sched: impl Into<SchedulerSpec>,
) -> SimResult {
    let scaled = cfg.scaled(opts.effective_scale());
    simulate_engine(comp, &scaled, sched, opts.engine)
}

/// Print a report as the standard tab-separated table, preceded by a
/// commented title line on stderr.  With `--json -` the table moves to
/// stderr so stdout carries nothing but the JSON document.  Empty sweeps
/// (the workload selection has no panel in this figure) get an explanatory
/// note instead of silent blankness.
pub fn print_report(title: &str, report: &Report, opts: &Options) {
    eprintln!("# {title}, scale 1/{}", report.scale);
    if report.is_empty() {
        eprintln!(
            "# (empty sweep: the selected workloads have no panel in this figure; \
             parameterised or non-paper specs only run through `run_all --workloads`)"
        );
    }
    if opts.json_to_stdout() {
        eprint!("{}", report.to_tsv());
    } else {
        print!("{}", report.to_tsv());
    }
    if let Err(e) = opts.emit_json(report) {
        eprintln!("# failed to write JSON report: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_workloads::Benchmark;

    #[test]
    fn quick_pdf_ws_run_is_consistent() {
        let report = Experiment::new(Benchmark::Mergesort)
            .cores(4)
            .scale(512)
            .quick(true)
            .schedulers(["pdf", "ws"])
            .run();
        let pdf = report.for_scheduler("pdf").next().unwrap();
        let ws = report.for_scheduler("ws").next().unwrap();
        assert_eq!(pdf.instructions, ws.instructions);
        assert!(pdf.cycles > 0 && ws.cycles > 0);
        assert!(pdf.speedup_over_seq.unwrap() >= 1.0);
    }

    #[test]
    fn fig_reports_cover_their_sweeps_in_quick_mode() {
        let opts = Options {
            quick: true,
            scale: 512,
            app: Some(Benchmark::Mergesort),
            ..Options::default()
        };
        let fig2 = figs::fig2(&opts);
        // Quick mode: 1–8 cores in powers of two, PDF + WS per point.
        assert_eq!(fig2.len(), 4 * 2);
        assert!(fig2.records.iter().all(|r| r.cores <= 8));
        assert!(fig2.records.iter().all(|r| r.speedup_over_seq.is_some()));

        let fig6 = figs::fig6(&opts);
        assert!(!fig6.is_empty());
        // The granularity sweep encodes the task working set in the name.
        assert!(fig6
            .records
            .iter()
            .all(|r| r.workload.starts_with("mergesort/ws=")));
    }
}
