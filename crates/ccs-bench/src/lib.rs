//! Shared harness code for the experiment binaries that regenerate every
//! table and figure of Chen et al., SPAA 2007.
//!
//! Each binary in `src/bin/` reproduces one figure/table (see DESIGN.md's
//! experiment index).  All of them accept:
//!
//! * `--scale N` — divide the paper's input sizes *and* all cache capacities
//!   by `N` (default 32) so the full sweep runs on a laptop while preserving
//!   every capacity ratio (DESIGN.md §4);
//! * `--quick` — run a reduced sweep (used by the integration smoke tests);
//! * binary-specific flags such as `--app`.
//!
//! Output is tab-separated, one row per measured point, so it can be pasted
//! into a plotting tool directly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use ccs_dag::Computation;
use ccs_sched::SchedulerKind;
use ccs_sim::{simulate, CmpConfig, SimResult};
use ccs_workloads::Benchmark;

/// Command-line options shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct Options {
    /// Input/cache scale divisor (1 = the paper's sizes).
    pub scale: u64,
    /// Reduced sweep for smoke tests.
    pub quick: bool,
    /// Optional benchmark filter (`--app lu|hashjoin|mergesort`).
    pub app: Option<Benchmark>,
    /// Remaining unrecognised flags (binary-specific).
    pub rest: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options { scale: 32, quick: false, app: None, rest: Vec::new() }
    }
}

impl Options {
    /// Parse options from `std::env::args`.
    pub fn from_env() -> Options {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse options from an explicit iterator (used by tests).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Options {
        let mut opts = Options::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = iter.next().expect("--scale requires a value");
                    opts.scale = v.parse().expect("--scale must be an integer");
                }
                "--quick" => opts.quick = true,
                "--app" => {
                    let v = iter.next().expect("--app requires a value");
                    opts.app = Some(match v.as_str() {
                        "lu" => Benchmark::Lu,
                        "hashjoin" => Benchmark::HashJoin,
                        "mergesort" => Benchmark::Mergesort,
                        other => panic!("unknown app {other:?} (lu|hashjoin|mergesort)"),
                    });
                }
                other => opts.rest.push(other.to_string()),
            }
        }
        opts
    }

    /// The benchmarks selected by `--app` (or all three).
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        match self.app {
            Some(b) => vec![b],
            None => vec![Benchmark::Lu, Benchmark::HashJoin, Benchmark::Mergesort],
        }
    }

    /// In quick mode shrink the workloads further so smoke tests stay fast.
    pub fn effective_scale(&self) -> u64 {
        if self.quick {
            self.scale.max(256)
        } else {
            self.scale
        }
    }
}

/// One measured point: a workload simulated on a configuration under a
/// scheduler.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The (scaled) configuration name.
    pub config: String,
    /// Cores in the configuration.
    pub cores: usize,
    /// The simulation result.
    pub result: SimResult,
}

/// Build a benchmark at the scale implied by `opts` for a given (unscaled)
/// configuration.
pub fn build_workload(bench: Benchmark, cfg: &CmpConfig, opts: &Options) -> Computation {
    let scale = opts.effective_scale();
    let scaled_l2 = (cfg.l2.capacity / scale).max(16 * 1024);
    bench.build_scaled(scale, scaled_l2, cfg.num_cores)
}

/// Simulate `comp` on the scaled version of `cfg` under `kind`.
pub fn run_sim(
    comp: &Computation,
    cfg: &CmpConfig,
    opts: &Options,
    kind: SchedulerKind,
) -> SimResult {
    let scaled = cfg.scaled(opts.effective_scale());
    simulate(comp, &scaled, kind)
}

/// PDF, WS and sequential-baseline results for one benchmark on one
/// configuration.
pub struct PdfWsPair {
    /// PDF result.
    pub pdf: SimResult,
    /// WS result.
    pub ws: SimResult,
    /// Sequential (1-core, same configuration family) result — the
    /// denominator of the paper's speedup plots.
    pub sequential: SimResult,
}

/// Run the PDF/WS/sequential triple for one benchmark on one configuration.
pub fn run_pdf_ws(bench: Benchmark, cfg: &CmpConfig, opts: &Options) -> PdfWsPair {
    let comp = build_workload(bench, cfg, opts);
    let pdf = run_sim(&comp, cfg, opts, SchedulerKind::Pdf);
    let ws = run_sim(&comp, cfg, opts, SchedulerKind::WorkStealing);
    let mut seq_cfg = cfg.clone();
    seq_cfg.num_cores = 1;
    seq_cfg.name = format!("{}-seq", cfg.name);
    let sequential = run_sim(&comp, &seq_cfg, opts, SchedulerKind::Pdf);
    PdfWsPair { pdf, ws, sequential }
}

/// Print the standard header for PDF-vs-WS tables.
pub fn print_header(extra: &str) {
    println!("app\tconfig\tcores\tsched\tcycles\tspeedup\tl2_mpki\tbw_util\t{extra}");
}

/// Print one row of the standard PDF-vs-WS table.
pub fn print_row(
    bench: Benchmark,
    cfg_name: &str,
    cores: usize,
    r: &SimResult,
    seq: &SimResult,
    extra: &str,
) {
    println!(
        "{}\t{}\t{}\t{}\t{}\t{:.3}\t{:.4}\t{:.3}\t{}",
        bench,
        cfg_name,
        cores,
        r.scheduler,
        r.cycles,
        r.speedup_over(seq),
        r.l2_mpki(),
        r.bandwidth_utilization,
        extra
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parsing() {
        let o = Options::parse(
            ["--scale", "64", "--quick", "--app", "mergesort", "--foo"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(o.scale, 64);
        assert!(o.quick);
        assert_eq!(o.app, Some(Benchmark::Mergesort));
        assert_eq!(o.rest, vec!["--foo".to_string()]);
        assert_eq!(o.benchmarks(), vec![Benchmark::Mergesort]);
        assert_eq!(o.effective_scale(), 256);
    }

    #[test]
    fn defaults() {
        let o = Options::default();
        assert_eq!(o.scale, 32);
        assert_eq!(o.benchmarks().len(), 3);
        assert_eq!(o.effective_scale(), 32);
    }

    #[test]
    fn quick_pdf_ws_run_is_consistent() {
        let opts = Options { quick: true, scale: 512, ..Options::default() };
        let cfg = CmpConfig::default_with_cores(4).unwrap();
        let pair = run_pdf_ws(Benchmark::Mergesort, &cfg, &opts);
        assert_eq!(pair.pdf.instructions, pair.ws.instructions);
        assert!(pair.pdf.cycles > 0 && pair.ws.cycles > 0);
        assert!(pair.sequential.cycles >= pair.pdf.cycles);
    }
}
