//! The CI regression gate: compare a fresh `BENCH_sim.json` against the
//! committed `bench/baseline.json`.
//!
//! Three kinds of checks, per baseline record (matched by name):
//!
//! * **deterministic metrics** (`total_misses`, `l3_misses`, `tasks`,
//!   `cycles`, `clusters`, `batch_width`) must be *exactly* equal — they
//!   are pure functions of the simulated configuration (and, for
//!   `batch_width`, of the sweep planner's grouping), so any drift is a
//!   behaviour change, not noise;
//! * **throughput** (`tasks_per_sec`) must be within a relative tolerance
//!   (CI uses ±20%).  A drop beyond tolerance **fails** the gate; a gain
//!   beyond tolerance only **warns**, so maintainers notice and refresh the
//!   baseline instead of banking the headroom silently;
//! * **memory footprint** (`trace_bytes`, `peak_alloc_estimate`) must not
//!   grow beyond the same tolerance — growth past it **fails** (a layout
//!   regression), shrinkage past it **warns** (refresh the baseline to
//!   bank the saving).  The footprints are deterministic, but they are
//!   toleranced rather than exact-matched so allocator-capacity rounding
//!   (`Vec` growth policy changes across toolchains) cannot flake CI.
//!
//! `compile_ms` — the stream/geometry compilation split of `wall_ms` — is
//! *not* gated: it is wall-clock noise at the millisecond scale.  It is
//! surfaced in the [`summary_line`] trajectory instead.
//!
//! Reports taken at different scale/quick settings are incomparable and
//! fail fast.  Records present in the current run but absent from the
//! baseline warn (the baseline wants refreshing); baseline records missing
//! from the current run fail (coverage loss).

use super::{BenchRecord, BenchReport};

/// Outcome of one record (or report-level) check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GateStatus {
    /// Within tolerance.
    Ok,
    /// Out of tolerance in the good direction, or a coverage addition.
    Warn,
    /// Regression (or incomparable/missing data).
    Fail,
}

/// One line of gate output.
#[derive(Clone, Debug)]
pub struct GateLine {
    /// Record name (or `"<report>"` for report-level checks).
    pub name: String,
    /// Check outcome.
    pub status: GateStatus,
    /// Human-readable explanation.
    pub message: String,
}

/// The full gate verdict.
#[derive(Clone, Debug, Default)]
pub struct GateResult {
    /// Per-record (and report-level) outcomes.
    pub lines: Vec<GateLine>,
}

impl GateResult {
    fn push(&mut self, name: impl Into<String>, status: GateStatus, message: impl Into<String>) {
        self.lines.push(GateLine {
            name: name.into(),
            status,
            message: message.into(),
        });
    }

    /// Whether any check failed.
    pub fn failed(&self) -> bool {
        self.lines.iter().any(|l| l.status == GateStatus::Fail)
    }

    /// Whether any check warned.
    pub fn warned(&self) -> bool {
        self.lines.iter().any(|l| l.status == GateStatus::Warn)
    }

    /// Render the verdict as one line per check.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let tag = match line.status {
                GateStatus::Ok => "ok  ",
                GateStatus::Warn => "WARN",
                GateStatus::Fail => "FAIL",
            };
            out.push_str(&format!("{tag}  {}: {}\n", line.name, line.message));
        }
        out
    }
}

/// Compare `current` against `baseline` with the given relative
/// `tolerance` on `tasks_per_sec` (0.20 = ±20%).
pub fn compare(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> GateResult {
    let mut result = GateResult::default();
    if (current.scale, current.quick) != (baseline.scale, baseline.quick) {
        result.push(
            "<report>",
            GateStatus::Fail,
            format!(
                "incomparable settings: current scale={}/quick={}, baseline scale={}/quick={} \
                 (regenerate bench/baseline.json with the CI invocation)",
                current.scale, current.quick, baseline.scale, baseline.quick
            ),
        );
        return result;
    }

    for base in &baseline.records {
        let Some(cur) = current.find(&base.name) else {
            result.push(
                &base.name,
                GateStatus::Fail,
                "present in baseline but missing from the current run",
            );
            continue;
        };
        check_record(&mut result, cur, base, tolerance);
    }
    for cur in &current.records {
        if baseline.find(&cur.name).is_none() {
            result.push(
                &cur.name,
                GateStatus::Warn,
                "new record not in baseline (refresh bench/baseline.json)",
            );
        }
    }
    result
}

fn check_record(result: &mut GateResult, cur: &BenchRecord, base: &BenchRecord, tolerance: f64) {
    // Determinism first: identical settings must simulate identical work.
    let drift: Vec<String> = [
        ("total_misses", cur.total_misses, base.total_misses),
        ("l3_misses", cur.l3_misses, base.l3_misses),
        ("tasks", cur.tasks, base.tasks),
        ("cycles", cur.cycles, base.cycles),
        ("clusters", cur.clusters, base.clusters),
        ("batch_width", cur.batch_width, base.batch_width),
    ]
    .into_iter()
    .filter(|(_, c, b)| c != b)
    .map(|(k, c, b)| format!("{k} {b} -> {c}"))
    .collect();
    if !drift.is_empty() {
        result.push(
            &cur.name,
            GateStatus::Fail,
            format!(
                "deterministic metrics drifted ({}): simulator behaviour changed — \
                 if intended, refresh bench/baseline.json",
                drift.join(", ")
            ),
        );
        return;
    }

    // Memory footprint: deterministic, but toleranced (see module docs).
    // Growth is the regression direction.  Every metric is checked — a
    // record can carry several lines (e.g. one footprint warning *and* a
    // throughput failure below).
    for (metric, cur_bytes, base_bytes) in [
        ("trace_bytes", cur.trace_bytes, base.trace_bytes),
        (
            "peak_alloc_estimate",
            cur.peak_alloc_estimate,
            base.peak_alloc_estimate,
        ),
    ] {
        if base_bytes == 0 {
            continue;
        }
        let ratio = cur_bytes as f64 / base_bytes as f64;
        let pct = (ratio - 1.0) * 100.0;
        if ratio > 1.0 + tolerance {
            result.push(
                &cur.name,
                GateStatus::Fail,
                format!(
                    "memory-footprint regression: {metric} {base_bytes} -> {cur_bytes} bytes \
                     ({pct:+.1}%, tolerance ±{:.0}%)",
                    tolerance * 100.0
                ),
            );
        } else if ratio < 1.0 - tolerance {
            result.push(
                &cur.name,
                GateStatus::Warn,
                format!("{metric} shrank {pct:+.1}% — refresh bench/baseline.json to bank it"),
            );
        }
    }

    if base.tasks_per_sec <= 0.0 {
        result.push(&cur.name, GateStatus::Ok, "baseline has no throughput");
        return;
    }
    let ratio = cur.tasks_per_sec / base.tasks_per_sec;
    let pct = (ratio - 1.0) * 100.0;
    if ratio < 1.0 - tolerance {
        result.push(
            &cur.name,
            GateStatus::Fail,
            format!(
                "throughput regression: {:.0} -> {:.0} tasks/s ({pct:+.1}%, tolerance ±{:.0}%)",
                base.tasks_per_sec,
                cur.tasks_per_sec,
                tolerance * 100.0
            ),
        );
    } else if ratio > 1.0 + tolerance {
        result.push(
            &cur.name,
            GateStatus::Warn,
            format!("throughput improved {pct:+.1}% — refresh bench/baseline.json to bank it"),
        );
    } else {
        result.push(
            &cur.name,
            GateStatus::Ok,
            format!("{:.0} tasks/s ({pct:+.1}%)", cur.tasks_per_sec),
        );
    }
}

/// One-line old-vs-new summary of the headline record (`macro/quick_sweep`),
/// printed by `bench_gate` so CI step output shows the perf/memory
/// trajectory without downloading the artifact.
pub fn summary_line(current: &BenchReport, baseline: &BenchReport) -> String {
    let name = "macro/quick_sweep";
    match (baseline.find(name), current.find(name)) {
        (Some(base), Some(cur)) => {
            let tput_pct = if base.tasks_per_sec > 0.0 {
                (cur.tasks_per_sec / base.tasks_per_sec - 1.0) * 100.0
            } else {
                0.0
            };
            let mem_pct = if base.trace_bytes > 0 {
                (cur.trace_bytes as f64 / base.trace_bytes as f64 - 1.0) * 100.0
            } else {
                0.0
            };
            format!(
                "summary: {name} tasks/s {:.0} -> {:.0} ({tput_pct:+.1}%), \
                 trace_bytes {} -> {} ({mem_pct:+.1}%), \
                 compile_ms {:.1} -> {:.1}",
                base.tasks_per_sec,
                cur.tasks_per_sec,
                base.trace_bytes,
                cur.trace_bytes,
                base.compile_ms,
                cur.compile_ms
            )
        }
        _ => format!("summary: {name} missing from baseline or current run"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, tasks_per_sec: f64) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            wall_ms: 100.0,
            tasks_per_sec,
            total_misses: 500,
            l3_misses: 120,
            tasks: 1000,
            cycles: 42_000,
            clusters: 4,
            trace_bytes: 100_000,
            peak_alloc_estimate: 200_000,
            compile_ms: 4.0,
            batch_width: 0,
            speedup_vs_reference: None,
        }
    }

    fn report(records: Vec<BenchRecord>) -> BenchReport {
        BenchReport {
            scale: 256,
            quick: true,
            records,
        }
    }

    #[test]
    fn within_tolerance_passes() {
        let base = report(vec![record("a", 1000.0)]);
        let cur = report(vec![record("a", 900.0)]);
        let g = compare(&cur, &base, 0.2);
        assert!(!g.failed() && !g.warned(), "{}", g.to_text());
    }

    #[test]
    fn regression_fails_and_improvement_warns() {
        let base = report(vec![record("a", 1000.0), record("b", 1000.0)]);
        let cur = report(vec![record("a", 700.0), record("b", 1500.0)]);
        let g = compare(&cur, &base, 0.2);
        assert!(g.failed());
        assert!(g.warned());
        let text = g.to_text();
        assert!(text.contains("FAIL  a: throughput regression"), "{text}");
        assert!(text.contains("WARN  b: throughput improved"), "{text}");
    }

    #[test]
    fn deterministic_drift_fails_even_when_faster() {
        let base = report(vec![record("a", 1000.0)]);
        let mut fast_but_wrong = record("a", 5000.0);
        fast_but_wrong.total_misses = 499;
        let cur = report(vec![fast_but_wrong]);
        let g = compare(&cur, &base, 0.2);
        assert!(g.failed());
        assert!(g.to_text().contains("deterministic metrics drifted"));
    }

    #[test]
    fn batch_width_drift_is_a_deterministic_failure() {
        // The sweep planner regrouping a batched record is a behaviour
        // change, not noise — exact-matched like the simulated metrics.
        let base = report(vec![record("macro/fig5_mem_latency_batch", 1000.0)]);
        let mut regrouped = record("macro/fig5_mem_latency_batch", 1000.0);
        regrouped.batch_width = 3;
        let g = compare(&report(vec![regrouped]), &base, 0.2);
        assert!(g.failed());
        assert!(
            g.to_text().contains("batch_width 0 -> 3"),
            "{}",
            g.to_text()
        );
    }

    #[test]
    fn l3_and_cluster_drift_are_deterministic_failures() {
        // The three-level metrics are as deterministic as the L2 ones: a
        // changed L3 miss count or cluster shape is a behaviour change.
        let base = report(vec![record("macro/scaling_profile", 1000.0)]);
        let mut drifted = record("macro/scaling_profile", 1000.0);
        drifted.l3_misses = 119;
        drifted.clusters = 8;
        let g = compare(&report(vec![drifted]), &base, 0.2);
        assert!(g.failed());
        let text = g.to_text();
        assert!(text.contains("l3_misses 120 -> 119"), "{text}");
        assert!(text.contains("clusters 4 -> 8"), "{text}");
    }

    #[test]
    fn missing_record_fails_new_record_warns() {
        let base = report(vec![record("gone", 1000.0)]);
        let cur = report(vec![record("new", 1000.0)]);
        let g = compare(&cur, &base, 0.2);
        assert!(g.failed());
        assert!(g.warned());
    }

    #[test]
    fn memory_growth_fails_and_shrinkage_warns() {
        let base = report(vec![record("a", 1000.0), record("b", 1000.0)]);
        let mut bloated = record("a", 1000.0);
        bloated.trace_bytes = 130_000; // +30% > ±20%
        let mut slimmed = record("b", 1000.0);
        slimmed.peak_alloc_estimate = 100_000; // -50%
        let g = compare(&report(vec![bloated, slimmed]), &base, 0.2);
        assert!(g.failed());
        assert!(g.warned());
        let text = g.to_text();
        assert!(
            text.contains("FAIL  a: memory-footprint regression"),
            "{text}"
        );
        assert!(
            text.contains("WARN  b: peak_alloc_estimate shrank"),
            "{text}"
        );
        // Within tolerance passes silently.
        let mut ok = record("a", 1000.0);
        ok.trace_bytes = 110_000;
        let g = compare(&report(vec![ok, record("b", 1000.0)]), &base, 0.2);
        assert!(!g.failed() && !g.warned(), "{}", g.to_text());
    }

    #[test]
    fn memory_warning_does_not_mask_other_regressions() {
        // A beyond-tolerance shrink on one metric must not short-circuit
        // the remaining memory check or the throughput check.
        let base = report(vec![record("a", 1000.0)]);
        let mut mixed = record("a", 500.0); // -50% throughput: must FAIL
        mixed.trace_bytes = 50_000; // -50%: warns
        mixed.peak_alloc_estimate = 400_000; // +100%: must also FAIL
        let g = compare(&report(vec![mixed]), &base, 0.2);
        let text = g.to_text();
        assert!(text.contains("trace_bytes shrank"), "{text}");
        assert!(
            text.contains("peak_alloc_estimate 200000 -> 400000"),
            "{text}"
        );
        assert!(text.contains("throughput regression"), "{text}");
        assert!(g.failed());
    }

    #[test]
    fn summary_line_reports_the_quick_sweep() {
        let base = report(vec![record("macro/quick_sweep", 1000.0)]);
        let mut faster = record("macro/quick_sweep", 1500.0);
        faster.trace_bytes = 50_000;
        let cur = report(vec![faster]);
        let line = summary_line(&cur, &base);
        assert!(line.contains("tasks/s 1000 -> 1500 (+50.0%)"), "{line}");
        assert!(
            line.contains("trace_bytes 100000 -> 50000 (-50.0%)"),
            "{line}"
        );
        assert!(line.contains("compile_ms 4.0 -> 4.0"), "{line}");
        let empty = report(vec![]);
        assert!(summary_line(&empty, &base).contains("missing"));
    }

    #[test]
    fn incomparable_settings_fail_fast() {
        let base = report(vec![record("a", 1000.0)]);
        let mut cur = report(vec![record("a", 1000.0)]);
        cur.scale = 512;
        let g = compare(&cur, &base, 0.2);
        assert!(g.failed());
        assert_eq!(g.lines.len(), 1);
        assert!(g.to_text().contains("incomparable settings"));
    }
}
