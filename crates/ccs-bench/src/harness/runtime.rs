//! Raw-runtime microbenches: the native `ccs-runtime` pool with no
//! simulator in the loop (DESIGN.md §14).
//!
//! Three records ride in `BENCH_sim.json` next to the simulator benches:
//!
//! * `runtime/forkjoin_fib` — recursive binary [`join`] over `fib(N)`, one
//!   task per call node; the classic fork-join latency probe.  Exercises
//!   the local LIFO pop fast path and the stack-latch join.
//! * `runtime/spawn_fanout` — a burst of detached jobs pushed from outside
//!   the pool; exercises the injector, batch stealing, and above all the
//!   publish-side wake fast path (the seed pool took a mutex per push —
//!   this record is the one that moved when that lock died).
//! * `runtime/sweep_parallel` — a real quick figure sweep executed with
//!   `Experiment::parallelism(8)` on the pool, after asserting the report
//!   is byte-identical to the sequential run.  Its simulated metrics are
//!   deterministic and exact-gated like every macro record.
//!
//! The two synthetic records carry zero simulated metrics (misses, cycles,
//! footprints): the gate exact-matches the zeros and skips the footprint
//! ratio checks, leaving `tasks_per_sec` — real tasks over wall-clock — as
//! the gated throughput signal.

use ccs_experiment::Options;
use ccs_runtime::{join, Policy, ThreadPool};

use super::{per_second, record_from_report, timed, BenchRecord};
use crate::figs;

/// Worker count for the synthetic runtime records: fixed (not
/// `available_parallelism`) so trajectories compare across machines.
const RUNTIME_THREADS: usize = 4;
/// Fork-join depth: `fib(22)` visits 57 313 call nodes, ~5 ms a round on a
/// developer box — big enough to time, small enough for best-of trials.
const FIB_N: u64 = 22;
/// Fan-out burst size for the spawn-heavy record.
const SPAWNS: u64 = 20_000;
/// The quick sweep re-run under pool parallelism for `runtime/sweep_parallel`.
const PARALLEL_SWEEP: &str = "fig4_l2_hit_time";

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

/// Number of `fib` call nodes the recursion visits (each is one task).
fn fib_nodes(n: u64) -> u64 {
    if n < 2 {
        1
    } else {
        1 + fib_nodes(n - 1) + fib_nodes(n - 2)
    }
}

fn iterative_fib(n: u64) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..n {
        let next = a + b;
        a = b;
        b = next;
    }
    a
}

/// A synthetic runtime record: real tasks over wall-clock, zero simulated
/// metrics (exact-gated as zeros; footprint ratio checks skip on 0 bytes).
fn runtime_record(name: &str, tasks: u64, wall_ms: f64) -> BenchRecord {
    BenchRecord {
        name: name.into(),
        wall_ms,
        tasks_per_sec: per_second(tasks, wall_ms),
        total_misses: 0,
        l3_misses: 0,
        tasks,
        cycles: 0,
        clusters: 0,
        trace_bytes: 0,
        peak_alloc_estimate: 0,
        compile_ms: 0.0,
        batch_width: 0,
        speedup_vs_reference: None,
    }
}

/// Run the raw-runtime microbenches and append their records.
///
/// `quick_opts` must be the quick event-engine options (the sweep record
/// has to stay comparable across PRs regardless of `--scale`).  Timings
/// are best-of-`trials` like every other timed record.
pub(super) fn runtime_benches(records: &mut Vec<BenchRecord>, quick_opts: &Options, trials: u32) {
    let trials = trials.max(1);
    let pool = ThreadPool::new(RUNTIME_THREADS, Policy::WorkStealing);

    // Fork-join: one task per fib call node.
    let nodes = fib_nodes(FIB_N);
    let expect = iterative_fib(FIB_N);
    let mut best_ms = f64::INFINITY;
    for _ in 0..trials {
        let (value, ms) = timed(|| pool.install(|| fib(FIB_N)));
        assert_eq!(value, expect, "fork-join fib miscomputed");
        best_ms = best_ms.min(ms);
    }
    records.push(runtime_record("runtime/forkjoin_fib", nodes, best_ms));

    // Spawn-heavy fan-out: detached jobs racing the publish/wake path.
    let mut best_ms = f64::INFINITY;
    for _ in 0..trials {
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (_, ms) = timed(|| {
            for _ in 0..SPAWNS {
                let c = std::sync::Arc::clone(&counter);
                pool.spawn_detached(move || {
                    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
            while counter.load(std::sync::atomic::Ordering::Relaxed) != SPAWNS {
                std::thread::yield_now();
            }
        });
        best_ms = best_ms.min(ms);
    }
    records.push(runtime_record("runtime/spawn_fanout", SPAWNS, best_ms));
    drop(pool);

    // A real sweep on the pool: quick options, experiment parallelism 8,
    // asserted byte-identical to the sequential run of the same sweep.
    let (_, run) = figs::figure_sweeps()
        .into_iter()
        .find(|(name, _)| *name == PARALLEL_SWEEP)
        .expect("parallel-sweep bench target exists");
    let mut sequential = quick_opts.clone();
    sequential.quick = true;
    sequential.parallel = 1;
    let mut parallel = sequential.clone();
    parallel.parallel = 8;
    let sequential_report = run(&sequential);
    let (parallel_report, mut best_ms) = timed(|| run(&parallel));
    for _ in 1..trials {
        let (_, ms) = timed(|| run(&parallel));
        best_ms = best_ms.min(ms);
    }
    assert_eq!(
        parallel_report.to_json(),
        sequential_report.to_json(),
        "parallel sweep diverged from the sequential run on {PARALLEL_SWEEP}"
    );
    records.push(record_from_report(
        "runtime/sweep_parallel",
        &parallel_report,
        best_ms,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_node_count_matches_record_docs() {
        assert_eq!(fib_nodes(FIB_N), 57_313);
        assert_eq!(iterative_fib(FIB_N), 17_711);
    }

    #[test]
    fn runtime_records_carry_zero_simulated_metrics() {
        let r = runtime_record("runtime/forkjoin_fib", 100, 50.0);
        assert_eq!(r.total_misses, 0);
        assert_eq!(r.trace_bytes, 0);
        assert_eq!(r.peak_alloc_estimate, 0);
        assert!((r.tasks_per_sec - 2000.0).abs() < 1e-9);
    }
}
