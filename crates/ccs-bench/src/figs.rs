//! The paper's figure sweeps, described with the [`Experiment`] builder.
//!
//! Each function returns a serialisable [`Report`]; the binaries in
//! `src/bin/` print it as TSV and optionally emit JSON.  `run_all` merges
//! all of them into one machine-readable trajectory.

use ccs_experiment::{Experiment, Options, Report, WorkloadSpec};
use ccs_sched::SchedulerKind;
use ccs_sim::CmpConfig;
use ccs_workloads::{hashjoin, mergesort, Benchmark, HashJoinParams, MergesortParams};

/// The PDF-vs-WS scheduler pair every figure compares.
fn pdf_ws() -> [SchedulerKind; 2] {
    [SchedulerKind::Pdf, SchedulerKind::WorkStealing]
}

/// A named figure sweep.
pub type Sweep = (&'static str, fn(&Options) -> Report);

/// The canonical figure-sweep list: what `run_all` executes and what the
/// bench harness times (`macro/<name>` records).  Extend figures here so
/// both stay in lockstep; the §5.5 extras sweep is appended separately by
/// `run_all` in full mode.
pub fn figure_sweeps() -> Vec<Sweep> {
    vec![
        ("fig2_default_configs", fig2),
        ("fig3_single_tech", fig3),
        ("fig4_l2_hit_time", fig4),
        ("fig5_mem_latency", fig5),
        ("fig6_granularity", fig6),
        ("sec54_coarse_vs_fine", coarse_vs_fine),
        ("latency_profile", latency_profile),
        ("scaling_profile", scaling_profile),
    ]
}

/// Figure 2: PDF vs WS on the default (Table 2) CMP configurations —
/// speedup over sequential execution and L2 misses per 1000 instructions for
/// LU (1–16 cores), Hash Join and Mergesort (1–32 cores).
pub fn fig2(opts: &Options) -> Report {
    let mut report = Report::new("fig2", opts.effective_scale());
    for bench in opts.benchmarks() {
        let configs = CmpConfig::default_configs().into_iter().filter(|cfg| {
            // The paper reports LU only up to 16 cores (the 2Kx2K input is
            // smaller than the 32-core L2).
            let lu_cap = bench != Benchmark::Lu || cfg.num_cores <= 16;
            let quick_cap = !opts.quick || cfg.num_cores <= 8;
            lu_cap && quick_cap
        });
        report.merge(
            Experiment::new(bench)
                .name("fig2")
                .configs(configs)
                .schedulers(pdf_ws())
                .scale(opts.scale)
                .quick(opts.quick)
                .parallelism(opts.parallel)
                .engine(opts.engine)
                .run(),
        );
    }
    report
}

/// Figure 3: Hash Join and Mergesort across the 45 nm single-technology
/// design points (Table 3, 1–26 cores), PDF vs WS.
///
/// Qualitative features to look for (Section 5.2): PDF wins at every design
/// point; Hash Join bottoms out around ~18 cores (it becomes bandwidth-bound
/// and the shrinking cache then hurts), while Mergesort keeps improving to
/// 24–26 cores.
pub fn fig3(opts: &Options) -> Report {
    let configs: Vec<CmpConfig> = CmpConfig::single_tech_45nm()
        .into_iter()
        .filter(|cfg| !opts.quick || cfg.num_cores % 8 == 0 || cfg.num_cores == 1)
        .collect();
    let mut report = Report::new("fig3", opts.effective_scale());
    for bench in opts
        .benchmarks()
        .into_iter()
        .filter(|b| *b != Benchmark::Lu)
    {
        report.merge(
            Experiment::new(bench)
                .name("fig3")
                .configs(configs.iter().cloned())
                .schedulers(pdf_ws())
                .scale(opts.scale)
                .quick(opts.quick)
                .parallelism(opts.parallel)
                .engine(opts.engine)
                .run(),
        );
    }
    report
}

/// Figure 4: sensitivity to the L2 hit time on the 16-core default
/// configuration (7 cycles ≈ a fast distributed L2 bank, 19 cycles = the
/// default monolithic shared L2).
///
/// The headline comparison (Section 5.3): PDF with the *slow* 19-cycle L2
/// still beats WS with the *fast* 7-cycle L2 — use
/// [`pdf_slow_beats_ws_fast`] on the returned report to check it.
pub fn fig4(opts: &Options) -> Report {
    let base = CmpConfig::default_with_cores(16).expect("16-core default config");
    let configs = [7u64, 19].map(|hit| base.clone().with_l2_hit_latency(hit));
    let mut report = Report::new("fig4", opts.effective_scale());
    for bench in opts
        .benchmarks()
        .into_iter()
        .filter(|b| *b != Benchmark::Lu)
    {
        report.merge(
            Experiment::new(bench)
                .name("fig4")
                .configs(configs.iter().cloned())
                .schedulers(pdf_ws())
                .scale(opts.scale)
                .quick(opts.quick)
                .parallelism(opts.parallel)
                .engine(opts.engine)
                .run(),
        );
    }
    report
}

/// The Section 5.3 check on a [`fig4`] report: for each workload, does PDF on
/// the slow (19-cycle) L2 still beat WS on the fast (7-cycle) L2?
pub fn pdf_slow_beats_ws_fast(report: &Report) -> Vec<(String, bool)> {
    report
        .workloads()
        .into_iter()
        .filter_map(|workload| {
            let pdf_slow = report
                .for_workload(&workload)
                .find(|r| r.scheduler == "pdf" && r.config.contains("l2hit19"))?;
            let ws_fast = report
                .for_workload(&workload)
                .find(|r| r.scheduler == "ws" && r.config.contains("l2hit7"))?;
            Some((workload.clone(), pdf_slow.cycles <= ws_fast.cycles))
        })
        .collect()
}

/// Figure 5: sensitivity to the main-memory latency (100–1100 cycles) on the
/// 16-core default configuration, Hash Join and Mergesort, PDF vs WS.
pub fn fig5(opts: &Options) -> Report {
    let base = CmpConfig::default_with_cores(16).expect("16-core default config");
    let latencies: &[u64] = if opts.quick {
        &[100, 700]
    } else {
        &[100, 300, 500, 700, 900, 1100]
    };
    let configs: Vec<CmpConfig> = latencies
        .iter()
        .map(|&lat| base.clone().with_memory_latency(lat))
        .collect();
    let mut report = Report::new("fig5", opts.effective_scale());
    for bench in opts
        .benchmarks()
        .into_iter()
        .filter(|b| *b != Benchmark::Lu)
    {
        report.merge(
            Experiment::new(bench)
                .name("fig5")
                .configs(configs.iter().cloned())
                .schedulers(pdf_ws())
                .scale(opts.scale)
                .quick(opts.quick)
                .parallelism(opts.parallel)
                .engine(opts.engine)
                .run(),
        );
    }
    report
}

/// Figure 6: impact of task granularity on Mergesort — L2 misses per 1000
/// instructions and execution time as a function of the task working-set
/// size (8 MB down to 32 KB in the paper), on the 32-core and 16-core
/// default configurations, PDF vs WS.
///
/// The task working set of each point is encoded in the workload name
/// (`"mergesort/ws=32768"`).
pub fn fig6(opts: &Options) -> Report {
    let scale = opts.effective_scale();
    let n_items = ((32u64 << 20) / scale).max(1 << 14);
    // Paper sweep: 8M, 4M, ..., 32K bytes of task working set; scaled down.
    let mut sizes: Vec<u64> = (0..9)
        .map(|i| ((8u64 << 20) >> i) / scale)
        .map(|b| b.max(4 * 1024))
        .collect();
    sizes.dedup();
    let core_counts: &[usize] = if opts.quick { &[16] } else { &[32, 16] };

    let workloads = sizes.into_iter().map(|ws| {
        let params = MergesortParams::new(n_items).with_task_working_set(ws);
        WorkloadSpec::fixed(format!("mergesort/ws={ws}"), mergesort::build(&params))
    });
    Experiment::named("fig6")
        .workloads(workloads)
        .cores(core_counts.to_vec())
        .schedulers(pdf_ws())
        .scale(opts.scale)
        .quick(opts.quick)
        .sequential_baseline(false)
        .parallelism(opts.parallel)
        .engine(opts.engine)
        .run()
}

/// Section 5.4: the original coarse-grained codes (serial merge / one probe
/// task per sub-partition) versus the fine-grained versions, on the 16-core
/// default configuration (the paper measured up to a 2.85× gap).
pub fn coarse_vs_fine(opts: &Options) -> Report {
    let scale = opts.effective_scale();
    let cfg = CmpConfig::default_with_cores(16).expect("default config");
    let scaled_l2 = (cfg.l2.capacity / scale).max(16 * 1024);
    let n_items = ((32u64 << 20) / scale).max(1 << 14);
    let build_bytes = ((341u64 << 20) / scale).max(1 << 20);

    let ms_fine = mergesort::build(
        &MergesortParams::new(n_items).with_task_working_set((scaled_l2 / 32).max(16 * 1024)),
    );
    let ms_coarse = mergesort::build(&MergesortParams::new(n_items).coarse_grained());
    let hj_fine = hashjoin::build(&HashJoinParams::new(build_bytes).with_l2_bytes(scaled_l2));
    let hj_coarse = hashjoin::build(
        &HashJoinParams::new(build_bytes)
            .with_l2_bytes(scaled_l2)
            .coarse_grained(),
    );

    Experiment::named("sec54-coarse-vs-fine")
        .workload(WorkloadSpec::fixed("mergesort/fine", ms_fine))
        .workload(WorkloadSpec::fixed("mergesort/coarse", ms_coarse))
        .workload(WorkloadSpec::fixed("hashjoin/fine", hj_fine))
        .workload(WorkloadSpec::fixed("hashjoin/coarse", hj_coarse))
        .config(cfg)
        .schedulers(pdf_ws())
        .scale(opts.scale)
        .quick(opts.quick)
        .sequential_baseline(false)
        .parallelism(opts.parallel)
        .engine(opts.engine)
        .run()
}

/// A dense single-core memory-latency profile (100–1100 cycles on the
/// 1-core default configuration).  Every point shares one machine shape, so
/// under `--engine batch` each workload records a single event-driven pass
/// and replays the remaining latencies from the tape — this sweep is the
/// batch engine's honest showcase (and the harness times it both ways).
pub fn latency_profile(opts: &Options) -> Report {
    let base = CmpConfig::default_with_cores(1).expect("single-core default config");
    // The grid stays dense even in quick mode: batching makes the extra
    // latency points nearly free (each is one O(misses) replay), and the
    // single-core event side is cheap enough for CI.
    let configs: Vec<CmpConfig> = (100..=1100)
        .step_by(100)
        .map(|lat| base.clone().with_memory_latency(lat))
        .collect();
    let mut report = Report::new("latency_profile", opts.effective_scale());
    for bench in opts
        .benchmarks()
        .into_iter()
        .filter(|b| *b != Benchmark::Lu)
    {
        report.merge(
            Experiment::new(bench)
                .name("latency_profile")
                .configs(configs.iter().cloned())
                .schedulers(pdf_ws())
                .scale(opts.scale)
                .quick(opts.quick)
                .sequential_baseline(false)
                .parallelism(opts.parallel)
                .engine(opts.engine)
                .run(),
        );
    }
    report
}

/// The many-core scaling profile (DESIGN.md §12): an extrapolation sweep
/// past the paper's 32-core design space.  Each core count is simulated
/// twice — a flat machine (every core sharing one L2) and a clustered one
/// (32-core clusters with private L2 slices, backed by a shared L3 twice
/// the aggregate L2 capacity) — so the constructive-sharing question of
/// the paper can be asked of both topologies at scale.  Quick mode keeps
/// 64- and 256-core points (CI tracks the 256-core clustered record);
/// the full sweep goes to 1024 cores.
pub fn scaling_profile(opts: &Options) -> Report {
    let core_counts: &[usize] = if opts.quick {
        &[64, 256]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let mut configs: Vec<CmpConfig> = Vec::new();
    for &cores in core_counts {
        let flat = CmpConfig::many_core(cores);
        let l3_mb = (flat.l2.capacity >> 20) * 2;
        configs.push(flat.clone().clustered(cores / 32).with_l3_mb(l3_mb));
        configs.push(flat);
    }
    let mut report = Report::new("scaling_profile", opts.effective_scale());
    for bench in opts
        .benchmarks()
        .into_iter()
        .filter(|b| *b != Benchmark::Lu)
    {
        report.merge(
            Experiment::new(bench)
                .name("scaling_profile")
                .configs(configs.iter().cloned())
                .schedulers(pdf_ws())
                .scale(opts.scale)
                .quick(opts.quick)
                .sequential_baseline(false)
                .parallelism(opts.parallel)
                .engine(opts.engine)
                .run(),
        );
    }
    report
}

/// Section 5.5: the secondary benchmarks through the open workload registry
/// — Quicksort (unbalanced divide), Matmul (small working set) and Heat
/// (bandwidth-bound stencil) on the 8-core default configuration, PDF vs WS.
pub fn extras(opts: &Options) -> Report {
    Experiment::named("sec55-extras")
        .workloads(["quicksort", "matmul", "heat"])
        .cores(8)
        .schedulers(pdf_ws())
        .scale(opts.scale)
        .quick(opts.quick)
        .parallelism(opts.parallel)
        .engine(opts.engine)
        .run()
}

/// The `--workloads` sweep: whatever registry specs the command line
/// selected, on the 8-core default configuration, PDF vs WS.  `run_all`
/// substitutes this for the figure sweeps when `--workloads` is given.
pub fn workload_sweep(opts: &Options) -> Report {
    opts.experiment("workloads")
        .cores(8)
        .schedulers(pdf_ws())
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(app: Benchmark) -> Options {
        Options {
            quick: true,
            scale: 1024,
            app: Some(app),
            ..Options::default()
        }
    }

    #[test]
    fn fig3_skips_lu_and_respects_quick_filter() {
        let report = fig3(&quick_opts(Benchmark::Lu));
        assert!(report.is_empty(), "fig3 has no LU panel");
        let report = fig3(&quick_opts(Benchmark::Mergesort));
        assert!(!report.is_empty());
        assert!(report
            .records
            .iter()
            .all(|r| r.cores == 1 || r.cores % 8 == 0));
        assert!(report.records.iter().all(|r| r.config.starts_with("45nm-")));
    }

    #[test]
    fn fig4_configs_are_distinguishable_and_checkable() {
        let report = fig4(&quick_opts(Benchmark::Mergesort));
        assert!(report.records.iter().any(|r| r.config.contains("l2hit7")));
        assert!(report.records.iter().any(|r| r.config.contains("l2hit19")));
        let checks = pdf_slow_beats_ws_fast(&report);
        assert_eq!(checks.len(), 1, "one workload selected");
    }

    #[test]
    fn extras_cover_the_three_secondary_benchmarks() {
        let opts = Options {
            quick: true,
            scale: 1024,
            parallel: 4,
            ..Options::default()
        };
        let report = extras(&opts);
        assert_eq!(
            report.workloads(),
            vec![
                "heat".to_string(),
                "matmul".to_string(),
                "quicksort".to_string()
            ]
        );
        assert_eq!(report.len(), 3 * 2, "PDF and WS per workload");
        assert!(report.records.iter().all(|r| r.speedup_over_seq.is_some()));
    }

    #[test]
    fn workload_sweep_honors_registry_specs() {
        let opts = Options::parse(
            [
                "--workloads",
                "matmul:n=64,heat:rows=64,cols=64",
                "--scale",
                "1024",
                "--quick",
            ]
            .into_iter()
            .map(String::from),
        );
        let report = workload_sweep(&opts);
        assert_eq!(
            report.workloads(),
            vec![
                "heat:cols=64,rows=64".to_string(),
                "matmul:n=64".to_string()
            ]
        );
    }

    #[test]
    fn latency_profile_batch_engine_is_byte_identical_and_replayed() {
        let mut opts = quick_opts(Benchmark::Mergesort);
        let event = latency_profile(&opts);
        opts.engine = ccs_sim::SimEngine::Batch;
        let batched = latency_profile(&opts);
        assert_eq!(event.to_json(), batched.to_json());
        // One 1-core machine shape: the whole grid is one batch group.
        assert!(batched
            .records
            .iter()
            .all(|r| r.cores == 1 && r.batch_width == 11));
        assert!(event.records.iter().all(|r| r.batch_width == 0));
    }

    #[test]
    fn scaling_profile_pairs_flat_and_clustered_topologies() {
        let report = scaling_profile(&quick_opts(Benchmark::Mergesort));
        // Quick mode keeps the CI-tracked 256-core clustered+L3 point...
        assert!(report
            .records
            .iter()
            .any(|r| r.cores == 256 && r.clusters == 8 && r.l3_accesses > 0));
        // ...and its flat twin, which never touches an L3.
        assert!(report
            .records
            .iter()
            .any(|r| r.cores == 256 && r.clusters == 1 && r.l3_misses == 0));
        // No sequential baseline at these core counts.
        assert!(report.records.iter().all(|r| r.speedup_over_seq.is_none()));
    }

    #[test]
    fn fig5_sweeps_memory_latency() {
        let report = fig5(&quick_opts(Benchmark::Mergesort));
        let configs: std::collections::BTreeSet<_> =
            report.records.iter().map(|r| r.config.clone()).collect();
        assert_eq!(
            configs.len(),
            2,
            "quick mode sweeps two latencies: {configs:?}"
        );
    }
}
