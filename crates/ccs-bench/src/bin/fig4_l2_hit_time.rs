//! Figure 4: sensitivity to the L2 hit time on the 16-core default
//! configuration (7 cycles ≈ a fast distributed L2 bank, 19 cycles = the
//! default monolithic shared L2).
//!
//! The headline comparison (Section 5.3): PDF with the *slow* 19-cycle L2
//! still beats WS with the *fast* 7-cycle L2, because for Hash Join and
//! Mergesort the number of L2 hits is on par with the number of L2 misses,
//! so the miss penalty dominates any hit-time difference.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin fig4_l2_hit_time -- [--scale N] [--json PATH]
//! ```

use ccs_bench::{figs, print_report, Options};

fn main() {
    let opts = Options::from_env();
    let report = figs::fig4(&opts);
    print_report(
        "Figure 4 — L2 hit-time sensitivity (16-core default)",
        &report,
        &opts,
    );

    eprintln!("# Section 5.3 check: PDF @ 19-cycle L2 vs WS @ 7-cycle L2");
    for (workload, pdf_wins) in figs::pdf_slow_beats_ws_fast(&report) {
        eprintln!("#   {workload}: pdf_wins={pdf_wins}");
    }
}
