//! Figure 4: sensitivity to the L2 hit time on the 16-core default
//! configuration (7 cycles ≈ a fast distributed L2 bank, 19 cycles = the
//! default monolithic shared L2).
//!
//! The headline comparison (Section 5.3): PDF with the *slow* 19-cycle L2
//! still beats WS with the *fast* 7-cycle L2, because for Hash Join and
//! Mergesort the number of L2 hits is on par with the number of L2 misses,
//! so the miss penalty dominates any hit-time difference.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin fig4_l2_hit_time -- [--scale N]
//! ```

use ccs_bench::{print_header, print_row, run_pdf_ws, Options};
use ccs_sim::CmpConfig;
use ccs_workloads::Benchmark;

fn main() {
    let opts = Options::from_env();
    eprintln!("# Figure 4 — L2 hit-time sensitivity (16-core default), scale 1/{}", opts.effective_scale());
    print_header("l2_hit_cycles");

    let base = CmpConfig::default_with_cores(16).expect("16-core default config");
    let benches: Vec<Benchmark> = opts
        .benchmarks()
        .into_iter()
        .filter(|b| *b != Benchmark::Lu)
        .collect();
    let hit_times = if opts.quick { vec![7u64, 19] } else { vec![7u64, 19] };

    let mut pdf_slow_cycles = Vec::new();
    let mut ws_fast_cycles = Vec::new();
    for bench in benches {
        for &hit in &hit_times {
            let cfg = base.clone().with_l2_hit_latency(hit);
            let pair = run_pdf_ws(bench, &cfg, &opts);
            print_row(bench, &cfg.name, cfg.num_cores, &pair.pdf, &pair.sequential, &hit.to_string());
            print_row(bench, &cfg.name, cfg.num_cores, &pair.ws, &pair.sequential, &hit.to_string());
            if hit == 19 {
                pdf_slow_cycles.push((bench, pair.pdf.cycles));
            }
            if hit == 7 {
                ws_fast_cycles.push((bench, pair.ws.cycles));
            }
        }
    }

    eprintln!("# Section 5.3 check: PDF @ 19-cycle L2 vs WS @ 7-cycle L2");
    for ((bench, pdf_slow), (_, ws_fast)) in pdf_slow_cycles.iter().zip(&ws_fast_cycles) {
        eprintln!(
            "#   {bench}: pdf(19c)={pdf_slow} cycles, ws(7c)={ws_fast} cycles, pdf_wins={}",
            pdf_slow <= ws_fast
        );
    }
}
