//! Section 6.1: performance of the one-pass `LruTree` working-set profiler
//! versus the multi-pass `SetAssoc` baseline.
//!
//! The paper profiles a Mergesort trace of 2.85 billion references with over
//! 190,000 task groups and measures 253 minutes for SetAssoc vs 13.4 minutes
//! for LruTree (an 18× improvement), the gap coming from SetAssoc re-visiting
//! every record once per task-group-tree level (22× on average).  This binary
//! measures the same two algorithms on a scaled-down Mergesort trace and also
//! reports the average number of times SetAssoc re-visits each record.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin sec61_profiler_speed -- [--scale N]
//! ```

use std::time::Instant;

use ccs_bench::Options;
use ccs_dag::TaskGroupTree;
use ccs_profile::{profile_all_groups, WorkingSetProfile};
use ccs_workloads::{mergesort, MergesortParams};

fn main() {
    let opts = Options::from_env();
    let scale = opts.effective_scale();
    let n_items = ((32u64 << 20) / scale).max(1 << 14);
    let params = MergesortParams::new(n_items)
        .with_task_working_set(((1u64 << 20) / scale.max(1)).max(8 * 1024));
    let comp = mergesort::build(&params);
    let tree = TaskGroupTree::from_computation(&comp);
    let total_refs = comp.total_refs();
    eprintln!(
        "# Section 6.1 — profiling a Mergesort of {n_items} items: {} references, {} tasks, {} task groups",
        total_refs,
        comp.num_tasks(),
        tree.num_groups()
    );

    let sizes: Vec<u64> = (12..=26).map(|p| 1u64 << p).collect();

    let t0 = Instant::now();
    let profile = WorkingSetProfile::collect(&comp, &sizes);
    let lrutree = t0.elapsed();

    let t1 = Instant::now();
    let all = profile_all_groups(&comp, &tree, &sizes);
    let setassoc = t1.elapsed();

    // Cross-check one number so the comparison is apples-to-apples.
    let root = tree.group(tree.root());
    let direct_root_hits = all[tree.root().index()]
        .iter()
        .find(|s| s.cache_bytes == *sizes.last().unwrap())
        .map(|s| s.hits)
        .unwrap_or(0);
    let onepass_root_hits = profile.hits_in(root.rank_range(), *sizes.last().unwrap());
    assert_eq!(direct_root_hits, onepass_root_hits, "profilers disagree");

    // How many times does the multi-pass approach touch each record?
    let revisits: u64 = tree
        .iter()
        .map(|(_, g)| profile.refs_in(g.rank_range()))
        .sum();
    let revisit_factor = revisits as f64 / profile.refs_in(root.rank_range()).max(1) as f64;

    println!("algorithm\tseconds\trefs_processed\trevisit_factor");
    println!(
        "LruTree (one pass)\t{:.3}\t{}\t1.0",
        lrutree.as_secs_f64(),
        total_refs
    );
    println!(
        "SetAssoc (per group)\t{:.3}\t{}\t{:.1}",
        setassoc.as_secs_f64(),
        revisits,
        revisit_factor
    );
    println!(
        "speedup\t{:.1}x\t\t",
        setassoc.as_secs_f64() / lrutree.as_secs_f64().max(1e-9)
    );
}
