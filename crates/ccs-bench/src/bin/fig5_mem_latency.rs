//! Figure 5: sensitivity to the main-memory latency (100–1100 cycles) on the
//! 16-core default configuration, Hash Join and Mergesort, PDF vs WS.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin fig5_mem_latency -- [--scale N]
//! ```

use ccs_bench::{print_header, print_row, run_pdf_ws, Options};
use ccs_sim::CmpConfig;
use ccs_workloads::Benchmark;

fn main() {
    let opts = Options::from_env();
    eprintln!("# Figure 5 — memory-latency sensitivity (16-core default), scale 1/{}", opts.effective_scale());
    print_header("mem_latency");

    let base = CmpConfig::default_with_cores(16).expect("16-core default config");
    let benches: Vec<Benchmark> = opts
        .benchmarks()
        .into_iter()
        .filter(|b| *b != Benchmark::Lu)
        .collect();
    let latencies: Vec<u64> = if opts.quick {
        vec![100, 700]
    } else {
        vec![100, 300, 500, 700, 900, 1100]
    };

    for bench in benches {
        for &lat in &latencies {
            let cfg = base.clone().with_memory_latency(lat);
            let pair = run_pdf_ws(bench, &cfg, &opts);
            print_row(bench, &cfg.name, cfg.num_cores, &pair.pdf, &pair.sequential, &lat.to_string());
            print_row(bench, &cfg.name, cfg.num_cores, &pair.ws, &pair.sequential, &lat.to_string());
        }
    }
}
