//! Figure 5: sensitivity to the main-memory latency (100–1100 cycles) on the
//! 16-core default configuration, Hash Join and Mergesort, PDF vs WS.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin fig5_mem_latency -- [--scale N] [--json PATH]
//! ```

use ccs_bench::{figs, print_report, Options};

fn main() {
    let opts = Options::from_env();
    let report = figs::fig5(&opts);
    print_report(
        "Figure 5 — memory-latency sensitivity (16-core default)",
        &report,
        &opts,
    );
}
