//! CI perf-regression gate: diff a fresh `BENCH_sim.json` against the
//! committed baseline.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin bench_gate -- \
//!     [--current BENCH_sim.json] [--baseline bench/baseline.json] \
//!     [--tolerance 20]
//! ```
//!
//! Exit status 0 when every baseline record is within tolerance (warnings
//! — improvements beyond tolerance, or records missing from the baseline —
//! are reported but do not fail), 1 on any regression, missing record, or
//! deterministic-metric drift.  See `ccs_bench::harness::gate` for the
//! exact rules and README.md § Benchmarking for the workflow.

use std::path::PathBuf;

use ccs_bench::harness::{gate, BenchReport};

struct Args {
    current: PathBuf,
    baseline: PathBuf,
    /// Relative tolerance in percent (CLI) — 20 means ±20%.
    tolerance_pct: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        current: PathBuf::from("BENCH_sim.json"),
        baseline: PathBuf::from("bench/baseline.json"),
        tolerance_pct: 20.0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--current" => {
                args.current = PathBuf::from(iter.next().expect("--current requires a path"));
            }
            "--baseline" => {
                args.baseline = PathBuf::from(iter.next().expect("--baseline requires a path"));
            }
            "--tolerance" => {
                let v = iter.next().expect("--tolerance requires a percentage");
                args.tolerance_pct = v.parse().expect("--tolerance must be a number");
                assert!(
                    args.tolerance_pct > 0.0,
                    "--tolerance must be positive (percent, e.g. 20)"
                );
            }
            other => panic!("unknown flag {other:?} (--current|--baseline|--tolerance)"),
        }
    }
    args
}

fn load(path: &PathBuf, what: &str) -> BenchReport {
    BenchReport::read_json(path).unwrap_or_else(|e| {
        eprintln!(
            "bench_gate: cannot read {what} report {}: {e}",
            path.display()
        );
        std::process::exit(1);
    })
}

fn main() {
    let args = parse_args();
    let current = load(&args.current, "current");
    let baseline = load(&args.baseline, "baseline");
    let result = gate::compare(&current, &baseline, args.tolerance_pct / 100.0);
    print!("{}", result.to_text());
    // One-line perf/memory trajectory for CI step output.
    println!("{}", gate::summary_line(&current, &baseline));
    if result.failed() {
        eprintln!(
            "bench_gate: FAILED against {} (tolerance ±{:.0}%)",
            args.baseline.display(),
            args.tolerance_pct
        );
        std::process::exit(1);
    }
    if result.warned() {
        eprintln!(
            "bench_gate: passed with warnings — consider refreshing {}",
            args.baseline.display()
        );
    } else {
        eprintln!("bench_gate: passed");
    }
}
