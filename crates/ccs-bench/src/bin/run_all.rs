//! Run every experiment binary in sequence (convenience wrapper used to
//! regenerate EXPERIMENTS.md data in one go).
//!
//! ```text
//! cargo run --release -p ccs-bench --bin run_all -- [--scale N] [--quick]
//! ```

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let binaries = [
        "tables_2_3",
        "fig2_default_configs",
        "fig3_single_tech",
        "fig4_l2_hit_time",
        "fig5_mem_latency",
        "fig6_granularity",
        "fig8_auto_coarsening",
        "sec61_profiler_speed",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in binaries {
        println!("\n===== {bin} =====");
        let path = exe_dir.join(bin);
        let status = if path.exists() {
            Command::new(&path).args(&args).status()
        } else {
            // Fall back to cargo run (slower, but works from any directory).
            Command::new("cargo")
                .args(["run", "--release", "-p", "ccs-bench", "--bin", bin, "--"])
                .args(&args)
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!("failed to run {bin}: {e}"),
        }
    }
}
