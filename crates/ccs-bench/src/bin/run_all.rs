//! Run the full experiment suite and emit one merged machine-readable
//! report.
//!
//! The figure sweeps (Figs. 2–6 and the Section 5.4 comparison) run
//! *in-process* through the `Experiment` API and are merged into a single
//! JSON trajectory; the non-sweep binaries (`tables_2_3`,
//! `fig8_auto_coarsening`, `sec61_profiler_speed`) are invoked as
//! subprocesses unless `--quick` is given.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin run_all -- \
//!     [--scale N] [--quick] [--json PATH] [--parallel N] [--workloads spec,...]
//!     [--bench] [--engine event|reference]
//! ```
//!
//! `--bench` substitutes the timed [`ccs_bench::harness`] for the plain
//! sweeps: the figure sweeps run under the wall clock (plus an
//! event-driven-vs-reference engine comparison and raw-simulator
//! microbenches) and the perf trajectory is written to `BENCH_sim.json` —
//! the file CI uploads and gates against `bench/baseline.json` (see the
//! `bench_gate` binary).  The merged sweep report is still emitted through
//! `--json` as usual.
//!
//! With `--quick` the merged report is always written (default path
//! `BENCH_run_all.json` when `--json` is not given), so smoke tests get a
//! machine-readable trajectory.  The full (non-quick) suite also runs the
//! Section 5.5 secondary benchmarks through the open workload registry.
//!
//! `--workloads <spec,...>` replaces the figure sweeps with exactly the
//! requested registry workloads (`--workloads quicksort,matmul:n=512`), and
//! `--parallel N` fans every sweep across `N` threads of the `ccs-runtime`
//! pool — the merged JSON is byte-identical to a sequential run.

use std::path::PathBuf;
use std::process::Command;

use ccs_bench::figs::Sweep;
use ccs_bench::{figs, harness, Options, Report};

fn main() {
    let mut opts = Options::from_env();
    if opts.bench {
        run_bench(opts);
        return;
    }
    let sweeps: Vec<Sweep> = if !opts.workloads.is_empty() {
        // An explicit `--workloads` selection replaces the figure sweeps:
        // run exactly the requested registry specs.
        vec![("workloads", figs::workload_sweep)]
    } else {
        let mut sweeps = figs::figure_sweeps();
        // The full suite also covers the Section 5.5 secondary benchmarks
        // (skipped by `--quick` and by an `--app` paper-benchmark filter).
        if !opts.quick && opts.app.is_none() {
            sweeps.push(("sec55_extras", figs::extras));
        }
        sweeps
    };

    // With `--json -` the tables move to stderr so stdout carries nothing
    // but the merged JSON document.
    let mut merged = Report::new("run_all", opts.effective_scale());
    for (name, run) in sweeps {
        let report = run(&opts);
        if opts.json_to_stdout() {
            eprintln!("\n===== {name} =====");
            eprint!("{}", report.to_tsv());
        } else {
            println!("\n===== {name} =====");
            print!("{}", report.to_tsv());
        }
        merged.merge(report);
    }

    if !opts.quick && opts.workloads.is_empty() {
        // The remaining binaries are not sweep-shaped (table regeneration,
        // profiler timing); run them as subprocesses as before.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let exe_dir = std::env::current_exe()
            .expect("current exe")
            .parent()
            .expect("exe dir")
            .to_path_buf();
        for bin in ["tables_2_3", "fig8_auto_coarsening", "sec61_profiler_speed"] {
            if opts.json_to_stdout() {
                eprintln!("\n===== {bin} =====");
            } else {
                println!("\n===== {bin} =====");
            }
            let path = exe_dir.join(bin);
            let mut command = if path.exists() {
                Command::new(&path)
            } else {
                // Fall back to cargo run (slower, but works from any directory).
                let mut c = Command::new("cargo");
                c.args(["run", "--release", "-p", "ccs-bench", "--bin", bin, "--"]);
                c
            };
            command.args(&args);
            if opts.json_to_stdout() {
                // Children inherit our stdout by default; with `--json -`
                // that would interleave their tables with the JSON document,
                // so forward their output to stderr instead.
                let status = command.output().map(|out| {
                    eprint!("{}", String::from_utf8_lossy(&out.stdout));
                    eprint!("{}", String::from_utf8_lossy(&out.stderr));
                    out.status
                });
                report_status(bin, status);
            } else {
                report_status(bin, command.status());
            }
        }
    }

    // Quick runs always leave a machine-readable trajectory behind.
    if opts.quick && opts.json.is_none() {
        opts.json = Some(PathBuf::from("BENCH_run_all.json"));
    }
    if let Err(e) = opts.emit_json(&merged) {
        eprintln!("failed to write JSON report: {e}");
    }
}

/// `--bench`: run the timed harness, print its table, and leave both the
/// `BENCH_sim.json` perf trajectory and the usual merged sweep report
/// behind.
fn run_bench(mut opts: Options) {
    if !opts.workloads.is_empty() {
        // In sweep mode `--workloads` replaces the figure sweeps, but the
        // bench trajectory must stay comparable across runs, so the harness
        // always times the canonical sweeps — reject rather than silently
        // ignoring the selection.
        eprintln!(
            "--bench times the canonical figure sweeps and cannot be combined with --workloads"
        );
        std::process::exit(2);
    }
    let (bench, merged) = harness::run(&opts);
    if opts.json_to_stdout() {
        eprint!("{}", bench.to_tsv());
    } else {
        print!("{}", bench.to_tsv());
    }
    match bench.write_json(harness::BENCH_SIM_PATH) {
        Ok(()) => eprintln!("# wrote {}", harness::BENCH_SIM_PATH),
        Err(e) => {
            eprintln!("failed to write {}: {e}", harness::BENCH_SIM_PATH);
            std::process::exit(1);
        }
    }
    // Quick runs always leave the sweep trajectory behind too.
    if opts.quick && opts.json.is_none() {
        opts.json = Some(PathBuf::from("BENCH_run_all.json"));
    }
    if let Err(e) = opts.emit_json(&merged) {
        eprintln!("failed to write JSON report: {e}");
    }
}

fn report_status(bin: &str, status: std::io::Result<std::process::ExitStatus>) {
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => eprintln!("{bin} exited with {s}"),
        Err(e) => eprintln!("failed to run {bin}: {e}"),
    }
}
