//! Figure 3: execution time of Hash Join and Mergesort across the 45 nm
//! single-technology design points (Table 3, 1–26 cores), PDF vs WS.
//!
//! The interesting qualitative features to look for (Section 5.2): PDF wins
//! at every design point; Hash Join bottoms out around ~18 cores (it becomes
//! memory-bandwidth-bound and the shrinking cache then hurts), while
//! Mergesort keeps improving to 24–26 cores.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin fig3_single_tech -- [--scale N]
//! ```

use ccs_bench::{print_header, print_row, run_pdf_ws, Options};
use ccs_sim::CmpConfig;
use ccs_workloads::Benchmark;

fn main() {
    let opts = Options::from_env();
    eprintln!("# Figure 3 — 45nm single technology, scale 1/{}", opts.effective_scale());
    print_header("pdf_over_ws");

    let benches: Vec<Benchmark> = opts
        .benchmarks()
        .into_iter()
        .filter(|b| *b != Benchmark::Lu)
        .collect();
    for bench in benches {
        for cfg in CmpConfig::single_tech_45nm() {
            if opts.quick && cfg.num_cores % 8 != 0 && cfg.num_cores != 1 {
                continue;
            }
            let pair = run_pdf_ws(bench, &cfg, &opts);
            let rel = pair.pdf.relative_speedup(&pair.ws);
            print_row(bench, &cfg.name, cfg.num_cores, &pair.pdf, &pair.sequential,
                      &format!("{rel:.3}"));
            print_row(bench, &cfg.name, cfg.num_cores, &pair.ws, &pair.sequential, "1.000");
        }
    }
}
