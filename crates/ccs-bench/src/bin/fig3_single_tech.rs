//! Figure 3: execution time of Hash Join and Mergesort across the 45 nm
//! single-technology design points (Table 3, 1–26 cores), PDF vs WS.
//!
//! The interesting qualitative features to look for (Section 5.2): PDF wins
//! at every design point; Hash Join bottoms out around ~18 cores (it becomes
//! memory-bandwidth-bound and the shrinking cache then hurts), while
//! Mergesort keeps improving to 24–26 cores.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin fig3_single_tech -- [--scale N] [--json PATH]
//! ```

use ccs_bench::{figs, print_report, Options};

fn main() {
    let opts = Options::from_env();
    let report = figs::fig3(&opts);
    print_report("Figure 3 — 45nm single technology", &report, &opts);

    // PDF-over-WS relative speedup per design point.
    for pdf in report.for_scheduler("pdf") {
        if let Some(ws) = report
            .for_scheduler("ws")
            .find(|r| r.workload == pdf.workload && r.config == pdf.config)
        {
            let rel = if pdf.cycles > 0 {
                ws.cycles as f64 / pdf.cycles as f64
            } else {
                0.0
            };
            eprintln!(
                "#   {} on {}: pdf_over_ws = {rel:.3}",
                pdf.workload, pdf.config
            );
        }
    }
}
