//! The in-repo client of the `serve` daemon — and its own batch control.
//!
//! ```text
//! # Submit a sweep to a running daemon and reassemble the streamed
//! # records into a batch-identical report:
//! cargo run --release -p ccs-bench --bin serve_client -- \
//!     --socket /tmp/ccs.sock --workloads mergesort --scale 1024 --json served.json
//!
//! # The same sweep run directly in-process (no daemon), for comparison:
//! cargo run --release -p ccs-bench --bin serve_client -- \
//!     --batch --workloads mergesort --scale 1024 --json batch.json
//!
//! cmp served.json batch.json   # byte-identical by construction
//! ```
//!
//! Flags (shared [`Options`] plus client extras in `rest`):
//!
//! * `--socket PATH` — the daemon's Unix socket;
//! * `--batch` — skip the daemon: run the identical sweep in-process and
//!   emit the same report (the CI smoke `cmp`s the two outputs);
//! * `--id ID` / `--name NAME` — request id and report name (defaults:
//!   `"r1"` / `"serve"`);
//! * `--cores 2,4` — design points (shared [`Options`] flag, each count
//!   ≥ 1; default: the paper's 8-core config);
//! * `--schedulers pdf,ws` — scheduler specs (default: PDF and WS);
//! * `--expect-cached` — fail unless *every* streamed record was a store
//!   hit (exercises the persistent memo across daemon restarts);
//! * `--cancel-after N` — send a cancel frame after `N` streamed records
//!   and report the terminal state;
//! * `--timeout-ms N` — per-request deadline, enforced daemon-side; an
//!   expired request ends `timeout` with whatever records it streamed;
//! * `--retries N` — reconnect and resubmit up to `N` attempts (with
//!   exponential backoff) until the request lands `done`; safe because the
//!   daemon's memo store makes resubmission idempotent.  Exits 4 when the
//!   attempts are exhausted without a `done`;
//! * `--health` — print the daemon's health frame (uptime, inflight,
//!   panics caught, store stats) to stderr after the run;
//! * `--shutdown` — ask the daemon to drain and stop after collecting.
//!
//! Failure model (timeouts, retries, health): DESIGN.md §13.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use ccs_bench::{print_report, Options};
use ccs_sched::SchedulerSpec;
use ccs_serve::protocol::SubmitRequest;
use ccs_serve::{run_with_retry, Client, CollectedRun, RequestState, RetryPolicy};
use ccs_sim::CmpConfig;

/// A malformed invocation is a typed complaint and exit 2, not a panic.
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("serve_client: {message}");
    exit(2);
}

struct ClientFlags {
    socket: Option<PathBuf>,
    batch: bool,
    id: String,
    name: String,
    schedulers: Vec<String>,
    expect_cached: bool,
    cancel_after: Option<usize>,
    timeout_ms: Option<u64>,
    retries: Option<usize>,
    health: bool,
    shutdown: bool,
}

fn parse_flags(rest: &[String]) -> ClientFlags {
    let mut flags = ClientFlags {
        socket: None,
        batch: false,
        id: "r1".to_string(),
        name: "serve".to_string(),
        schedulers: Vec::new(),
        expect_cached: false,
        cancel_after: None,
        timeout_ms: None,
        retries: None,
        health: false,
        shutdown: false,
    };
    let mut iter = rest.iter();
    while let Some(flag) = iter.next() {
        let mut value = |what: &str| match iter.next() {
            Some(v) => v.clone(),
            None => fail(format_args!("{flag} requires {what}")),
        };
        match flag.as_str() {
            "--socket" => flags.socket = Some(PathBuf::from(value("a path"))),
            "--batch" => flags.batch = true,
            "--id" => flags.id = value("a value"),
            "--name" => flags.name = value("a value"),
            "--schedulers" => {
                flags.schedulers = value("a list")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--expect-cached" => flags.expect_cached = true,
            "--cancel-after" => {
                flags.cancel_after = Some(
                    value("a count")
                        .parse()
                        .unwrap_or_else(|_| fail("--cancel-after must be an integer")),
                );
            }
            "--timeout-ms" => {
                flags.timeout_ms = Some(
                    value("milliseconds")
                        .parse()
                        .unwrap_or_else(|_| fail("--timeout-ms must be an integer")),
                );
            }
            "--retries" => {
                flags.retries = Some(
                    value("a count")
                        .parse()
                        .unwrap_or_else(|_| fail("--retries must be an integer")),
                );
            }
            "--health" => flags.health = true,
            "--shutdown" => flags.shutdown = true,
            other => fail(format_args!(
                "unknown flag {other:?} (see serve_client --help text in the source)"
            )),
        }
    }
    flags
}

/// Run the identical sweep in-process: same resolution path as the daemon
/// (`Service::prepare`), so reports compare byte-for-byte.
fn run_batch(opts: &Options, flags: &ClientFlags) {
    let mut exp = opts
        .experiment(flags.name.clone())
        .parallelism(opts.parallel);
    if !flags.schedulers.is_empty() {
        let schedulers: Vec<SchedulerSpec> = flags
            .schedulers
            .iter()
            .map(|s| {
                SchedulerSpec::resolve(s)
                    .unwrap_or_else(|e| fail(format_args!("--schedulers: {e}")))
            })
            .collect();
        exp = exp.schedulers(schedulers);
    }
    if !opts.cores.is_empty() {
        exp = exp.configs(opts.cores.iter().map(|&c| {
            CmpConfig::default_with_cores(c).unwrap_or_else(|| {
                fail(format_args!("no default CMP configuration with {c} cores"))
            })
        }));
    }
    let report = exp.run();
    print_report("serve_client --batch", &report, opts);
}

fn summarise(run: &CollectedRun) {
    let cached = run.records.iter().filter(|r| r.cached).count();
    eprintln!(
        "# serve_client: {} of {} records streamed ({cached} cached), state: {:?}",
        run.records.len(),
        run.total,
        run.state,
    );
    for error in &run.errors {
        eprintln!("# serve_client: daemon error: {error}");
    }
}

fn main() {
    let opts = Options::from_env();
    let flags = parse_flags(&opts.rest);

    if flags.batch {
        run_batch(&opts, &flags);
        return;
    }

    let socket = flags
        .socket
        .as_deref()
        .unwrap_or_else(|| fail("needs --socket PATH (or --batch)"));
    let connect_timeout = Duration::from_secs(10);

    let request = SubmitRequest {
        id: flags.id.clone(),
        name: Some(flags.name.clone()),
        workloads: opts.workload_specs().iter().map(|w| w.label()).collect(),
        schedulers: flags.schedulers.clone(),
        cores: opts.cores.clone(),
        scale: opts.scale,
        quick: opts.quick,
        engine: opts.engine,
        baseline: true,
        timeout_ms: flags.timeout_ms,
    };

    // With --retries the whole submit/collect is repeated over fresh
    // connections until `done` — idempotent thanks to the daemon's memo
    // store.  Without it, one connection, one attempt.
    let run = match flags.retries {
        Some(attempts) => run_with_retry(
            socket,
            connect_timeout,
            &request,
            RetryPolicy {
                attempts,
                ..RetryPolicy::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("serve_client: request failed after retries: {e}");
            exit(4);
        }),
        None => {
            let mut client = Client::connect_unix(socket, connect_timeout).unwrap_or_else(|e| {
                eprintln!("serve_client: cannot connect to {}: {e}", socket.display());
                exit(1);
            });
            client.submit(request).unwrap_or_else(|e| {
                eprintln!("serve_client: submit failed: {e}");
                exit(1);
            });
            client
                .collect_cancelling_after(&flags.id, flags.cancel_after)
                .unwrap_or_else(|e| {
                    eprintln!("serve_client: request failed: {e}");
                    exit(2);
                })
        }
    };

    summarise(&run);
    if flags.expect_cached && !run.all_cached() {
        let cached = run.records.iter().filter(|r| r.cached).count();
        eprintln!(
            "serve_client: --expect-cached, but only {cached} of {} records were store hits",
            run.records.len(),
        );
        exit(3);
    }
    if flags.retries.is_some() && run.state != RequestState::Done {
        eprintln!(
            "serve_client: retries exhausted in state {:?}, not done",
            run.state
        );
        exit(4);
    }
    if run.state == RequestState::Done {
        let report = run.into_report();
        print_report("serve_client (daemon-served)", &report, &opts);
    }

    // Health and shutdown ride a fresh connection: the collecting one may
    // have been consumed by the retry helper.
    if flags.health || flags.shutdown {
        let mut client = Client::connect_unix(socket, connect_timeout).unwrap_or_else(|e| {
            eprintln!(
                "serve_client: cannot reconnect to {}: {e}",
                socket.display()
            );
            exit(1);
        });
        if flags.health {
            match client.health() {
                Ok(h) => eprintln!(
                    "# serve_client: health: uptime_ms={} inflight={} queue_depth={} \
                     panics_caught={} timeouts={} store_records={} store_bytes={}",
                    h.uptime_ms,
                    h.inflight,
                    h.queue_depth,
                    h.panics_caught,
                    h.timeouts,
                    h.store_records,
                    h.store_bytes,
                ),
                Err(e) => {
                    eprintln!("serve_client: health query failed: {e}");
                    exit(1);
                }
            }
        }
        if flags.shutdown {
            if let Err(e) = client.shutdown() {
                eprintln!("serve_client: shutdown frame failed: {e}");
                exit(1);
            }
        }
    }
}
