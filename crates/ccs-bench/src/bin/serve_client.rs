//! The in-repo client of the `serve` daemon — and its own batch control.
//!
//! ```text
//! # Submit a sweep to a running daemon and reassemble the streamed
//! # records into a batch-identical report:
//! cargo run --release -p ccs-bench --bin serve_client -- \
//!     --socket /tmp/ccs.sock --workloads mergesort --scale 1024 --json served.json
//!
//! # The same sweep run directly in-process (no daemon), for comparison:
//! cargo run --release -p ccs-bench --bin serve_client -- \
//!     --batch --workloads mergesort --scale 1024 --json batch.json
//!
//! cmp served.json batch.json   # byte-identical by construction
//! ```
//!
//! Flags (shared [`Options`] plus client extras in `rest`):
//!
//! * `--socket PATH` — the daemon's Unix socket;
//! * `--batch` — skip the daemon: run the identical sweep in-process and
//!   emit the same report (the CI smoke `cmp`s the two outputs);
//! * `--id ID` / `--name NAME` — request id and report name (defaults:
//!   `"r1"` / `"serve"`);
//! * `--cores 2,4` — design points (shared [`Options`] flag, each count
//!   ≥ 1; default: the paper's 8-core config);
//! * `--schedulers pdf,ws` — scheduler specs (default: PDF and WS);
//! * `--expect-cached` — fail unless *every* streamed record was a store
//!   hit (exercises the persistent memo across daemon restarts);
//! * `--cancel-after N` — send a cancel frame after `N` streamed records
//!   and report the terminal state;
//! * `--shutdown` — ask the daemon to drain and stop after collecting.

use std::path::PathBuf;
use std::time::Duration;

use ccs_bench::{print_report, Options};
use ccs_sched::SchedulerSpec;
use ccs_serve::protocol::SubmitRequest;
use ccs_serve::{Client, RequestState};
use ccs_sim::CmpConfig;

struct ClientFlags {
    socket: Option<PathBuf>,
    batch: bool,
    id: String,
    name: String,
    schedulers: Vec<String>,
    expect_cached: bool,
    cancel_after: Option<usize>,
    shutdown: bool,
}

fn parse_flags(rest: &[String]) -> ClientFlags {
    let mut flags = ClientFlags {
        socket: None,
        batch: false,
        id: "r1".to_string(),
        name: "serve".to_string(),
        schedulers: Vec::new(),
        expect_cached: false,
        cancel_after: None,
        shutdown: false,
    };
    let mut iter = rest.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--socket" => {
                let v = iter.next().expect("--socket requires a path");
                flags.socket = Some(PathBuf::from(v));
            }
            "--batch" => flags.batch = true,
            "--id" => flags.id = iter.next().expect("--id requires a value").clone(),
            "--name" => flags.name = iter.next().expect("--name requires a value").clone(),
            "--schedulers" => {
                let v = iter.next().expect("--schedulers requires a list");
                flags.schedulers = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--expect-cached" => flags.expect_cached = true,
            "--cancel-after" => {
                let v = iter.next().expect("--cancel-after requires a count");
                flags.cancel_after = Some(v.parse().expect("--cancel-after must be an integer"));
            }
            "--shutdown" => flags.shutdown = true,
            other => panic!("unknown flag {other:?} (see serve_client --help text in the source)"),
        }
    }
    flags
}

/// Run the identical sweep in-process: same resolution path as the daemon
/// (`Service::prepare`), so reports compare byte-for-byte.
fn run_batch(opts: &Options, flags: &ClientFlags) {
    let mut exp = opts
        .experiment(flags.name.clone())
        .parallelism(opts.parallel);
    if !flags.schedulers.is_empty() {
        let schedulers: Vec<SchedulerSpec> = flags
            .schedulers
            .iter()
            .map(|s| SchedulerSpec::resolve(s).unwrap_or_else(|e| panic!("--schedulers: {e}")))
            .collect();
        exp = exp.schedulers(schedulers);
    }
    if !opts.cores.is_empty() {
        exp = exp.configs(opts.cores.iter().map(|&c| {
            CmpConfig::default_with_cores(c)
                .unwrap_or_else(|| panic!("no default CMP configuration with {c} cores"))
        }));
    }
    let report = exp.run();
    print_report("serve_client --batch", &report, opts);
}

fn main() {
    let opts = Options::from_env();
    let flags = parse_flags(&opts.rest);

    if flags.batch {
        run_batch(&opts, &flags);
        return;
    }

    let socket = flags
        .socket
        .as_deref()
        .expect("serve_client needs --socket PATH (or --batch)");
    let mut client = Client::connect_unix(socket, Duration::from_secs(10)).unwrap_or_else(|e| {
        eprintln!("serve_client: cannot connect to {}: {e}", socket.display());
        std::process::exit(1);
    });

    let request = SubmitRequest {
        id: flags.id.clone(),
        name: Some(flags.name.clone()),
        workloads: opts.workload_specs().iter().map(|w| w.label()).collect(),
        schedulers: flags.schedulers.clone(),
        cores: opts.cores.clone(),
        scale: opts.scale,
        quick: opts.quick,
        engine: opts.engine,
        baseline: true,
    };
    client.submit(request).expect("submit failed");
    let run = client
        .collect_cancelling_after(&flags.id, flags.cancel_after)
        .unwrap_or_else(|e| {
            eprintln!("serve_client: request failed: {e}");
            std::process::exit(2);
        });

    let cached = run.records.iter().filter(|r| r.cached).count();
    eprintln!(
        "# serve_client: {} of {} records streamed ({cached} cached), state: {:?}",
        run.records.len(),
        run.total,
        run.state,
    );
    if flags.expect_cached && !run.all_cached() {
        eprintln!(
            "serve_client: --expect-cached, but only {cached} of {} records were store hits",
            run.records.len(),
        );
        std::process::exit(3);
    }
    if run.state == RequestState::Done {
        let report = run.into_report();
        print_report("serve_client (daemon-served)", &report, &opts);
    }
    if flags.shutdown {
        client.shutdown().expect("shutdown frame failed");
    }
}
