//! The sweep-service daemon: keep builds, caches and finished records warm
//! across many sweep requests instead of paying them per process.
//!
//! ```text
//! # One-shot pipe mode: frames in on stdin, frames out on stdout.
//! printf '%s\n' '{"type":"submit","id":"r1","workloads":["mergesort"],"scale":1024}' \
//!     | cargo run --release -p ccs-bench --bin serve -- --store /tmp/ccs-store
//!
//! # Daemon mode: serve many clients over a Unix socket until one sends
//! # a shutdown frame.
//! cargo run --release -p ccs-bench --bin serve -- \
//!     --socket /tmp/ccs.sock --store /tmp/ccs-store --parallel 4
//! ```
//!
//! Flags (shared [`Options`] plus daemon extras in `rest`):
//!
//! * `--store DIR` — persistent result store; repeated requests are served
//!   from disk, byte-identical to a fresh run;
//! * `--store-max-bytes N` — byte budget for the store directory; when a
//!   write pushes it over, least-recently-used entries (by mtime) are
//!   evicted until it fits (default: unbounded);
//! * `--socket PATH` — listen on a Unix socket (default: one stdio session);
//! * `--parallel N` — threads of the shared simulation pool (0 = one per
//!   available core);
//! * `--queue N` — accepted-but-not-running request capacity (default 32);
//! * `--workers N` — concurrently running requests (default 2).
//!
//! Protocol and store format: DESIGN.md §10.

use std::path::PathBuf;

use ccs_bench::Options;
use ccs_serve::{Server, ServiceConfig};

fn main() {
    let opts = Options::from_env();
    let mut socket: Option<PathBuf> = None;
    let mut config = ServiceConfig {
        store_dir: opts.store.clone(),
        pool_threads: opts.parallel,
        ..ServiceConfig::default()
    };

    let mut rest = opts.rest.iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--socket" => {
                let v = rest.next().expect("--socket requires a path");
                socket = Some(PathBuf::from(v));
            }
            "--queue" => {
                let v = rest.next().expect("--queue requires a capacity");
                config.queue_capacity = v.parse().expect("--queue must be an integer");
            }
            "--workers" => {
                let v = rest.next().expect("--workers requires a count");
                config.workers = v.parse().expect("--workers must be an integer");
            }
            "--store-max-bytes" => {
                let v = rest
                    .next()
                    .expect("--store-max-bytes requires a byte budget");
                config.store_max_bytes = Some(
                    v.parse()
                        .expect("--store-max-bytes must be an integer byte count"),
                );
            }
            other => panic!(
                "unknown flag {other:?} (serve takes --socket/--queue/--workers/--store-max-bytes)"
            ),
        }
    }

    let server = Server::start(config).unwrap_or_else(|e| {
        eprintln!("serve: failed to start service: {e}");
        std::process::exit(1);
    });
    match socket {
        Some(path) => {
            eprintln!("# serve: listening on {}", path.display());
            if let Err(e) = server.serve_unix(&path) {
                eprintln!("serve: socket error: {e}");
                std::process::exit(1);
            }
        }
        None => server.serve_stdio(),
    }
}
