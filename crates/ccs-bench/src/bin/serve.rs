//! The sweep-service daemon: keep builds, caches and finished records warm
//! across many sweep requests instead of paying them per process.
//!
//! ```text
//! # One-shot pipe mode: frames in on stdin, frames out on stdout.
//! printf '%s\n' '{"type":"submit","id":"r1","workloads":["mergesort"],"scale":1024}' \
//!     | cargo run --release -p ccs-bench --bin serve -- --store /tmp/ccs-store
//!
//! # Daemon mode: serve many clients over a Unix socket until one sends
//! # a shutdown frame.
//! cargo run --release -p ccs-bench --bin serve -- \
//!     --socket /tmp/ccs.sock --store /tmp/ccs-store --parallel 4
//! ```
//!
//! Flags (shared [`Options`] plus daemon extras in `rest`):
//!
//! * `--store DIR` — persistent result store; repeated requests are served
//!   from disk, byte-identical to a fresh run;
//! * `--store-max-bytes N` — byte budget for the store directory; when a
//!   write pushes it over, least-recently-used entries (by mtime) are
//!   evicted until it fits (default: unbounded);
//! * `--socket PATH` — listen on a Unix socket (default: one stdio session);
//! * `--parallel N` — threads of the shared simulation pool (0 = one per
//!   available core);
//! * `--queue N` — accepted-but-not-running request capacity (default 32);
//! * `--workers N` — concurrently running requests (default 2);
//! * `--fault-plan SPEC` — install a deterministic fault-injection plan
//!   (e.g. `seed=7,build-panic=0.5,torn-write=0.5`); overrides the
//!   `CCS_FAULT_PLAN` environment variable.  CI uses this to prove the
//!   daemon survives injected panics, torn store writes and dropped
//!   sessions; without a plan every hook is a no-op.
//!
//! Protocol and store format: DESIGN.md §10; failure model: DESIGN.md §13.

use std::path::PathBuf;
use std::process::exit;

use ccs_bench::Options;
use ccs_runtime::fault::{self, FaultPlan};
use ccs_serve::{Server, ServiceConfig};

/// A malformed invocation is a typed complaint and exit 2, not a panic.
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("serve: {message}");
    exit(2);
}

fn main() {
    let opts = Options::from_env();
    let mut socket: Option<PathBuf> = None;
    let mut fault_plan: Option<String> = None;
    let mut config = ServiceConfig {
        store_dir: opts.store.clone(),
        pool_threads: opts.parallel,
        ..ServiceConfig::default()
    };

    let mut rest = opts.rest.iter();
    while let Some(flag) = rest.next() {
        let mut value = |what: &str| match rest.next() {
            Some(v) => v.clone(),
            None => fail(format_args!("{flag} requires {what}")),
        };
        match flag.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("a path"))),
            "--queue" => {
                config.queue_capacity = value("a capacity")
                    .parse()
                    .unwrap_or_else(|_| fail("--queue must be an integer"));
            }
            "--workers" => {
                config.workers = value("a count")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers must be an integer"));
            }
            "--store-max-bytes" => {
                config.store_max_bytes = Some(
                    value("a byte budget")
                        .parse()
                        .unwrap_or_else(|_| fail("--store-max-bytes must be an integer")),
                );
            }
            "--fault-plan" => fault_plan = Some(value("a plan spec")),
            other => fail(format_args!(
                "unknown flag {other:?} (serve takes --socket/--queue/--workers/--store-max-bytes/--fault-plan)"
            )),
        }
    }

    // Fault plan: the flag wins over the environment; either source failing
    // to parse is a startup error, not a silently inert daemon.
    let installed = match fault_plan {
        Some(spec) => {
            let plan =
                FaultPlan::parse(&spec).unwrap_or_else(|e| fail(format_args!("--fault-plan: {e}")));
            fault::install(plan).unwrap_or_else(|e| fail(format_args!("--fault-plan: {e}")));
            true
        }
        None => fault::install_from_env()
            .unwrap_or_else(|e| fail(format_args!("{}: {e}", fault::ENV_VAR))),
    };
    if installed {
        eprintln!("# serve: fault-injection plan active (expect injected failures)");
    }

    let server = Server::start(config).unwrap_or_else(|e| {
        eprintln!("serve: failed to start service: {e}");
        exit(1);
    });
    match socket {
        Some(path) => {
            eprintln!("# serve: listening on {}", path.display());
            if let Err(e) = server.serve_unix(&path) {
                eprintln!("serve: socket error: {e}");
                exit(1);
            }
        }
        None => server.serve_stdio(),
    }
}
