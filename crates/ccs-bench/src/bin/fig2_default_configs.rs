//! Figure 2: PDF vs WS on the default (Table 2) CMP configurations.
//!
//! Reproduces all six panels: speedup over sequential execution (left column)
//! and L2 misses per 1000 instructions (right column) for LU (1–16 cores),
//! Hash Join and Mergesort (1–32 cores).
//!
//! ```text
//! cargo run --release -p ccs-bench --bin fig2_default_configs -- [--scale N] [--app lu|hashjoin|mergesort]
//! ```

use ccs_bench::{print_header, print_row, run_pdf_ws, Options};
use ccs_sim::CmpConfig;
use ccs_workloads::Benchmark;

fn main() {
    let opts = Options::from_env();
    eprintln!("# Figure 2 — default configurations, scale 1/{}", opts.effective_scale());
    print_header("mpki_reduction_vs_ws_pct");

    for bench in opts.benchmarks() {
        for cfg in CmpConfig::default_configs() {
            // The paper reports LU only up to 16 cores (the 2Kx2K input is
            // smaller than the 32-core L2).
            if bench == Benchmark::Lu && cfg.num_cores > 16 {
                continue;
            }
            if opts.quick && cfg.num_cores > 8 {
                continue;
            }
            let pair = run_pdf_ws(bench, &cfg, &opts);
            let reduction = pair.pdf.mpki_reduction_vs(&pair.ws);
            print_row(bench, &cfg.name, cfg.num_cores, &pair.pdf, &pair.sequential,
                      &format!("{reduction:.1}"));
            print_row(bench, &cfg.name, cfg.num_cores, &pair.ws, &pair.sequential, "0.0");
        }
    }
}
