//! Figure 2: PDF vs WS on the default (Table 2) CMP configurations.
//!
//! Reproduces all six panels: speedup over sequential execution (left column)
//! and L2 misses per 1000 instructions (right column) for LU (1–16 cores),
//! Hash Join and Mergesort (1–32 cores).
//!
//! ```text
//! cargo run --release -p ccs-bench --bin fig2_default_configs -- \
//!     [--scale N] [--app lu|hashjoin|mergesort] [--json PATH]
//! ```

use ccs_bench::{figs, print_report, Options};

fn main() {
    let opts = Options::from_env();
    let report = figs::fig2(&opts);
    print_report("Figure 2 — default configurations", &report, &opts);

    // Section 5.1 headline: PDF's L2 miss reduction relative to WS.
    for workload in report.workloads() {
        for pdf in report
            .for_workload(&workload)
            .filter(|r| r.scheduler == "pdf")
        {
            if let Some(ws) = report
                .for_workload(&workload)
                .find(|r| r.scheduler == "ws" && r.config == pdf.config)
            {
                let reduction = pdf.mpki_reduction_vs(ws);
                eprintln!(
                    "#   {workload} on {}: PDF reduces L2 MPKI by {reduction:.1}%",
                    pdf.config
                );
            }
        }
    }
}
