//! Figure 6: impact of task granularity on Mergesort — L2 misses per 1000
//! instructions and execution time as a function of the task working-set
//! size (8 MB down to 32 KB in the paper), on the 32-core and 16-core default
//! configurations, PDF vs WS.
//!
//! With `--coarse-vs-fine` it also reports the Section 5.4 comparison between
//! the original coarse-grained codes (serial merge / one probe task per
//! sub-partition) and the fine-grained versions (the paper measured up to a
//! 2.85× gap).
//!
//! ```text
//! cargo run --release -p ccs-bench --bin fig6_granularity -- [--scale N] [--coarse-vs-fine]
//! ```

use ccs_bench::{run_sim, Options};
use ccs_sched::SchedulerKind;
use ccs_sim::CmpConfig;
use ccs_workloads::{hashjoin, mergesort, HashJoinParams, MergesortParams};

fn main() {
    let opts = Options::from_env();
    let scale = opts.effective_scale();
    eprintln!("# Figure 6 — Mergesort task-granularity sweep, scale 1/{scale}");
    println!("cores\ttask_ws_bytes\tsched\tl2_mpki\tcycles");

    let n_items = ((32u64 << 20) / scale).max(1 << 14);
    // Paper sweep: 8M, 4M, ..., 32K bytes of task working set; scaled down.
    let sizes: Vec<u64> = (0..9)
        .map(|i| ((8u64 << 20) >> i) / scale)
        .map(|b| b.max(4 * 1024))
        .collect();
    let core_counts: &[usize] = if opts.quick { &[16] } else { &[32, 16] };

    for &cores in core_counts {
        let cfg = CmpConfig::default_with_cores(cores).expect("default config");
        let mut sweep = sizes.clone();
        sweep.dedup();
        for ws in sweep {
            let params = MergesortParams::new(n_items).with_task_working_set(ws);
            let comp = mergesort::build(&params);
            for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
                let r = run_sim(&comp, &cfg, &opts, kind);
                println!(
                    "{}\t{}\t{}\t{:.4}\t{}",
                    cores,
                    ws,
                    r.scheduler,
                    r.l2_mpki(),
                    r.cycles
                );
            }
        }
    }

    if opts.rest.iter().any(|a| a == "--coarse-vs-fine") {
        eprintln!("# Section 5.4 — coarse-grained originals vs fine-grained versions (16-core default)");
        println!("app\tvariant\tsched\tcycles\tl2_mpki");
        let cfg = CmpConfig::default_with_cores(16).expect("default config");
        let scaled_l2 = (cfg.l2.capacity / scale).max(16 * 1024);

        // Mergesort: serial merge vs parallel merge.
        let fine = mergesort::build(
            &MergesortParams::new(n_items).with_task_working_set((scaled_l2 / 32).max(16 * 1024)),
        );
        let coarse = mergesort::build(&MergesortParams::new(n_items).coarse_grained());
        for (variant, comp) in [("fine", &fine), ("coarse", &coarse)] {
            for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
                let r = run_sim(comp, &cfg, &opts, kind);
                println!("mergesort\t{}\t{}\t{}\t{:.4}", variant, r.scheduler, r.cycles, r.l2_mpki());
            }
        }

        // Hash Join: one probe task per sub-partition vs 16.
        let build_bytes = ((341u64 << 20) / scale).max(1 << 20);
        let fine = hashjoin::build(&HashJoinParams::new(build_bytes).with_l2_bytes(scaled_l2));
        let coarse = hashjoin::build(
            &HashJoinParams::new(build_bytes).with_l2_bytes(scaled_l2).coarse_grained(),
        );
        for (variant, comp) in [("fine", &fine), ("coarse", &coarse)] {
            for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
                let r = run_sim(comp, &cfg, &opts, kind);
                println!("hashjoin\t{}\t{}\t{}\t{:.4}", variant, r.scheduler, r.cycles, r.l2_mpki());
            }
        }
    }
}
