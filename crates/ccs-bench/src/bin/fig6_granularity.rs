//! Figure 6: impact of task granularity on Mergesort — L2 misses per 1000
//! instructions and execution time as a function of the task working-set
//! size (8 MB down to 32 KB in the paper), on the 32-core and 16-core default
//! configurations, PDF vs WS.  The working-set size of each point is encoded
//! in the workload name (`mergesort/ws=32768`).
//!
//! With `--coarse-vs-fine` it also reports the Section 5.4 comparison between
//! the original coarse-grained codes (serial merge / one probe task per
//! sub-partition) and the fine-grained versions (the paper measured up to a
//! 2.85× gap).
//!
//! ```text
//! cargo run --release -p ccs-bench --bin fig6_granularity -- \
//!     [--scale N] [--coarse-vs-fine] [--json PATH]
//! ```

use ccs_bench::{figs, print_report, Options};

fn main() {
    let opts = Options::from_env();
    let mut report = figs::fig6(&opts);

    if opts.rest.iter().any(|a| a == "--coarse-vs-fine") {
        eprintln!("# Section 5.4 — coarse-grained originals vs fine-grained (16-core default)");
        report.merge(figs::coarse_vs_fine(&opts));
    }

    print_report(
        "Figure 6 — Mergesort task-granularity sweep",
        &report,
        &opts,
    );
}
