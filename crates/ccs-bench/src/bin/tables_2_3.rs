//! Regenerate Table 1 (common parameters), Table 2 (default configurations)
//! and Table 3 (45 nm single-technology configurations), both as published
//! and as derived by the area/latency model of `ccs_sim::area`, plus the
//! workload roster: every kernel registered in the open
//! [`WorkloadRegistry`] — the three paper benchmarks *and* the Section 5.5
//! extras — with its description.

use ccs_sim::area::{self, Technology};
use ccs_sim::CmpConfig;
use ccs_workloads::WorkloadRegistry;

fn main() {
    println!("== Table 1: common parameters ==");
    let l1 = ccs_cache::CacheConfig::paper_l1();
    let mem = ccs_cache::MemoryConfig::paper_default();
    println!(
        "Private L1 cache : {} KB, {}-byte line, {}-way, {}-cycle hit",
        l1.capacity / 1024,
        l1.line_size,
        l1.associativity,
        l1.hit_latency
    );
    println!("Shared  L2 cache : 128-byte line, configuration-dependent");
    println!(
        "Main memory      : latency {} cycles, service rate {} cycles",
        mem.latency, mem.service_interval
    );
    println!();

    println!("== Table 2: default (scaling technology) configurations ==");
    println!("cores\ttech\tL2_MB\tassoc\thit_cycles\tmodel_L2_MB");
    for cfg in CmpConfig::default_configs() {
        let model = area::l2_capacity_mb(cfg.technology, cfg.num_cores as u32)
            .map(|m| m.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            cfg.num_cores,
            cfg.technology,
            cfg.l2.capacity >> 20,
            cfg.l2.associativity,
            cfg.l2.hit_latency,
            model
        );
    }
    println!();

    println!("== Table 3: single technology (45 nm) configurations ==");
    println!("cores\tL2_MB\tassoc\thit_cycles\tmodel_L2_MB\tmodel_hit");
    for cfg in CmpConfig::single_tech_45nm() {
        let model_mb = area::l2_capacity_mb(Technology::Nm45, cfg.num_cores as u32).unwrap_or(0);
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            cfg.num_cores,
            cfg.l2.capacity >> 20,
            cfg.l2.associativity,
            cfg.l2.hit_latency,
            model_mb,
            area::l2_hit_latency(cfg.l2.capacity >> 20)
        );
    }
    println!();

    println!("== Registered workloads (select with --workloads name:key=value,...) ==");
    println!("name\tdescription");
    let registry = WorkloadRegistry::global();
    for name in registry.names() {
        println!("{}\t{}", name, registry.describe(&name).unwrap_or_default());
    }
}
