//! Figure 8: effectiveness of the automatic task-selection (coarsening)
//! scheme on Mergesort, for the 32-, 16- and 8-core default configurations.
//!
//! Three schemes are compared, each normalised to the best of the three:
//!
//! * `previous` — the manually selected task sizes used in Section 5;
//! * `cache/(2*cores) dag` — the automatic selection applied by re-grouping
//!   the finest-grain trace into coarse tasks (the coarse task still contains
//!   the parallel-code instruction overheads);
//! * `cache/(2*cores) actual` — the automatic selection applied by
//!   regenerating the workload at the recommended granularity.
//!
//! The paper finds the "actual" bars within 5% of the best in all cases.
//!
//! ```text
//! cargo run --release -p ccs-bench --bin fig8_auto_coarsening -- [--scale N]
//! ```

use ccs_bench::{run_sim, Options};
use ccs_dag::TaskGroupTree;
use ccs_profile::{apply_coarsening, coarsen, CoarsenTarget, WorkingSetProfile};
use ccs_sched::SchedulerKind;
use ccs_sim::CmpConfig;
use ccs_workloads::{mergesort, MergesortParams};

fn main() {
    let opts = Options::from_env();
    let scale = opts.effective_scale();
    eprintln!("# Figure 8 — automatic task coarsening (Mergesort), scale 1/{scale}");
    println!("cores\tscheme\tcycles\tnormalized_to_best");

    let n_items = ((32u64 << 20) / scale).max(1 << 14);
    let core_counts: &[usize] = if opts.quick { &[8] } else { &[32, 16, 8] };

    for &cores in core_counts {
        let cfg = CmpConfig::default_with_cores(cores).expect("default config");
        let scaled_l2 = (cfg.l2.capacity / scale).max(16 * 1024);

        // Scheme 1: "previous" — the manual selection used in Section 5
        // (task working set = cache / (2 * cores) chosen by hand there too,
        // but based on the unscaled cache and a fixed 64-task merge fan-out).
        let manual = mergesort::build(
            &MergesortParams::new(n_items).with_task_working_set((scaled_l2 / 8).max(16 * 1024)),
        );

        // The finest-grained version is the input to the automatic scheme.
        let finest_ws = (scaled_l2 / 256).max(8 * 1024);
        let finest =
            mergesort::build(&MergesortParams::new(n_items).with_task_working_set(finest_ws));
        let tree = TaskGroupTree::from_computation(&finest);
        let sizes: Vec<u64> = (12..=27).map(|p| 1u64 << p).collect();
        let profile = WorkingSetProfile::collect(&finest, &sizes);
        let target = CoarsenTarget {
            cache_bytes: scaled_l2,
            num_cores: cores,
        };
        let selection = coarsen(&profile, &tree, target);

        // Scheme 2: "dag" — the same finest-grain trace re-grouped.
        let dag_comp = apply_coarsening(&finest, &tree, &selection);

        // Scheme 3: "actual" — regenerate the workload at the recommended
        // granularity (working set = cache/(2*cores), the stop criterion's
        // per-child budget).
        let actual = mergesort::build(
            &MergesortParams::new(n_items)
                .with_task_working_set(target.budget_bytes().max(8 * 1024)),
        );

        let mut rows = Vec::new();
        for (scheme, comp) in [
            ("previous", &manual),
            ("cache/(2*cores) dag", &dag_comp),
            ("cache/(2*cores) actual", &actual),
        ] {
            let r = run_sim(comp, &cfg, &opts, SchedulerKind::Pdf);
            rows.push((scheme.to_string(), r.cycles));
        }
        let best = rows.iter().map(|(_, c)| *c).min().unwrap().max(1);
        for (scheme, cycles) in rows {
            println!(
                "{}\t{}\t{}\t{:.3}",
                cores,
                scheme,
                cycles,
                cycles as f64 / best as f64
            );
        }
        eprintln!(
            "#  {cores} cores: {} fine tasks coarsened into {} tasks (budget {} KB)",
            finest.num_tasks(),
            selection.num_coarse_tasks(),
            target.budget_bytes() / 1024
        );
    }
}
