//! Scheduling overhead of PDF vs WS vs the central queue on the pure
//! (cache-less) DAG executor.

use ccs_dag::synth::{random_computation, SynthParams};
use ccs_dag::Dag;
use ccs_sched::{execute, SchedulerKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_schedulers(c: &mut Criterion) {
    let params = SynthParams {
        max_depth: 8,
        max_par_width: 4,
        max_seq_len: 3,
        max_strand_work: 100,
        max_strand_refs: 0,
        ..SynthParams::default()
    };
    // Pick a seed whose random SP tree is large enough to actually exercise
    // the schedulers (some seeds collapse to a single strand).
    let comp = (0..)
        .map(|seed| random_computation(seed, &params))
        .find(|c| c.num_tasks() >= 500)
        .expect("a seed with a large computation exists");
    let dag = Dag::from_computation(&comp);
    let mut group = c.benchmark_group("scheduler_overhead");
    group.throughput(Throughput::Elements(dag.num_tasks() as u64));

    for kind in [
        SchedulerKind::Pdf,
        SchedulerKind::WorkStealing,
        SchedulerKind::CentralQueue,
    ] {
        for cores in [4usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(
                    kind.name(),
                    format!("{}tasks_{}cores", dag.num_tasks(), cores),
                ),
                &cores,
                |b, &cores| b.iter(|| execute(&dag, cores, kind).makespan),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schedulers
}
criterion_main!(benches);
