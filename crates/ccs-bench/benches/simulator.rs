//! End-to-end throughput of the trace-driven CMP simulator (references
//! simulated per second), PDF vs WS on a small Mergesort.

use ccs_sched::SchedulerKind;
use ccs_sim::{simulate, CmpConfig};
use ccs_workloads::{mergesort, MergesortParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_simulator(c: &mut Criterion) {
    let comp = mergesort::build(&MergesortParams::new(1 << 17).with_task_working_set(32 * 1024));
    let cfg = CmpConfig::default_with_cores(8).unwrap().scaled(128);

    let mut group = c.benchmark_group("cmp_simulator");
    group.throughput(Throughput::Elements(comp.total_refs()));
    group.sample_size(10);

    for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
        group.bench_with_input(
            BenchmarkId::new("mergesort_128k", kind.name()),
            &kind,
            |b, &kind| b.iter(|| simulate(&comp, &cfg, kind).cycles),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
