//! Section 6.1 in miniature: the one-pass LruTree working-set profiler versus
//! the per-group SetAssoc replay, on a small Mergesort trace.

use ccs_dag::TaskGroupTree;
use ccs_profile::{profile_all_groups, WorkingSetProfile};
use ccs_workloads::{mergesort, MergesortParams};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_profilers(c: &mut Criterion) {
    let params = MergesortParams::new(1 << 16).with_task_working_set(16 * 1024);
    let comp = mergesort::build(&params);
    let tree = TaskGroupTree::from_computation(&comp);
    let sizes: Vec<u64> = (12..=20).map(|p| 1u64 << p).collect();

    let mut group = c.benchmark_group("working_set_profiler");
    group.throughput(Throughput::Elements(comp.total_refs()));
    group.sample_size(10);

    group.bench_function("lrutree_one_pass", |b| {
        b.iter(|| WorkingSetProfile::collect(&comp, &sizes).num_tasks())
    });

    group.bench_function("setassoc_per_group", |b| {
        b.iter(|| profile_all_groups(&comp, &tree, &sizes).len())
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_profilers
}
criterion_main!(benches);
