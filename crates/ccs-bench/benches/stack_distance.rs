//! Micro-benchmarks of the LRU stack-distance structures (the data structure
//! behind the Section 6.1 LruTree profiler).

use ccs_cache::{FenwickStack, NaiveLruStack, OrderStatStack, StackDistanceModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn make_trace(len: usize, distinct: u64) -> Vec<u64> {
    let mut x: u64 = 0x1234_5678;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % distinct
        })
        .collect()
}

fn bench_stack_distance(c: &mut Criterion) {
    let trace = make_trace(100_000, 4096);
    let mut group = c.benchmark_group("stack_distance");
    group.throughput(Throughput::Elements(trace.len() as u64));

    group.bench_function(BenchmarkId::new("order_stat_treap", trace.len()), |b| {
        b.iter(|| {
            let mut s = OrderStatStack::new();
            let mut sum = 0u64;
            for &l in &trace {
                sum = sum.wrapping_add(s.access(l).unwrap_or(0));
            }
            sum
        })
    });

    group.bench_function(BenchmarkId::new("fenwick", trace.len()), |b| {
        b.iter(|| {
            let mut s = FenwickStack::new();
            let mut sum = 0u64;
            for &l in &trace {
                sum = sum.wrapping_add(s.access(l).unwrap_or(0));
            }
            sum
        })
    });

    // The naive stack is O(n) per access; use a shorter trace so the bench
    // stays bounded while still showing the asymptotic gap.
    let short = &trace[..10_000];
    group.bench_function(BenchmarkId::new("naive", short.len()), |b| {
        b.iter(|| {
            let mut s = NaiveLruStack::new();
            let mut sum = 0u64;
            for &l in short {
                sum = sum.wrapping_add(s.access(l).unwrap_or(0));
            }
            sum
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stack_distance
}
criterion_main!(benches);
