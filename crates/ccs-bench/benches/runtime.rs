//! Native-runtime benchmarks: fork-join overhead and parallel sorting under
//! the Work-Stealing and PDF policies of `ccs-runtime`.

use ccs_runtime::{Policy, ThreadPool};
use ccs_workloads::native::{par_mergesort, par_sum};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_runtime(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4);
    let data: Vec<u64> = (0..1_000_000u64).collect();
    let mut unsorted: Vec<u32> = Vec::with_capacity(1 << 18);
    let mut x = 7u32;
    for _ in 0..(1 << 18) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        unsorted.push(x);
    }

    let mut group = c.benchmark_group("native_runtime");
    group.sample_size(10);

    for policy in [Policy::WorkStealing, Policy::Pdf] {
        let pool = ThreadPool::new(threads, policy);
        let name = match policy {
            Policy::WorkStealing => "ws",
            Policy::Pdf => "pdf",
        };

        group.throughput(Throughput::Elements(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("par_sum", name), &data, |b, data| {
            b.iter(|| pool.install(|| par_sum(data, 4096)))
        });

        group.throughput(Throughput::Elements(unsorted.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("par_mergesort", name),
            &unsorted,
            |b, input| {
                b.iter(|| {
                    let mut v = input.clone();
                    pool.install(|| par_mergesort(&mut v, 8 * 1024));
                    v[0]
                })
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_runtime
}
criterion_main!(benches);
