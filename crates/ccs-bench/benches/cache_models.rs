//! Throughput of the cache models used by the CMP simulator.

use ccs_cache::{CacheConfig, IdealCache, SetAssocCache};
use ccs_dag::AccessKind;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn make_lines(len: usize, distinct: u64) -> Vec<u64> {
    let mut x: u64 = 0xBEEF;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % distinct) * 128
        })
        .collect()
}

fn bench_cache_models(c: &mut Criterion) {
    let lines = make_lines(200_000, 64 * 1024);
    let mut group = c.benchmark_group("cache_models");
    group.throughput(Throughput::Elements(lines.len() as u64));

    group.bench_function("setassoc_l2_8mb_16way", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(CacheConfig::new(8 << 20, 128, 16, 13));
            let mut misses = 0u64;
            for &l in &lines {
                if !cache.access_line(l, AccessKind::Read).hit {
                    misses += 1;
                }
            }
            misses
        })
    });

    group.bench_function("setassoc_l1_64kb_4way", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(CacheConfig::paper_l1());
            let mut misses = 0u64;
            for &l in &lines {
                if !cache.access_line(l, AccessKind::Read).hit {
                    misses += 1;
                }
            }
            misses
        })
    });

    group.bench_function("ideal_lru_8mb", |b| {
        b.iter(|| {
            let mut cache = IdealCache::with_bytes(8 << 20, 128);
            let mut misses = 0u64;
            for &l in &lines {
                if !cache.access_line(l, AccessKind::Read) {
                    misses += 1;
                }
            }
            misses
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache_models
}
criterion_main!(benches);
