//! Builder-style experiment sessions.
//!
//! An [`Experiment`] describes a sweep declaratively — workloads ×
//! schedulers × CMP design points, plus a scale divisor — and
//! [`Experiment::run`] fans the cross-product into [`RunRecord`]s collected
//! in a [`Report`].  This replaces the hand-rolled sweep loops the seed's
//! figure binaries each carried.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccs_dag::Computation;
use ccs_dag::Dag;
use ccs_runtime::{join, Policy, ThreadPool};
use ccs_sched::spec::{format_spec, parse_spec, SpecParseError};
use ccs_sched::SchedulerSpec;
use ccs_sim::{simulate_batch, simulate_with_engine, CmpConfig, SimEngine};
use ccs_workloads::{Benchmark, BuildCtx, UnknownWorkload, WorkloadRegistry};

use crate::report::{Report, RunRecord};

/// The quick-mode scale clamp: smoke tests always run at a divisor of at
/// least 256.  Single authority for both [`Experiment::effective_scale`] and
/// [`Options::effective_scale`](crate::Options::effective_scale).
pub fn effective_scale(scale: u64, quick: bool) -> u64 {
    if quick {
        scale.max(256)
    } else {
        scale
    }
}

/// Geometry prebuild for one (already scaled) design point: compile the
/// packed set lanes the event engine will look up — the (L1, L2) pair
/// word, or the (L1, L2, L3) triple word when the point has a shared L3
/// (DESIGN.md §9 and §12) — and return their heap footprint.  Both forms
/// are memoised on the computation, so this is the incremental cost.
fn prebuild_lanes(stream: &ccs_dag::LineStream, config: &CmpConfig) -> u64 {
    let l1 = ccs_dag::CacheGeometry::new(config.l1.line_size, config.l1.num_sets());
    let l2 = ccs_dag::CacheGeometry::new(config.l2.line_size, config.l2.num_sets());
    match &config.l3 {
        Some(l3) => stream
            .geometry_triple(
                l1,
                l2,
                ccs_dag::CacheGeometry::new(l3.line_size, l3.num_sets()),
            )
            .heap_bytes(),
        None => stream.geometry_pair(l1, l2).heap_bytes(),
    }
}

/// A serialisable "which workload" value — the workload-axis counterpart of
/// [`SchedulerSpec`].
///
/// The common case is a *registry* spec: a name registered with
/// [`WorkloadRegistry::global`] plus free-form `key=value` parameters,
/// written in the shared spec grammar (`"mergesort"`, `"matmul:n=512"`,
/// `"heat:rows=1024,cols=1024,steps=8"`).  Registry workloads are rebuilt
/// per design point, so task granularity tracks the (scaled) cache.  A
/// *fixed* spec wraps a caller-built computation that is reused as-is at
/// every design point.
///
/// Every workload-accepting entry point takes `impl Into<WorkloadSpec>`, so
/// a [`Benchmark`], a `"matmul:n=512"` string literal, or a fully built spec
/// all work.
#[derive(Clone, Debug)]
pub enum WorkloadSpec {
    /// A named workload built through [`WorkloadRegistry::global`] per
    /// design point.
    Registry {
        /// Registry name (e.g. `"mergesort"`).
        name: String,
        /// `key=value` build parameters passed to the factory.
        params: BTreeMap<String, String>,
    },
    /// A fixed computation, reused as-is at every design point.
    Fixed {
        /// Name used in records.
        name: String,
        /// The computation to simulate.
        comp: Arc<Computation>,
    },
}

impl WorkloadSpec {
    /// A registry workload by name, with no parameters (add some with
    /// [`WorkloadSpec::with_param`]).
    pub fn registry(name: impl Into<String>) -> WorkloadSpec {
        WorkloadSpec::Registry {
            name: name.into(),
            params: BTreeMap::new(),
        }
    }

    /// Attach one `key=value` build parameter (registry specs only; a no-op
    /// on fixed specs).
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> WorkloadSpec {
        if let WorkloadSpec::Registry { params, .. } = &mut self {
            params.insert(key.into(), value.into());
        }
        self
    }

    /// A fixed workload from a caller-built computation.
    pub fn fixed(name: impl Into<String>, comp: Computation) -> WorkloadSpec {
        WorkloadSpec::Fixed {
            name: name.into(),
            comp: Arc::new(comp),
        }
    }

    /// Parse a workload spec string: `"name"` or
    /// `"name:key=value,key=value"` (the shared grammar of
    /// [`ccs_sched::spec`]).
    ///
    /// The name is *not* checked against the registry here — that happens at
    /// build time (or up front in `Options`), so specs can be parsed before
    /// their workload is registered.
    pub fn parse(input: &str) -> Result<WorkloadSpec, SpecParseError> {
        let parsed = parse_spec(input)?;
        Ok(WorkloadSpec::Registry {
            name: parsed.name,
            params: parsed.params.into_iter().collect(),
        })
    }

    /// Parse *and validate* a workload spec string against the global
    /// [`WorkloadRegistry`], returning a typed
    /// [`SpecError`](ccs_sched::spec::SpecError) on either failure.
    ///
    /// This is the entry point for untrusted input (daemon requests,
    /// config files): unlike [`WorkloadSpec::parse`] it also rejects
    /// unregistered names, and unlike [`WorkloadSpec::build`] it never
    /// panics.
    pub fn resolve(input: &str) -> Result<WorkloadSpec, ccs_sched::spec::SpecError> {
        let spec = WorkloadSpec::parse(input)?;
        let registry = WorkloadRegistry::global();
        if !registry.contains(spec.name()) {
            return Err(ccs_sched::spec::SpecError::unknown(
                "workload",
                spec.name(),
                registry.names(),
            ));
        }
        Ok(spec)
    }

    /// The base workload name (without parameters).
    pub fn name(&self) -> &str {
        match self {
            WorkloadSpec::Registry { name, .. } => name,
            WorkloadSpec::Fixed { name, .. } => name,
        }
    }

    /// The label used in records and reports: the canonical spec string
    /// (`"matmul:n=512"`, parameters in sorted key order), or the plain name
    /// for fixed workloads.  [`WorkloadSpec::parse`] of a registry label
    /// returns an equal spec.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Registry { name, params } => {
                format_spec(name, params.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            }
            WorkloadSpec::Fixed { name, .. } => name.clone(),
        }
    }

    /// Build (or reuse) the computation for one design point.
    ///
    /// # Panics
    /// Panics when a registry name is not registered (with the registry's
    /// did-you-mean message); use [`WorkloadSpec::try_build`] to handle that
    /// case.
    pub fn build(&self, scale: u64, l2_bytes: u64, cores: usize) -> Arc<Computation> {
        self.try_build(scale, l2_bytes, cores)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build through the global registry, reporting unknown names.
    pub fn try_build(
        &self,
        scale: u64,
        l2_bytes: u64,
        cores: usize,
    ) -> Result<Arc<Computation>, UnknownWorkload> {
        match self {
            WorkloadSpec::Registry { name, params } => {
                let mut ctx = BuildCtx::new(scale, l2_bytes, cores);
                ctx.params = params.clone();
                WorkloadRegistry::global().build(name, &ctx).map(Arc::new)
            }
            WorkloadSpec::Fixed { comp, .. } => Ok(Arc::clone(comp)),
        }
    }
}

impl PartialEq for WorkloadSpec {
    /// Registry specs compare by name and parameters; fixed specs by name
    /// and computation identity (same `Arc`).
    fn eq(&self, other: &WorkloadSpec) -> bool {
        match (self, other) {
            (
                WorkloadSpec::Registry {
                    name: a,
                    params: pa,
                },
                WorkloadSpec::Registry {
                    name: b,
                    params: pb,
                },
            ) => a == b && pa == pb,
            (
                WorkloadSpec::Fixed { name: a, comp: ca },
                WorkloadSpec::Fixed { name: b, comp: cb },
            ) => a == b && Arc::ptr_eq(ca, cb),
            _ => false,
        }
    }
}

impl std::fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl From<Benchmark> for WorkloadSpec {
    fn from(b: Benchmark) -> WorkloadSpec {
        WorkloadSpec::registry(b.name())
    }
}

impl From<&str> for WorkloadSpec {
    /// Parse via [`WorkloadSpec::parse`].
    ///
    /// # Panics
    /// Panics when the string does not match the spec grammar; use
    /// [`WorkloadSpec::parse`] to handle that case.
    fn from(spec: &str) -> WorkloadSpec {
        WorkloadSpec::parse(spec).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl From<String> for WorkloadSpec {
    /// Parse via [`WorkloadSpec::parse`] (see `From<&str>`).
    fn from(spec: String) -> WorkloadSpec {
        WorkloadSpec::from(spec.as_str())
    }
}

impl From<&WorkloadSpec> for WorkloadSpec {
    fn from(spec: &WorkloadSpec) -> WorkloadSpec {
        spec.clone()
    }
}

/// Core counts accepted by [`Experiment::cores`]: a single count, a slice, an
/// array, a `Vec`, or anything iterable.
pub trait CoreSelection {
    /// The selected core counts.
    fn core_counts(self) -> Vec<usize>;
}

impl CoreSelection for usize {
    fn core_counts(self) -> Vec<usize> {
        vec![self]
    }
}

impl<const N: usize> CoreSelection for [usize; N] {
    fn core_counts(self) -> Vec<usize> {
        self.to_vec()
    }
}

impl CoreSelection for &[usize] {
    fn core_counts(self) -> Vec<usize> {
        self.to_vec()
    }
}

impl CoreSelection for Vec<usize> {
    fn core_counts(self) -> Vec<usize> {
        self
    }
}

impl CoreSelection for std::ops::Range<usize> {
    fn core_counts(self) -> Vec<usize> {
        self.collect()
    }
}

/// A declarative sweep: workloads × schedulers × CMP design points.
///
/// ```
/// use ccs_experiment::Experiment;
/// use ccs_sched::SchedulerKind;
/// use ccs_workloads::Benchmark;
///
/// let report = Experiment::new(Benchmark::Mergesort)
///     .cores(8)
///     .scale(512)
///     .schedulers([SchedulerKind::Pdf, SchedulerKind::WorkStealing])
///     .run();
/// assert_eq!(report.len(), 2);
/// let pdf = report.for_scheduler("pdf").next().unwrap();
/// let ws = report.for_scheduler("ws").next().unwrap();
/// assert!(pdf.l2_misses <= ws.l2_misses, "PDF shares the cache constructively");
/// ```
#[derive(Clone)]
pub struct Experiment {
    name: String,
    workloads: Vec<WorkloadSpec>,
    schedulers: Vec<SchedulerSpec>,
    configs: Vec<CmpConfig>,
    scale: u64,
    quick: bool,
    baseline: bool,
    parallelism: usize,
    engine: SimEngine,
}

impl Experiment {
    /// An experiment over one workload (more can be added with
    /// [`Experiment::workload`]).
    pub fn new(workload: impl Into<WorkloadSpec>) -> Experiment {
        let workload = workload.into();
        Experiment {
            name: workload.name().to_string(),
            workloads: vec![workload],
            schedulers: Vec::new(),
            configs: Vec::new(),
            scale: 1,
            quick: false,
            baseline: true,
            parallelism: 1,
            engine: SimEngine::default(),
        }
    }

    /// An experiment with no workloads yet, named for its report.
    pub fn named(name: impl Into<String>) -> Experiment {
        Experiment {
            name: name.into(),
            workloads: Vec::new(),
            schedulers: Vec::new(),
            configs: Vec::new(),
            scale: 1,
            quick: false,
            baseline: true,
            parallelism: 1,
            engine: SimEngine::default(),
        }
    }

    /// Set the report name.
    pub fn name(mut self, name: impl Into<String>) -> Experiment {
        self.name = name.into();
        self
    }

    /// Add one workload.
    pub fn workload(mut self, workload: impl Into<WorkloadSpec>) -> Experiment {
        self.workloads.push(workload.into());
        self
    }

    /// Add several workloads.
    pub fn workloads<W: Into<WorkloadSpec>>(
        mut self,
        workloads: impl IntoIterator<Item = W>,
    ) -> Experiment {
        self.workloads.extend(workloads.into_iter().map(Into::into));
        self
    }

    /// Add the paper's default (Table 2) configuration for each selected core
    /// count: `.cores(8)`, `.cores([1, 2, 4, 8])`, ….
    ///
    /// # Panics
    /// Panics if a core count has no default configuration (the defaults
    /// cover 1–32 cores in powers of two).
    pub fn cores(mut self, selection: impl CoreSelection) -> Experiment {
        for count in selection.core_counts() {
            let cfg = CmpConfig::default_with_cores(count)
                .unwrap_or_else(|| panic!("no default CMP configuration with {count} cores"));
            self.configs.push(cfg);
        }
        self
    }

    /// Add one explicit design point.
    pub fn config(mut self, config: CmpConfig) -> Experiment {
        self.configs.push(config);
        self
    }

    /// Add several explicit design points (e.g.
    /// [`CmpConfig::single_tech_45nm`]).
    pub fn configs(mut self, configs: impl IntoIterator<Item = CmpConfig>) -> Experiment {
        self.configs.extend(configs);
        self
    }

    /// Add one scheduler.
    pub fn scheduler(mut self, scheduler: impl Into<SchedulerSpec>) -> Experiment {
        self.schedulers.push(scheduler.into());
        self
    }

    /// Add several schedulers: `SchedulerKind`s, registry names, or full
    /// specs.
    pub fn schedulers<S: Into<SchedulerSpec>>(
        mut self,
        schedulers: impl IntoIterator<Item = S>,
    ) -> Experiment {
        self.schedulers
            .extend(schedulers.into_iter().map(Into::into));
        self
    }

    /// Divide the paper's input sizes *and* all cache capacities by `scale`,
    /// preserving every capacity ratio (1 = the paper's sizes).
    pub fn scale(mut self, scale: u64) -> Experiment {
        self.scale = scale.max(1);
        self
    }

    /// Quick mode: clamp the scale divisor to at least 256 so smoke tests
    /// stay fast (the seed harness's `--quick` semantics).
    pub fn quick(mut self, quick: bool) -> Experiment {
        self.quick = quick;
        self
    }

    /// Whether to also run a 1-core sequential baseline per workload ×
    /// design point and record speedups (default: on).
    pub fn sequential_baseline(mut self, baseline: bool) -> Experiment {
        self.baseline = baseline;
        self
    }

    /// Fan the sweep's workload × design-point builds and simulations across
    /// `n` worker threads of a `ccs-runtime` fork-join pool (our own
    /// work-stealing runtime — the harness dogfoods the system it studies).
    /// The default (1) runs sequentially on the calling thread.
    ///
    /// Record order — and therefore the report's JSON — is byte-identical to
    /// a sequential run: every run is deterministic and records are placed
    /// by cross-product position, not completion order.
    ///
    /// Must be called from outside any `ccs-runtime` pool: a parallel `run`
    /// installs onto its own private pool, and nesting installs deadlocks.
    pub fn parallelism(mut self, n: usize) -> Experiment {
        self.parallelism = n.max(1);
        self
    }

    /// Select the simulator engine (default: the event-driven production
    /// engine).  [`SimEngine::Reference`] runs the retained cycle-stepper —
    /// metrics-identical but much slower; the bench harness uses it to
    /// measure the event-driven speedup.  [`SimEngine::Batch`] groups the
    /// sweep with [`Experiment::batch_groups`] so points differing only in
    /// latencies share one recorded pass — the report stays byte-identical
    /// to the event engine's.
    pub fn engine(mut self, engine: SimEngine) -> Experiment {
        self.engine = engine;
        self
    }

    /// The scale divisor runs will actually use (after `quick` clamping).
    pub fn effective_scale(&self) -> u64 {
        effective_scale(self.scale, self.quick)
    }

    /// The schedulers a run will actually use: the ones added with
    /// [`Experiment::schedulers`], or the defaults (PDF and WS) when none
    /// were.  One [`RunRecord`] is produced per sweep point × resolved
    /// scheduler, in this order.
    pub fn resolved_schedulers(&self) -> Vec<SchedulerSpec> {
        if self.schedulers.is_empty() {
            vec![SchedulerSpec::new("pdf"), SchedulerSpec::new("ws")]
        } else {
            self.schedulers.clone()
        }
    }

    /// The design points a run will actually use: the ones added with
    /// [`Experiment::cores`]/[`Experiment::configs`], or the paper's 8-core
    /// default when none were.
    pub fn resolved_configs(&self) -> Vec<CmpConfig> {
        if self.configs.is_empty() {
            vec![CmpConfig::default_with_cores(8).expect("8-core default exists")]
        } else {
            self.configs.clone()
        }
    }

    /// The resolved workload × design-point cross product, in report order
    /// (workload-major).  Each point yields one record per
    /// [`Experiment::resolved_schedulers`] entry when run through
    /// [`Experiment::run_sweep_point`]; [`Experiment::run`] is exactly the
    /// concatenation of `run_sweep_point` over these points.  The `ccs-serve`
    /// daemon uses this decomposition to batch points onto its pool and
    /// stream per-point records as they complete.
    pub fn sweep_points(&self) -> Vec<SweepPoint> {
        let configs = self.resolved_configs();
        let mut points = Vec::with_capacity(self.workloads.len() * configs.len());
        for workload in &self.workloads {
            for config in &configs {
                points.push(SweepPoint {
                    index: points.len(),
                    workload: workload.clone(),
                    config: config.clone(),
                });
            }
        }
        points
    }

    /// Run one sweep point, returning its records in resolved-scheduler
    /// order — byte-identical to the corresponding slice of
    /// [`Experiment::run`]'s report (every simulation is deterministic).
    ///
    /// Registry builders are deterministic functions of (spec, scale,
    /// scaled L2 capacity, cores) — design points differing only in
    /// latencies or bandwidth (e.g. the fig. 4/5 sweeps) simulate the
    /// *same* computation.  Each distinct computation (and its DAG) is
    /// fetched through the **process-global build cache**
    /// ([`crate::build_cache`]), so the build is shared not only by the
    /// points of one run but by every sweep, repeat trial and daemon
    /// request of the process; the computation's internal stream/geometry
    /// memoisation then also survives with it.  Caller-built `Fixed`
    /// computations share their `Arc`'d trace arena but re-derive the DAG.
    pub fn run_sweep_point(&self, point: &SweepPoint) -> Vec<RunRecord> {
        let scale = self.effective_scale();
        let schedulers = self.resolved_schedulers();
        let scaled = point.config.scaled(scale);
        let l2_bytes = scaled.l2.capacity;
        let cores = point.config.num_cores;
        let build = || {
            // Fault-plan hook (no-op unless a plan is installed): user
            // workload factories can panic, and this is where they run.
            ccs_runtime::fault::inject_panic(ccs_runtime::fault::FaultKind::WorkloadBuild);
            let comp = point.workload.build(scale, l2_bytes, cores);
            let dag = Arc::new(Dag::from_computation(&comp));
            (comp, dag)
        };
        let built = match &point.workload {
            WorkloadSpec::Registry { .. } => crate::build_cache::get_or_build(
                (point.workload.label(), scale, l2_bytes, cores),
                build,
            ),
            WorkloadSpec::Fixed { .. } => Arc::new(build()),
        };
        let (comp, dag) = &*built;
        let comp: &Computation = comp.as_ref();
        let dag: &Dag = dag.as_ref();
        // Geometry prebuild: resolve the line stream and the packed
        // (L1, L2) set lanes before the simulations, so the engine
        // finds everything compiled.  Both are memoised on the
        // computation, so `compile_ms` is the *incremental* cost this
        // record actually paid — the full compile on a cold build,
        // ~zero when an earlier point, sweep or trial already did it.
        let compile_start = std::time::Instant::now();
        let stream = comp.line_stream(scaled.l2.line_size);
        let lanes_bytes = prebuild_lanes(&stream, &scaled);
        let compile_ms = compile_start.elapsed().as_secs_f64() * 1000.0;
        // Memory-footprint metrics: deterministic functions of the
        // build and geometry, identical for both engines.
        let trace_bytes = comp.trace_arena_bytes();
        let peak_alloc_estimate =
            trace_bytes + stream.heap_bytes() + lanes_bytes + dag.heap_bytes();
        let sequential = self.baseline.then(|| {
            let mut seq_cfg = scaled.clone();
            seq_cfg.num_cores = 1;
            // A single core cannot be partitioned into >1 L2 clusters.
            seq_cfg.clusters = 1;
            seq_cfg.name = format!("{}-seq", scaled.name);
            let mut sched = SchedulerSpec::new("pdf").build();
            simulate_with_engine(comp, dag, &seq_cfg, sched.as_mut(), self.engine)
        });
        schedulers
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut sched = spec.build();
                let result = simulate_with_engine(comp, dag, &scaled, sched.as_mut(), self.engine);
                // The compile was paid once for the whole point; charge
                // it to the point's first record only, so summing
                // `compile_ms` over a report yields the true total
                // rather than one copy per scheduler.
                let record_compile_ms = if i == 0 { compile_ms } else { 0.0 };
                RunRecord::from_sim(point.workload.label(), spec, &result, sequential.as_ref())
                    .with_footprint(trace_bytes, peak_alloc_estimate)
                    .with_compile_ms(record_compile_ms)
            })
            .collect()
    }

    /// Partition [`Experiment::sweep_points`] into batchable groups: points
    /// sharing a workload and a machine shape
    /// ([`ccs_sim::batch::same_machine_shape`] on the *scaled* configs —
    /// core count and both cache geometries equal, latency axes free)
    /// land in one group and can share a single recorded pass under the
    /// batch engine.  Groups are ordered by first appearance and preserve
    /// point order within, so scattering each point's records back by
    /// [`SweepPoint::index`] reproduces report order exactly.  Points that
    /// batch with nothing form singleton groups — running a group is then
    /// exactly [`Experiment::run_sweep_point`].
    pub fn batch_groups(&self) -> Vec<Vec<SweepPoint>> {
        let scale = self.effective_scale();
        let mut groups: Vec<Vec<SweepPoint>> = Vec::new();
        for point in self.sweep_points() {
            let scaled = point.config.scaled(scale);
            let slot = groups.iter_mut().find(|group| {
                let head = &group[0];
                head.workload == point.workload
                    && ccs_sim::batch::same_machine_shape(&head.config.scaled(scale), &scaled)
            });
            match slot {
                Some(group) => group.push(point),
                None => groups.push(vec![point]),
            }
        }
        groups
    }

    /// Run one batchable group (per [`Experiment::batch_groups`]) through
    /// [`simulate_batch`], returning each point's records in resolved-
    /// scheduler order — byte-identical to [`Experiment::run_sweep_point`]
    /// on every point (the batch engine's contract).  The build, the
    /// geometry prebuild and the footprint metrics are shared by the whole
    /// group; `compile_ms` is charged to the group's first record only, and
    /// every record is annotated with the group width
    /// ([`RunRecord::batch_width`]).
    ///
    /// # Panics
    /// Panics when `points` is empty or its points disagree on workload or
    /// machine shape.
    pub fn run_batch_group(&self, points: &[SweepPoint]) -> Vec<Vec<RunRecord>> {
        let head = points.first().expect("batch group has at least one point");
        let scale = self.effective_scale();
        let schedulers = self.resolved_schedulers();
        let scaled_configs: Vec<CmpConfig> =
            points.iter().map(|p| p.config.scaled(scale)).collect();
        assert!(
            points
                .iter()
                .zip(&scaled_configs)
                .all(|(p, c)| p.workload == head.workload
                    && ccs_sim::batch::same_machine_shape(&scaled_configs[0], c)),
            "batch group mixes workloads or machine shapes"
        );
        let l2_bytes = scaled_configs[0].l2.capacity;
        let cores = head.config.num_cores;
        let build = || {
            ccs_runtime::fault::inject_panic(ccs_runtime::fault::FaultKind::WorkloadBuild);
            let comp = head.workload.build(scale, l2_bytes, cores);
            let dag = Arc::new(Dag::from_computation(&comp));
            (comp, dag)
        };
        let built = match &head.workload {
            WorkloadSpec::Registry { .. } => crate::build_cache::get_or_build(
                (head.workload.label(), scale, l2_bytes, cores),
                build,
            ),
            WorkloadSpec::Fixed { .. } => Arc::new(build()),
        };
        let (comp, dag) = &*built;
        let comp: &Computation = comp.as_ref();
        let dag: &Dag = dag.as_ref();
        // One geometry prebuild serves the whole group: same machine shape
        // means the same line stream and the same (L1, L2) set lanes.
        let compile_start = std::time::Instant::now();
        let shape = &scaled_configs[0];
        let stream = comp.line_stream(shape.l2.line_size);
        let lanes_bytes = prebuild_lanes(&stream, shape);
        let compile_ms = compile_start.elapsed().as_secs_f64() * 1000.0;
        let trace_bytes = comp.trace_arena_bytes();
        let peak_alloc_estimate =
            trace_bytes + stream.heap_bytes() + lanes_bytes + dag.heap_bytes();
        // The sequential baselines differ only in latencies too, so they
        // form their own (1-core, hence replayable) batch.
        let sequentials = self.baseline.then(|| {
            let seq_configs: Vec<CmpConfig> = scaled_configs
                .iter()
                .map(|scaled| {
                    let mut seq_cfg = scaled.clone();
                    seq_cfg.num_cores = 1;
                    // A single core cannot be partitioned into >1 clusters.
                    seq_cfg.clusters = 1;
                    seq_cfg.name = format!("{}-seq", scaled.name);
                    seq_cfg
                })
                .collect();
            simulate_batch(comp, dag, &seq_configs, &SchedulerSpec::new("pdf")).results
        });
        // One batched pass per scheduler over the whole group.
        let per_sched: Vec<Vec<ccs_sim::SimResult>> = schedulers
            .iter()
            .map(|spec| simulate_batch(comp, dag, &scaled_configs, spec).results)
            .collect();
        let width = points.len() as u64;
        points
            .iter()
            .enumerate()
            .map(|(j, point)| {
                schedulers
                    .iter()
                    .enumerate()
                    .map(|(i, spec)| {
                        let sequential = sequentials.as_ref().map(|seqs| &seqs[j]);
                        // As in `run_sweep_point`: the compile was paid once,
                        // here for the whole group.
                        let record_compile_ms = if i == 0 && j == 0 { compile_ms } else { 0.0 };
                        RunRecord::from_sim(
                            point.workload.label(),
                            spec,
                            &per_sched[i][j],
                            sequential,
                        )
                        .with_footprint(trace_bytes, peak_alloc_estimate)
                        .with_compile_ms(record_compile_ms)
                        .with_batch_width(width)
                    })
                    .collect()
            })
            .collect()
    }

    /// Run the full cross-product and collect a [`Report`].
    ///
    /// Defaults when a dimension was left unset: schedulers = PDF and WS;
    /// configs = the paper's 8-core default.  Under [`SimEngine::Batch`]
    /// the sweep is partitioned with [`Experiment::batch_groups`] and each
    /// group shares one recorded pass; the report is byte-identical either
    /// way.
    ///
    /// # Panics
    /// Panics if no workload was added, or if a scheduler or workload name
    /// is not registered.
    pub fn run(&self) -> Report {
        assert!(!self.workloads.is_empty(), "experiment has no workloads");
        if self.engine == SimEngine::Batch {
            return self.run_batched();
        }
        // One point per workload × design point; each point yields one
        // record per scheduler.  Points are independent, so they can run in
        // any order — records are placed by position to keep the report
        // deterministic.
        let points = self.sweep_points();
        let run_point = |point: &SweepPoint| self.run_sweep_point(point);
        let threads = self.parallelism.min(points.len());
        let results: Vec<Vec<RunRecord>> = if threads <= 1 {
            points.iter().map(&run_point).collect()
        } else {
            let mut slots: Vec<Option<Vec<RunRecord>>> = points.iter().map(|_| None).collect();
            let pool = ThreadPool::new(threads, Policy::WorkStealing);
            pool.install(|| fan_out(&points, &mut slots, &run_point));
            slots
                .into_iter()
                .map(|slot| slot.expect("every sweep point produces records"))
                .collect()
        };

        let mut report = Report::new(self.name.clone(), self.effective_scale());
        report.records = results.into_iter().flatten().collect();
        report
    }

    /// The batch-engine body of [`Experiment::run`]: fan over
    /// [`Experiment::batch_groups`] (each group is one unit of parallel
    /// work) and scatter each point's records back by its cross-product
    /// index, so record order matches the event engine exactly.
    fn run_batched(&self) -> Report {
        let groups = self.batch_groups();
        let run_group = |group: &Vec<SweepPoint>| self.run_batch_group(group);
        let threads = self.parallelism.min(groups.len());
        let per_group: Vec<Vec<Vec<RunRecord>>> = if threads <= 1 {
            groups.iter().map(&run_group).collect()
        } else {
            let mut slots: Vec<Option<Vec<Vec<RunRecord>>>> = groups.iter().map(|_| None).collect();
            let pool = ThreadPool::new(threads, Policy::WorkStealing);
            pool.install(|| fan_out(&groups, &mut slots, &run_group));
            slots
                .into_iter()
                .map(|slot| slot.expect("every batch group produces records"))
                .collect()
        };
        let total_points: usize = groups.iter().map(Vec::len).sum();
        let mut slots: Vec<Option<Vec<RunRecord>>> = (0..total_points).map(|_| None).collect();
        for (group, results) in groups.iter().zip(per_group) {
            for (point, records) in group.iter().zip(results) {
                slots[point.index] = Some(records);
            }
        }
        let mut report = Report::new(self.name.clone(), self.effective_scale());
        report.records = slots
            .into_iter()
            .flat_map(|slot| slot.expect("groups cover every sweep point"))
            .collect();
        report
    }
}

/// One resolved sweep point of an [`Experiment`]: a workload × design-point
/// pair at cross-product position `index` (workload-major, matching report
/// order).  Produced by [`Experiment::sweep_points`] and executed by
/// [`Experiment::run_sweep_point`].
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Position in the cross product.  The report slice this point's
    /// records occupy starts at `index × resolved_schedulers().len()`.
    pub index: usize,
    /// The workload of this point.
    pub workload: WorkloadSpec,
    /// The (unscaled) design point.
    pub config: CmpConfig,
}

/// Recursively fork-join over work items (sweep points or batch groups),
/// writing each item's result into its own slot so completion order cannot
/// reorder the report.
fn fan_out<T, R, F>(items: &[T], slots: &mut [Option<R>], run: &F)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match items.len() {
        0 => {}
        1 => slots[0] = Some(run(&items[0])),
        n => {
            let (left, right) = items.split_at(n / 2);
            let (left_out, right_out) = slots.split_at_mut(n / 2);
            join(
                || fan_out(left, left_out, run),
                || fan_out(right, right_out, run),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::{ComputationBuilder, GroupMeta};
    use ccs_sched::SchedulerKind;

    fn tiny_fixed_workload() -> WorkloadSpec {
        let mut b = ComputationBuilder::new(128);
        let mut space = ccs_dag::AddressSpace::new();
        let region = space.alloc(32 * 1024);
        let leaves: Vec<_> = (0..4)
            .map(|_| {
                b.strand_with(|t| {
                    t.read_range(region.base, region.bytes, 2);
                })
            })
            .collect();
        let par = b.par(leaves, GroupMeta::labeled("scan"));
        let root = b.seq(vec![par], GroupMeta::labeled("root"));
        WorkloadSpec::fixed("tiny-scan", b.finish(root))
    }

    #[test]
    fn cross_product_has_one_record_per_point() {
        let report = Experiment::new(tiny_fixed_workload())
            .cores([2, 4])
            .scale(64)
            .schedulers([
                SchedulerKind::Pdf,
                SchedulerKind::WorkStealing,
                SchedulerKind::CentralQueue,
            ])
            .run();
        assert_eq!(report.len(), 2 * 3);
        assert_eq!(report.schedulers(), vec!["central", "pdf", "ws"]);
        for r in &report.records {
            assert!(r.cycles > 0);
            assert!(r.speedup_over_seq.is_some(), "baseline on by default");
        }
    }

    #[test]
    fn sweep_points_decompose_run_byte_identically() {
        // The serve daemon runs `run_sweep_point` per point and reassembles;
        // that must equal `run`'s report slice-for-slice, byte-for-byte.
        let exp = Experiment::new(tiny_fixed_workload())
            .workload("mergesort")
            .cores([2, 4])
            .scale(1024)
            .schedulers([SchedulerKind::Pdf, SchedulerKind::WorkStealing]);
        let report = exp.run();
        let points = exp.sweep_points();
        assert_eq!(points.len(), 2 * 2);
        let per_sched = exp.resolved_schedulers().len();
        for point in &points {
            let records = exp.run_sweep_point(point);
            assert_eq!(records.len(), per_sched);
            let start = point.index * per_sched;
            for (offset, record) in records.iter().enumerate() {
                let expected = &report.records[start + offset];
                assert_eq!(record, expected);
                assert_eq!(
                    record.to_json().to_string_pretty(),
                    expected.to_json().to_string_pretty(),
                );
            }
        }
    }

    #[test]
    fn defaults_are_pdf_ws_on_default_8() {
        let report = Experiment::new(tiny_fixed_workload()).scale(64).run();
        assert_eq!(report.len(), 2);
        assert!(report.records.iter().all(|r| r.cores == 8));
    }

    #[test]
    fn quick_clamps_scale() {
        let exp = Experiment::new(Benchmark::Mergesort).scale(32).quick(true);
        assert_eq!(exp.effective_scale(), 256);
        let exp = Experiment::new(Benchmark::Mergesort).scale(512).quick(true);
        assert_eq!(exp.effective_scale(), 512);
    }

    #[test]
    fn baseline_can_be_disabled() {
        let report = Experiment::new(tiny_fixed_workload())
            .cores(2)
            .scale(64)
            .sequential_baseline(false)
            .run();
        assert!(report.records.iter().all(|r| r.speedup_over_seq.is_none()));
    }

    #[test]
    fn seeded_scheduler_records_its_seed() {
        let report = Experiment::new(tiny_fixed_workload())
            .cores(2)
            .scale(64)
            .scheduler(SchedulerKind::WorkStealingRandom(9))
            .run();
        assert_eq!(report.records[0].scheduler, "ws-rand");
        assert_eq!(report.records[0].seed, Some(9));
        assert_eq!(report.records[0].scheduler_label(), "ws-rand@9");
    }

    #[test]
    fn registry_specs_parse_label_and_run() {
        let spec = WorkloadSpec::from("matmul:n=64");
        assert_eq!(spec.name(), "matmul");
        assert_eq!(spec.label(), "matmul:n=64");
        assert_eq!(WorkloadSpec::parse(&spec.label()).unwrap(), spec);

        let report = Experiment::new("matmul:n=64")
            .cores(2)
            .scale(1024)
            .schedulers(["pdf"])
            .sequential_baseline(false)
            .run();
        assert_eq!(report.len(), 1);
        assert_eq!(report.records[0].workload, "matmul:n=64");
    }

    #[test]
    #[should_panic(expected = "did you mean")]
    fn unknown_workload_name_panics_with_suggestion() {
        Experiment::new("mergsort").cores(2).scale(1024).run();
    }

    #[test]
    fn parallel_run_matches_sequential_byte_for_byte() {
        let base = Experiment::named("par-check")
            .workloads(["mergesort", "quicksort"])
            .cores([2, 4])
            .scale(1024)
            .schedulers(["pdf", "ws"]);
        let sequential = base.clone().run();
        let parallel = base.clone().parallelism(8).run();
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.to_json(), sequential.to_json());
    }

    #[test]
    fn registry_builds_are_shared_across_experiment_runs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        ccs_workloads::WorkloadRegistry::global().register_fn(
            "cache-probe-workload",
            "counts its builds (build-cache test)",
            |_ctx| {
                BUILDS.fetch_add(1, Ordering::SeqCst);
                let mut b = ccs_dag::ComputationBuilder::new(128);
                let leaf = b.strand_with(|t| {
                    t.compute(10).read_range(0x4000, 2048, 2);
                });
                b.finish(leaf)
            },
        );
        let experiment = Experiment::new("cache-probe-workload")
            .cores(2)
            .scale(64)
            .schedulers(["pdf"]);
        let runs = 4;
        let first = experiment.run();
        for _ in 1..runs {
            assert_eq!(experiment.run(), first, "cached builds change nothing");
        }
        let builds = BUILDS.load(Ordering::SeqCst);
        // The global build cache shares one build across every run of the
        // process (other tests may clear the cache concurrently, so allow
        // a rebuild or two — but re-building per run must be gone).
        assert!(
            builds < runs,
            "expected cached builds, factory ran {builds}/{runs} times"
        );
    }

    #[test]
    fn batch_groups_pin_latency_only_grouping() {
        // Latency-only variants of one design point group together; a
        // different core count, a different geometry, or a different
        // workload each split off.  Order: groups by first appearance,
        // points in cross-product order within.
        let one_core = CmpConfig::default_with_cores(1).unwrap();
        let exp = Experiment::named("planner")
            .workloads(["mergesort", "quicksort"])
            .configs([
                one_core.clone().with_l2_hit_latency(7),
                one_core.clone().with_l2_hit_latency(19),
                CmpConfig::default_with_cores(4).unwrap(),
                one_core.clone().with_memory_latency(900),
            ])
            .scale(1024)
            .schedulers(["pdf"]);
        let groups = exp.batch_groups();
        // Per workload: {l2hit7, l2hit19, mem900} batch, the 4-core point
        // is a singleton — 2 workloads × 2 groups.
        assert_eq!(groups.len(), 4);
        let shape: Vec<(usize, Vec<usize>)> = groups
            .iter()
            .map(|g| (g.len(), g.iter().map(|p| p.index).collect()))
            .collect();
        assert_eq!(
            shape,
            vec![
                (3, vec![0, 1, 3]),
                (1, vec![2]),
                (3, vec![4, 5, 7]),
                (1, vec![6]),
            ]
        );
        // Every sweep point appears exactly once.
        let mut indices: Vec<usize> = groups.iter().flatten().map(|p| p.index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn batch_engine_report_is_byte_identical_to_event() {
        let one_core = CmpConfig::default_with_cores(1).unwrap();
        let base = Experiment::named("batch-check")
            .workload("mergesort")
            .configs([
                one_core.clone().with_l2_hit_latency(7),
                one_core
                    .clone()
                    .with_l2_hit_latency(19)
                    .with_memory_latency(900),
                CmpConfig::default_with_cores(2).unwrap(),
            ])
            .scale(1024)
            .schedulers(["pdf", "ws-rand@7"]);
        let event = base.clone().run();
        let batched = base.clone().engine(SimEngine::Batch).run();
        assert_eq!(batched, event);
        assert_eq!(batched.to_json(), event.to_json());
        // The annotations record how the planner grouped the points:
        // the two latency variants batched (width 2), the 2-core point
        // ran alone (width 1); the event engine never annotates.
        let widths: Vec<u64> = batched.records.iter().map(|r| r.batch_width).collect();
        assert_eq!(widths, vec![2, 2, 2, 2, 1, 1]);
        assert!(event.records.iter().all(|r| r.batch_width == 0));
        // A parallel batched run scatters back to the same report.
        let parallel = base.clone().engine(SimEngine::Batch).parallelism(4).run();
        assert_eq!(parallel, event);
    }

    #[test]
    fn benchmark_workload_runs_end_to_end() {
        let report = Experiment::new(Benchmark::Mergesort)
            .cores(4)
            .scale(512)
            .schedulers(["pdf", "ws"])
            .run();
        assert_eq!(report.len(), 2);
        let pdf = report.for_scheduler("pdf").next().unwrap();
        let ws = report.for_scheduler("ws").next().unwrap();
        assert_eq!(pdf.instructions, ws.instructions);
    }
}
