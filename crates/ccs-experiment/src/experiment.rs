//! Builder-style experiment sessions.
//!
//! An [`Experiment`] describes a sweep declaratively — workloads ×
//! schedulers × CMP design points, plus a scale divisor — and
//! [`Experiment::run`] fans the cross-product into [`RunRecord`]s collected
//! in a [`Report`].  This replaces the hand-rolled sweep loops the seed's
//! figure binaries each carried.

use std::sync::Arc;

use ccs_dag::Computation;
use ccs_sched::SchedulerSpec;
use ccs_sim::{simulate, CmpConfig};
use ccs_workloads::Benchmark;

use crate::report::{Report, RunRecord};

/// The quick-mode scale clamp: smoke tests always run at a divisor of at
/// least 256.  Single authority for both [`Experiment::effective_scale`] and
/// [`Options::effective_scale`](crate::Options::effective_scale).
pub fn effective_scale(scale: u64, quick: bool) -> u64 {
    if quick {
        scale.max(256)
    } else {
        scale
    }
}

/// A workload an experiment can run: either one of the paper's named
/// benchmarks (rebuilt per design point so task granularity tracks the cache)
/// or a fixed, caller-built computation.
#[derive(Clone)]
pub enum WorkloadSpec {
    /// A paper benchmark, built per design point via
    /// [`Benchmark::build_scaled`].
    Benchmark(Benchmark),
    /// A fixed computation, reused as-is at every design point.
    Fixed {
        /// Name used in records.
        name: String,
        /// The computation to simulate.
        comp: Arc<Computation>,
    },
}

impl WorkloadSpec {
    /// A fixed workload from a caller-built computation.
    pub fn fixed(name: impl Into<String>, comp: Computation) -> WorkloadSpec {
        WorkloadSpec::Fixed {
            name: name.into(),
            comp: Arc::new(comp),
        }
    }

    /// The name used in records.
    pub fn name(&self) -> &str {
        match self {
            WorkloadSpec::Benchmark(b) => b.name(),
            WorkloadSpec::Fixed { name, .. } => name,
        }
    }

    /// Build (or reuse) the computation for one design point.
    fn build(&self, scale: u64, l2_bytes: u64, cores: usize) -> Arc<Computation> {
        match self {
            WorkloadSpec::Benchmark(b) => Arc::new(b.build_scaled(scale, l2_bytes, cores)),
            WorkloadSpec::Fixed { comp, .. } => Arc::clone(comp),
        }
    }
}

impl From<Benchmark> for WorkloadSpec {
    fn from(b: Benchmark) -> WorkloadSpec {
        WorkloadSpec::Benchmark(b)
    }
}

/// Core counts accepted by [`Experiment::cores`]: a single count, a slice, an
/// array, a `Vec`, or anything iterable.
pub trait CoreSelection {
    /// The selected core counts.
    fn core_counts(self) -> Vec<usize>;
}

impl CoreSelection for usize {
    fn core_counts(self) -> Vec<usize> {
        vec![self]
    }
}

impl<const N: usize> CoreSelection for [usize; N] {
    fn core_counts(self) -> Vec<usize> {
        self.to_vec()
    }
}

impl CoreSelection for &[usize] {
    fn core_counts(self) -> Vec<usize> {
        self.to_vec()
    }
}

impl CoreSelection for Vec<usize> {
    fn core_counts(self) -> Vec<usize> {
        self
    }
}

impl CoreSelection for std::ops::Range<usize> {
    fn core_counts(self) -> Vec<usize> {
        self.collect()
    }
}

/// A declarative sweep: workloads × schedulers × CMP design points.
///
/// ```
/// use ccs_experiment::Experiment;
/// use ccs_sched::SchedulerKind;
/// use ccs_workloads::Benchmark;
///
/// let report = Experiment::new(Benchmark::Mergesort)
///     .cores(8)
///     .scale(512)
///     .schedulers([SchedulerKind::Pdf, SchedulerKind::WorkStealing])
///     .run();
/// assert_eq!(report.len(), 2);
/// let pdf = report.for_scheduler("pdf").next().unwrap();
/// let ws = report.for_scheduler("ws").next().unwrap();
/// assert!(pdf.l2_misses <= ws.l2_misses, "PDF shares the cache constructively");
/// ```
#[derive(Clone)]
pub struct Experiment {
    name: String,
    workloads: Vec<WorkloadSpec>,
    schedulers: Vec<SchedulerSpec>,
    configs: Vec<CmpConfig>,
    scale: u64,
    quick: bool,
    baseline: bool,
}

impl Experiment {
    /// An experiment over one workload (more can be added with
    /// [`Experiment::workload`]).
    pub fn new(workload: impl Into<WorkloadSpec>) -> Experiment {
        let workload = workload.into();
        Experiment {
            name: workload.name().to_string(),
            workloads: vec![workload],
            schedulers: Vec::new(),
            configs: Vec::new(),
            scale: 1,
            quick: false,
            baseline: true,
        }
    }

    /// An experiment with no workloads yet, named for its report.
    pub fn named(name: impl Into<String>) -> Experiment {
        Experiment {
            name: name.into(),
            workloads: Vec::new(),
            schedulers: Vec::new(),
            configs: Vec::new(),
            scale: 1,
            quick: false,
            baseline: true,
        }
    }

    /// Set the report name.
    pub fn name(mut self, name: impl Into<String>) -> Experiment {
        self.name = name.into();
        self
    }

    /// Add one workload.
    pub fn workload(mut self, workload: impl Into<WorkloadSpec>) -> Experiment {
        self.workloads.push(workload.into());
        self
    }

    /// Add several workloads.
    pub fn workloads<W: Into<WorkloadSpec>>(
        mut self,
        workloads: impl IntoIterator<Item = W>,
    ) -> Experiment {
        self.workloads.extend(workloads.into_iter().map(Into::into));
        self
    }

    /// Add the paper's default (Table 2) configuration for each selected core
    /// count: `.cores(8)`, `.cores([1, 2, 4, 8])`, ….
    ///
    /// # Panics
    /// Panics if a core count has no default configuration (the defaults
    /// cover 1–32 cores in powers of two).
    pub fn cores(mut self, selection: impl CoreSelection) -> Experiment {
        for count in selection.core_counts() {
            let cfg = CmpConfig::default_with_cores(count)
                .unwrap_or_else(|| panic!("no default CMP configuration with {count} cores"));
            self.configs.push(cfg);
        }
        self
    }

    /// Add one explicit design point.
    pub fn config(mut self, config: CmpConfig) -> Experiment {
        self.configs.push(config);
        self
    }

    /// Add several explicit design points (e.g.
    /// [`CmpConfig::single_tech_45nm`]).
    pub fn configs(mut self, configs: impl IntoIterator<Item = CmpConfig>) -> Experiment {
        self.configs.extend(configs);
        self
    }

    /// Add one scheduler.
    pub fn scheduler(mut self, scheduler: impl Into<SchedulerSpec>) -> Experiment {
        self.schedulers.push(scheduler.into());
        self
    }

    /// Add several schedulers: `SchedulerKind`s, registry names, or full
    /// specs.
    pub fn schedulers<S: Into<SchedulerSpec>>(
        mut self,
        schedulers: impl IntoIterator<Item = S>,
    ) -> Experiment {
        self.schedulers
            .extend(schedulers.into_iter().map(Into::into));
        self
    }

    /// Divide the paper's input sizes *and* all cache capacities by `scale`,
    /// preserving every capacity ratio (1 = the paper's sizes).
    pub fn scale(mut self, scale: u64) -> Experiment {
        self.scale = scale.max(1);
        self
    }

    /// Quick mode: clamp the scale divisor to at least 256 so smoke tests
    /// stay fast (the seed harness's `--quick` semantics).
    pub fn quick(mut self, quick: bool) -> Experiment {
        self.quick = quick;
        self
    }

    /// Whether to also run a 1-core sequential baseline per workload ×
    /// design point and record speedups (default: on).
    pub fn sequential_baseline(mut self, baseline: bool) -> Experiment {
        self.baseline = baseline;
        self
    }

    /// The scale divisor runs will actually use (after `quick` clamping).
    pub fn effective_scale(&self) -> u64 {
        effective_scale(self.scale, self.quick)
    }

    /// Run the full cross-product and collect a [`Report`].
    ///
    /// Defaults when a dimension was left unset: schedulers = PDF and WS;
    /// configs = the paper's 8-core default.
    ///
    /// # Panics
    /// Panics if no workload was added, or if a scheduler name is not
    /// registered.
    pub fn run(&self) -> Report {
        assert!(!self.workloads.is_empty(), "experiment has no workloads");
        let schedulers: Vec<SchedulerSpec> = if self.schedulers.is_empty() {
            vec![SchedulerSpec::new("pdf"), SchedulerSpec::new("ws")]
        } else {
            self.schedulers.clone()
        };
        let configs: Vec<CmpConfig> = if self.configs.is_empty() {
            vec![CmpConfig::default_with_cores(8).expect("8-core default exists")]
        } else {
            self.configs.clone()
        };
        let scale = self.effective_scale();

        let mut report = Report::new(self.name.clone(), scale);
        for workload in &self.workloads {
            for config in &configs {
                let scaled = config.scaled(scale);
                let comp = workload.build(scale, scaled.l2.capacity, config.num_cores);
                let sequential = self.baseline.then(|| {
                    let mut seq_cfg = scaled.clone();
                    seq_cfg.num_cores = 1;
                    seq_cfg.name = format!("{}-seq", scaled.name);
                    simulate(&comp, &seq_cfg, "pdf")
                });
                for spec in &schedulers {
                    let result = simulate(&comp, &scaled, spec);
                    report.records.push(RunRecord::from_sim(
                        workload.name(),
                        spec,
                        &result,
                        sequential.as_ref(),
                    ));
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::{ComputationBuilder, GroupMeta};
    use ccs_sched::SchedulerKind;

    fn tiny_fixed_workload() -> WorkloadSpec {
        let mut b = ComputationBuilder::new(128);
        let mut space = ccs_dag::AddressSpace::new();
        let region = space.alloc(32 * 1024);
        let leaves: Vec<_> = (0..4)
            .map(|_| {
                b.strand_with(|t| {
                    t.read_range(region.base, region.bytes, 2);
                })
            })
            .collect();
        let par = b.par(leaves, GroupMeta::labeled("scan"));
        let root = b.seq(vec![par], GroupMeta::labeled("root"));
        WorkloadSpec::fixed("tiny-scan", b.finish(root))
    }

    #[test]
    fn cross_product_has_one_record_per_point() {
        let report = Experiment::new(tiny_fixed_workload())
            .cores([2, 4])
            .scale(64)
            .schedulers([
                SchedulerKind::Pdf,
                SchedulerKind::WorkStealing,
                SchedulerKind::CentralQueue,
            ])
            .run();
        assert_eq!(report.len(), 2 * 3);
        assert_eq!(report.schedulers(), vec!["central", "pdf", "ws"]);
        for r in &report.records {
            assert!(r.cycles > 0);
            assert!(r.speedup_over_seq.is_some(), "baseline on by default");
        }
    }

    #[test]
    fn defaults_are_pdf_ws_on_default_8() {
        let report = Experiment::new(tiny_fixed_workload()).scale(64).run();
        assert_eq!(report.len(), 2);
        assert!(report.records.iter().all(|r| r.cores == 8));
    }

    #[test]
    fn quick_clamps_scale() {
        let exp = Experiment::new(Benchmark::Mergesort).scale(32).quick(true);
        assert_eq!(exp.effective_scale(), 256);
        let exp = Experiment::new(Benchmark::Mergesort).scale(512).quick(true);
        assert_eq!(exp.effective_scale(), 512);
    }

    #[test]
    fn baseline_can_be_disabled() {
        let report = Experiment::new(tiny_fixed_workload())
            .cores(2)
            .scale(64)
            .sequential_baseline(false)
            .run();
        assert!(report.records.iter().all(|r| r.speedup_over_seq.is_none()));
    }

    #[test]
    fn seeded_scheduler_records_its_seed() {
        let report = Experiment::new(tiny_fixed_workload())
            .cores(2)
            .scale(64)
            .scheduler(SchedulerKind::WorkStealingRandom(9))
            .run();
        assert_eq!(report.records[0].scheduler, "ws-rand");
        assert_eq!(report.records[0].seed, Some(9));
        assert_eq!(report.records[0].scheduler_label(), "ws-rand@9");
    }

    #[test]
    fn benchmark_workload_runs_end_to_end() {
        let report = Experiment::new(Benchmark::Mergesort)
            .cores(4)
            .scale(512)
            .schedulers(["pdf", "ws"])
            .run();
        assert_eq!(report.len(), 2);
        let pdf = report.for_scheduler("pdf").next().unwrap();
        let ws = report.for_scheduler("ws").next().unwrap();
        assert_eq!(pdf.instructions, ws.instructions);
    }
}
