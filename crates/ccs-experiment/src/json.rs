//! A small, self-contained JSON value model, writer and parser.
//!
//! The build environment cannot fetch `serde`/`serde_json` (see
//! `shims/README.md`), so report serialisation is implemented over this
//! module instead.  [`Report::to_json`](crate::Report::to_json) produces the
//! same document shape a `serde_json` derive would, which keeps a later
//! migration mechanical.
//!
//! Numbers are kept in three variants ([`Json::UInt`], [`Json::Int`],
//! [`Json::Float`]) so `u64` counters round-trip exactly; the accessors
//! ([`Json::as_u64`], [`Json::as_f64`], …) coerce between them the way JSON
//! consumers expect.

use std::collections::BTreeMap;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (u64 counters round-trip exactly).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, coercing exact floats.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) => u64::try_from(v).ok(),
            // Strict upper bound: `u64::MAX as f64` rounds up to 2^64, which
            // does not fit — accepting it would silently saturate.
            Json::Float(v) if v >= 0.0 && v.fract() == 0.0 && v < u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a float, coercing integers.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialise with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialise onto a single line with no whitespace and no trailing
    /// newline — the JSON-lines form the `ccs-serve` wire protocol frames
    /// use (string escaping keeps embedded newlines out of the output).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-round-trip formatting; force a decimal point so the
        // value parses back as a float.
        let s = format!("{v}");
        let has_point = s.contains(['.', 'e', 'E']);
        out.push_str(&s);
        if !has_point {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_string_pretty())
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(v) => v.into(),
            None => Json::Null,
        }
    }
}

/// A parse error, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting depth [`parse`] accepts.  Real report and
/// frame documents nest a handful of levels; the cap turns adversarial
/// `[[[[…` input into a parse error instead of a stack overflow (which
/// would abort the process, uncatchably).
pub const MAX_PARSE_DEPTH: usize = 128;

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, capped at [`MAX_PARSE_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {lit:?}")))
        }
    }

    /// Run a recursive container parse one level deeper, enforcing the
    /// depth cap.  Errors abort the whole parse, so the depth counter only
    /// needs restoring on success.
    fn nested(
        &mut self,
        parse: impl FnOnce(&mut Self) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_PARSE_DEPTH} levels")));
        }
        let value = parse(self)?;
        self.depth -= 1;
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character {:?}", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        let combined =
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match ch {
                                Some(ch) => out.push(ch),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                        }
                        other => {
                            return Err(self.error(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                c if c < 0x20 => return Err(self.error("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from a bounded slice (a
                    // code point is at most 4 bytes; validating the whole
                    // tail would make parsing quadratic).
                    let start = self.pos - 1;
                    let end = (start + 4).min(self.bytes.len());
                    let window = &self.bytes[start..end];
                    let ch = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next(),
                        // A trailing code point may leave the window mid-char;
                        // the valid prefix still contains the first char.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                        }
                        Err(_) => None,
                    };
                    let ch = ch.ok_or_else(|| self.error("invalid UTF-8"))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            message: format!("invalid number {text:?}"),
            offset: start,
        })
    }
}

/// Order-insensitive structural comparison helper used by tests: objects are
/// compared as maps, numbers through `as_f64`.
pub fn structurally_equal(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Array(xs), Json::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| structurally_equal(x, y))
        }
        (Json::Object(xs), Json::Object(ys)) => {
            let xm: BTreeMap<_, _> = xs.iter().map(|(k, v)| (k, v)).collect();
            let ym: BTreeMap<_, _> = ys.iter().map(|(k, v)| (k, v)).collect();
            xm.len() == ym.len()
                && xm
                    .iter()
                    .all(|(k, x)| ym.get(k).is_some_and(|y| structurally_equal(x, y)))
        }
        (Json::Str(x), Json::Str(y)) => x == y,
        (Json::Bool(x), Json::Bool(y)) => x == y,
        (Json::Null, Json::Null) => true,
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_typical_document() {
        let doc = Json::object([
            ("name", "fig2".into()),
            ("scale", 32u64.into()),
            ("ok", true.into()),
            ("seed", Json::Null),
            (
                "records",
                Json::Array(vec![Json::object([
                    ("cycles", u64::MAX.into()),
                    ("mpki", 0.125f64.into()),
                    ("label", "ws-rand@7".into()),
                ])]),
            ),
        ]);
        let text = doc.to_string_pretty();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        for v in [0u64, 1, 1 << 53, u64::MAX - 1, u64::MAX] {
            let text = Json::UInt(v).to_string_pretty();
            assert_eq!(parse(&text).unwrap().as_u64(), Some(v), "{v}");
        }
    }

    #[test]
    fn floats_round_trip() {
        for v in [0.0f64, -1.5, 1e-9, 123456.789, f64::MAX] {
            let text = Json::Float(v).to_string_pretty();
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed.as_f64(), Some(v), "{v}");
        }
        // Whole-number floats come back as integers but coerce cleanly.
        assert_eq!(parse("3").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn string_escapes() {
        let s = "tab\t quote\" back\\ newline\n unicode→ nul\u{1}";
        let text = Json::Str(s.to_string()).to_string_pretty();
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
        assert_eq!(parse(r#""Aé😀""#).unwrap().as_str(), Some("Aé😀"));
        // A valid surrogate pair decodes; a high surrogate followed by
        // anything but a low surrogate is rejected, not silently mangled.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\uD800A""#).is_err(), "unpaired high surrogate");
        assert!(
            parse(r#""\uD800\u0041""#).is_err(),
            "high surrogate + BMP escape"
        );
        assert_eq!(parse(r#""\uD83D\uDE00""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("-0.5").unwrap(), Json::Float(-0.5));
        assert_eq!(parse("2e3").unwrap(), Json::Float(2000.0));
    }

    #[test]
    fn nesting_is_capped_not_crashing() {
        // Under the cap: parses fine.
        let deep_ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep_ok).is_ok());
        // Past the cap (including pathological megabyte-scale `[[[[…`):
        // a typed error, not a stack overflow.
        for n in [MAX_PARSE_DEPTH + 1, 100_000] {
            let deep = "[".repeat(n);
            let err = parse(&deep).unwrap_err();
            assert!(err.message.contains("nesting"), "{err}");
        }
        let mixed = "[{\"k\":".repeat(MAX_PARSE_DEPTH);
        assert!(parse(&mixed).unwrap_err().message.contains("nesting"));
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in ["{", "[1,]", "\"abc", "tru", "{\"a\" 1}", "1 2", ""] {
            let err = parse(bad).unwrap_err();
            assert!(err.offset <= bad.len(), "{bad:?}: {err}");
        }
    }

    #[test]
    fn get_and_accessors() {
        let doc = parse(r#"{"a": 1, "b": [true, null], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("b").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            doc.get("b").unwrap().as_array().unwrap()[0].as_bool(),
            Some(true)
        );
        assert!(doc.get("b").unwrap().as_array().unwrap()[1].is_null());
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn structural_equality_ignores_key_order() {
        let a = parse(r#"{"x": 1, "y": 2.0}"#).unwrap();
        let b = parse(r#"{"y": 2, "x": 1}"#).unwrap();
        assert!(structurally_equal(&a, &b));
    }
}
