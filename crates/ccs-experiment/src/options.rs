//! Command-line options shared by every experiment binary.
//!
//! Moved here from `ccs-bench` so the flags and the [`Experiment`] layer stay
//! in one place; `ccs-bench` re-exports this type for compatibility.

use std::path::PathBuf;

use ccs_sched::spec::split_spec_list;
use ccs_sim::SimEngine;
use ccs_workloads::Benchmark;

use crate::{Experiment, WorkloadSpec};

/// Options every experiment binary accepts:
///
/// * `--scale N` — divide the paper's input sizes *and* all cache capacities
///   by `N` (default 32) so the full sweep runs on a laptop while preserving
///   every capacity ratio;
/// * `--quick` — run a reduced sweep (used by the integration smoke tests);
/// * `--workloads <spec,...>` — select workloads from the open
///   [`WorkloadRegistry`](ccs_workloads::WorkloadRegistry) by spec string
///   (`--workloads mergesort,heat:rows=256,cols=256`; a comma-segment
///   containing `=` continues the previous spec's parameters).  Unknown
///   names are rejected up front with a did-you-mean listing of the
///   registered workloads.  May be repeated;
/// * `--app lu|hashjoin|mergesort` — restrict to one *paper* benchmark
///   (predates `--workloads`, kept as a compatibility alias for the closed
///   three-benchmark list; ignored whenever `--workloads` is given);
/// * `--cores N,...` — simulated core counts (design points) for binaries
///   that take them (e.g. `serve_client`); each count must be at least 1 —
///   `--cores 0` would silently simulate nothing and is rejected up front;
/// * `--parallel N` — fan experiment sweeps across `N` threads of the
///   `ccs-runtime` pool ([`Experiment::parallelism`]); `0` means one thread
///   per available core, the default (1) is sequential;
/// * `--json PATH` — additionally write the run's [`Report`](crate::Report)
///   as JSON to `PATH` (`-` for stdout);
/// * `--store PATH` — root directory of the persistent result store (the
///   `serve` daemon's memo layer; batch binaries ignore it);
/// * `--engine event|reference|batch` — select the simulator engine
///   (default: the event-driven production engine; `reference` runs the
///   retained cycle-stepper, metrics-identical but much slower; `batch`
///   groups latency-only sweep points so they share one recorded pass,
///   metrics-identical and much faster on latency sweeps);
/// * `--bench` — benchmark mode: `run_all` substitutes the timed
///   `ccs-bench` harness for its normal sweeps and emits `BENCH_sim.json`
///   (other binaries ignore the flag);
/// * `--trials N` — in benchmark mode, repeat every timed pass `N` times
///   and keep the fastest wall time (the default is harness-chosen: 3 for
///   quick sweeps, 1 for full sweeps, 5 for the raw-simulator
///   microbenches);
/// * binary-specific flags are collected in [`Options::rest`].
#[derive(Clone, Debug)]
pub struct Options {
    /// Input/cache scale divisor (1 = the paper's sizes).
    pub scale: u64,
    /// Reduced sweep for smoke tests.
    pub quick: bool,
    /// Optional paper-benchmark filter (`--app lu|hashjoin|mergesort`;
    /// superseded by the open `--workloads` list).
    pub app: Option<Benchmark>,
    /// Registry-backed workload selection (`--workloads <spec,...>`); empty
    /// means "the default selection" (see [`Options::workload_specs`]).
    pub workloads: Vec<WorkloadSpec>,
    /// Simulated core counts (`--cores N,...`, each ≥ 1); empty means the
    /// binary's default design points.
    pub cores: Vec<usize>,
    /// Worker threads for sweep execution (`--parallel N`; 1 = sequential).
    pub parallel: usize,
    /// Where to write the JSON report, if requested (`--json PATH`, `-` for
    /// stdout).
    pub json: Option<PathBuf>,
    /// Directory of the persistent [`ResultStore`](crate::ResultStore)
    /// (`--store PATH`); used by the `serve` daemon and client binaries,
    /// ignored by the batch binaries.
    pub store: Option<PathBuf>,
    /// Simulator engine selection (`--engine event|reference|batch`).
    pub engine: SimEngine,
    /// Benchmark mode (`--bench`): `run_all` runs the timed harness and
    /// emits `BENCH_sim.json` instead of the plain sweeps.
    pub bench: bool,
    /// Benchmark trial count override (`--trials N`, min 1); `None` uses
    /// the harness defaults.
    pub trials: Option<u32>,
    /// Remaining unrecognised flags (binary-specific).
    pub rest: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 32,
            quick: false,
            app: None,
            workloads: Vec::new(),
            cores: Vec::new(),
            parallel: 1,
            json: None,
            store: None,
            engine: SimEngine::default(),
            bench: false,
            trials: None,
            rest: Vec::new(),
        }
    }
}

impl Options {
    /// Parse options from `std::env::args`, exiting the process with a
    /// clean one-line message (status 2, no panic backtrace) when the
    /// command line is malformed — the CLI boundary of
    /// [`Options::try_parse`].
    pub fn from_env() -> Options {
        Self::try_parse(std::env::args().skip(1)).unwrap_or_else(|e| {
            if e == OptionsError::Help {
                println!("{}", Self::help_text());
                std::process::exit(0);
            }
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// The `--help` text ([`Options::from_env`] prints it and exits 0).
    /// Binary-specific flags are documented in each binary's module docs;
    /// this covers the shared set and the simulation limits behind it.
    pub fn help_text() -> &'static str {
        "Shared experiment flags:\n\
         \x20 --scale N          divide input sizes and cache capacities by N (default 32)\n\
         \x20 --quick            reduced smoke-test sweep\n\
         \x20 --workloads SPECS  registry workloads (e.g. mergesort,heat:rows=256,cols=256)\n\
         \x20 --app NAME         paper benchmark filter (lu|hashjoin|mergesort)\n\
         \x20 --cores N,...      simulated core counts, each >= 1 (e.g. 2,4,256).\n\
         \x20                    Counts up to 4096 use the O(sharers) hierarchical\n\
         \x20                    sharer-mask directory; beyond 4096 the simulator\n\
         \x20                    falls back to broadcast invalidation (O(cores) per\n\
         \x20                    store, metrics-identical, slower).\n\
         \x20 --parallel N       sweep worker threads (0 = one per host core)\n\
         \x20 --json PATH        write the JSON report to PATH ('-' = stdout)\n\
         \x20 --store PATH       persistent result-store directory\n\
         \x20 --engine E         event|reference|batch (default event)\n\
         \x20 --bench            benchmark mode (run_all emits BENCH_sim.json)\n\
         \x20 --trials N         benchmark trial count (>= 1)\n\
         \x20 --help             this text"
    }

    /// Parse options from an explicit iterator.
    ///
    /// # Panics
    /// Panics with the [`OptionsError`] message on malformed values; use
    /// [`Options::try_parse`] to handle the error (binaries go through
    /// [`Options::from_env`], which exits cleanly instead).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Options {
        Self::try_parse(args).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Parse options from an explicit iterator, reporting malformed values
    /// as a typed [`OptionsError`] — including `--workloads` specs whose
    /// name is not in the global registry, which carry the registry's
    /// did-you-mean listing.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Options, OptionsError> {
        let mut opts = Options::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = value(&mut iter, "--scale", "a value")?;
                    opts.scale = parse_int(&v, "--scale")?;
                }
                "--quick" => opts.quick = true,
                "--app" => {
                    let v = value(&mut iter, "--app", "a value")?;
                    opts.app = Some(match v.as_str() {
                        "lu" => Benchmark::Lu,
                        "hashjoin" => Benchmark::HashJoin,
                        "mergesort" => Benchmark::Mergesort,
                        other => {
                            return Err(OptionsError::invalid(
                                "--app",
                                format!(
                                    "unknown app {other:?} (lu|hashjoin|mergesort; \
                                     use --workloads for the open registry)"
                                ),
                            ))
                        }
                    });
                }
                "--workloads" => {
                    let v = value(&mut iter, "--workloads", "a value")?;
                    for part in split_spec_list(&v) {
                        let spec = WorkloadSpec::resolve(&part)
                            .map_err(|e| OptionsError::invalid("--workloads", e.to_string()))?;
                        opts.workloads.push(spec);
                    }
                }
                "--cores" => {
                    let v = value(&mut iter, "--cores", "a list of core counts (e.g. 2,4)")?;
                    for part in v.split(',') {
                        let n: usize = parse_int(part.trim(), "--cores")?;
                        if n == 0 {
                            return Err(OptionsError::invalid(
                                "--cores",
                                "0 cores would simulate nothing; counts must be at least 1",
                            ));
                        }
                        opts.cores.push(n);
                    }
                }
                "--help" | "-h" => return Err(OptionsError::Help),
                "--parallel" => {
                    let v = value(&mut iter, "--parallel", "a value")?;
                    let n: usize = parse_int(&v, "--parallel")?;
                    opts.parallel = if n == 0 {
                        std::thread::available_parallelism()
                            .map(std::num::NonZeroUsize::get)
                            .unwrap_or(1)
                    } else {
                        n
                    };
                }
                "--json" => {
                    let v = value(&mut iter, "--json", "a path (or '-')")?;
                    opts.json = Some(PathBuf::from(v));
                }
                "--store" => {
                    let v = value(&mut iter, "--store", "a directory path")?;
                    opts.store = Some(PathBuf::from(v));
                }
                "--engine" => {
                    let v = value(&mut iter, "--engine", "a value (event|reference|batch)")?;
                    opts.engine = v
                        .parse()
                        .map_err(|e: String| OptionsError::invalid("--engine", e))?;
                }
                "--bench" => opts.bench = true,
                "--trials" => {
                    let v = value(&mut iter, "--trials", "a count")?;
                    let n: u32 = parse_int(&v, "--trials")?;
                    if n < 1 {
                        return Err(OptionsError::invalid("--trials", "must be at least 1"));
                    }
                    opts.trials = Some(n);
                }
                other => opts.rest.push(other.to_string()),
            }
        }
        Ok(opts)
    }

    /// The *paper* benchmarks selected by the options: the paper benchmarks
    /// named in `--workloads` (which supersedes `--app` everywhere), else
    /// the `--app` filter, else all three.  The figure sweeps use this — the
    /// paper's figures only cover LU, Hash Join and Mergesort.
    ///
    /// Only *bare* specs match: a parameterised spec like `mergesort:ws=8192`
    /// is not the paper's benchmark, and treating it as one would silently
    /// drop its parameters, so it selects no figure panel (figure binaries
    /// then print an empty report with a note, the same as `--app lu` on a
    /// figure without an LU panel).
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        let all = [Benchmark::Lu, Benchmark::HashJoin, Benchmark::Mergesort];
        if !self.workloads.is_empty() {
            return all
                .into_iter()
                .filter(|b| {
                    self.workloads.iter().any(|w| match w {
                        WorkloadSpec::Registry { name, params } => {
                            name == b.name() && params.is_empty()
                        }
                        WorkloadSpec::Fixed { .. } => false,
                    })
                })
                .collect();
        }
        if let Some(app) = self.app {
            return vec![app];
        }
        all.to_vec()
    }

    /// The full workload selection: the `--workloads` specs verbatim, or the
    /// [`Options::benchmarks`] fallback when none were given.
    pub fn workload_specs(&self) -> Vec<WorkloadSpec> {
        if self.workloads.is_empty() {
            self.benchmarks().into_iter().map(Into::into).collect()
        } else {
            self.workloads.clone()
        }
    }

    /// In quick mode shrink the workloads further so smoke tests stay fast
    /// (same clamp as [`crate::experiment::effective_scale`]).
    pub fn effective_scale(&self) -> u64 {
        crate::experiment::effective_scale(self.scale, self.quick)
    }

    /// Start an [`Experiment`] named `name` with this scale/quick/parallel
    /// setting and the selected workloads.
    pub fn experiment(&self, name: impl Into<String>) -> Experiment {
        Experiment::named(name)
            .workloads(self.workload_specs())
            .scale(self.scale)
            .quick(self.quick)
            .parallelism(self.parallel)
            .engine(self.engine)
    }

    /// Whether `--json -` directed the JSON report to stdout (in which case
    /// binaries route their human-readable tables to stderr, keeping stdout
    /// machine-parseable).
    pub fn json_to_stdout(&self) -> bool {
        self.json.as_deref().is_some_and(|p| p.as_os_str() == "-")
    }

    /// Emit `report` as requested by `--json` (writes the file, or prints to
    /// stdout for `-`).  Returns whether anything was emitted.
    pub fn emit_json(&self, report: &crate::Report) -> std::io::Result<bool> {
        match &self.json {
            None => Ok(false),
            Some(path) if path.as_os_str() == "-" => {
                print!("{}", report.to_json());
                Ok(true)
            }
            Some(path) => {
                report.write_json(path)?;
                eprintln!("# wrote {}", path.display());
                Ok(true)
            }
        }
    }
}

/// A malformed command line, as reported by [`Options::try_parse`] — the
/// typed counterpart of the `SpecError` family, so binaries can print one
/// clean line and exit instead of unwinding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptionsError {
    /// A flag was given without its required value.
    MissingValue {
        /// The flag (e.g. `"--scale"`).
        flag: &'static str,
        /// What the flag expects (e.g. `"a value"`, `"a path (or '-')"`).
        expects: &'static str,
    },
    /// A flag's value failed to parse or validate.
    Invalid {
        /// The flag (e.g. `"--engine"`).
        flag: &'static str,
        /// Why the value was rejected (may embed a nested spec error, e.g.
        /// the workload registry's did-you-mean listing).
        message: String,
    },
    /// `--help` was given: not an error, but it short-circuits parsing the
    /// same way ([`Options::from_env`] prints [`Options::help_text`] and
    /// exits 0).
    Help,
}

impl OptionsError {
    fn invalid(flag: &'static str, message: impl Into<String>) -> OptionsError {
        OptionsError::Invalid {
            flag,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for OptionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptionsError::MissingValue { flag, expects } => {
                write!(f, "{flag} requires {expects}")
            }
            OptionsError::Invalid { flag, message } => write!(f, "{flag}: {message}"),
            OptionsError::Help => f.write_str(Options::help_text()),
        }
    }
}

impl std::error::Error for OptionsError {}

/// Pull the next argument as `flag`'s value.
fn value(
    iter: &mut impl Iterator<Item = String>,
    flag: &'static str,
    expects: &'static str,
) -> Result<String, OptionsError> {
    iter.next()
        .ok_or(OptionsError::MissingValue { flag, expects })
}

/// Parse an integer-valued flag.
fn parse_int<T: std::str::FromStr>(v: &str, flag: &'static str) -> Result<T, OptionsError> {
    v.parse()
        .map_err(|_| OptionsError::invalid(flag, format!("{v:?} is not an integer")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parsing() {
        let o = Options::parse(
            [
                "--scale",
                "64",
                "--quick",
                "--app",
                "mergesort",
                "--parallel",
                "4",
                "--json",
                "out.json",
                "--foo",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(o.scale, 64);
        assert!(o.quick);
        assert_eq!(o.app, Some(Benchmark::Mergesort));
        assert_eq!(o.parallel, 4);
        assert_eq!(o.json, Some(PathBuf::from("out.json")));
        assert_eq!(o.rest, vec!["--foo".to_string()]);
        assert_eq!(o.benchmarks(), vec![Benchmark::Mergesort]);
        assert_eq!(o.effective_scale(), 256);
    }

    #[test]
    fn defaults() {
        let o = Options::default();
        assert_eq!(o.scale, 32);
        assert_eq!(o.benchmarks().len(), 3);
        assert_eq!(o.workload_specs().len(), 3);
        assert_eq!(o.parallel, 1);
        assert_eq!(o.effective_scale(), 32);
        assert_eq!(o.json, None);
        assert_eq!(o.engine, SimEngine::EventDriven);
        assert!(!o.bench);
        assert_eq!(o.trials, None);
    }

    #[test]
    fn engine_and_bench_flags() {
        let o = Options::parse(
            ["--engine", "reference", "--bench", "--trials", "7"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(o.engine, SimEngine::Reference);
        assert!(o.bench);
        assert_eq!(o.trials, Some(7));
        assert!(o.rest.is_empty());

        let o = Options::parse(["--engine", "batch"].into_iter().map(String::from));
        assert_eq!(o.engine, SimEngine::Batch);

        let bad = Options::try_parse(["--trials", "0"].into_iter().map(String::from));
        assert_eq!(
            bad.unwrap_err(),
            OptionsError::invalid("--trials", "must be at least 1")
        );

        let bad = Options::try_parse(["--engine", "quantum"].into_iter().map(String::from));
        let err = bad.unwrap_err();
        assert!(matches!(
            err,
            OptionsError::Invalid {
                flag: "--engine",
                ..
            }
        ));
        assert_eq!(
            err.to_string(),
            "--engine: unknown engine \"quantum\" (event|reference|batch)"
        );
    }

    #[test]
    fn cores_flag_rejects_zero_and_parses_lists() {
        let o = Options::parse(["--cores", "2,4, 256"].into_iter().map(String::from));
        assert_eq!(o.cores, vec![2, 4, 256]);
        assert!(o.rest.is_empty());

        // `--cores 0` used to be accepted and silently simulated nothing.
        let err = Options::try_parse(["--cores".into(), "0".into()]).unwrap_err();
        assert_eq!(
            err,
            OptionsError::invalid(
                "--cores",
                "0 cores would simulate nothing; counts must be at least 1"
            )
        );
        let err = Options::try_parse(["--cores".into(), "2,0,4".into()]).unwrap_err();
        assert!(matches!(
            err,
            OptionsError::Invalid {
                flag: "--cores",
                ..
            }
        ));
        let err = Options::try_parse(["--cores".into(), "many".into()]).unwrap_err();
        assert_eq!(err.to_string(), "--cores: \"many\" is not an integer");
    }

    #[test]
    fn help_flag_short_circuits_and_names_the_broadcast_threshold() {
        for flag in ["--help", "-h"] {
            let err = Options::try_parse([flag.to_string()]).unwrap_err();
            assert_eq!(err, OptionsError::Help);
        }
        // The help text documents the directory's broadcast-fallback
        // threshold so users know why >4096-core runs slow down.
        let help = Options::help_text();
        assert!(help.contains("--cores"), "{help}");
        assert!(help.contains("4096"), "{help}");
        assert!(help.contains("broadcast"), "{help}");
        assert_eq!(OptionsError::Help.to_string(), help);
    }

    #[test]
    fn malformed_flags_are_typed_errors_not_panics() {
        // Every flag that takes a value reports a MissingValue when the
        // command line ends early...
        for flag in [
            "--scale",
            "--app",
            "--workloads",
            "--cores",
            "--parallel",
            "--json",
            "--store",
            "--engine",
            "--trials",
        ] {
            let err = Options::try_parse([flag.to_string()]).unwrap_err();
            assert!(
                matches!(err, OptionsError::MissingValue { flag: f, .. } if f == flag),
                "{flag}: {err}"
            );
            assert!(err.to_string().starts_with(flag), "{err}");
        }
        // ...and a typed Invalid on bad values, with the flag named in the
        // rendered message (what `from_env` prints before exiting).
        let err = Options::try_parse(["--scale".into(), "huge".into()]).unwrap_err();
        assert_eq!(err.to_string(), "--scale: \"huge\" is not an integer");
        let err = Options::try_parse(["--app".into(), "doom".into()]).unwrap_err();
        assert!(err.to_string().starts_with("--app: unknown app"), "{err}");
        // `parse` keeps its panicking contract, with the same message.
        let payload =
            std::panic::catch_unwind(|| Options::parse(["--parallel".into(), "many".into()]))
                .unwrap_err();
        let message = *payload.downcast::<String>().expect("string panic payload");
        assert_eq!(message, "--parallel: \"many\" is not an integer");
    }

    #[test]
    fn workloads_flag_selects_registry_specs() {
        let o = Options::parse(
            [
                "--workloads",
                "heat:rows=64,cols=64,matmul:n=128",
                "--workloads",
                "lu",
            ]
            .into_iter()
            .map(String::from),
        );
        let labels: Vec<String> = o.workload_specs().iter().map(|w| w.label()).collect();
        assert_eq!(labels, vec!["heat:cols=64,rows=64", "matmul:n=128", "lu"]);
        // Only the paper benchmarks among them reach the figure sweeps.
        assert_eq!(o.benchmarks(), vec![Benchmark::Lu]);
    }

    #[test]
    fn workloads_supersede_app_and_parameterised_specs_skip_figure_panels() {
        // --workloads wins over --app, in every binary.
        let o = Options::parse(
            ["--app", "lu", "--workloads", "mergesort"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(o.benchmarks(), vec![Benchmark::Mergesort]);
        assert_eq!(
            o.workload_specs(),
            vec![WorkloadSpec::registry("mergesort")]
        );

        // A parameterised paper spec is not the paper benchmark: it must not
        // reach the figure sweeps with its parameters silently stripped.
        let o = Options::parse(
            ["--workloads", "mergesort:ws=8192"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(o.benchmarks(), vec![]);
        assert_eq!(o.workload_specs()[0].label(), "mergesort:ws=8192");
    }

    #[test]
    fn unknown_workload_is_rejected_with_suggestion() {
        let result = std::panic::catch_unwind(|| {
            Options::parse(["--workloads", "mergsort"].into_iter().map(String::from))
        });
        let message = match result {
            Ok(_) => panic!("unknown workload must be rejected"),
            Err(payload) => *payload.downcast::<String>().expect("string panic payload"),
        };
        assert!(message.contains("did you mean \"mergesort\""), "{message}");
        assert!(message.contains("registered:"), "{message}");
        assert!(message.contains("quicksort"), "{message}");
    }

    #[test]
    fn experiment_inherits_scale_and_workloads() {
        let o = Options::parse(
            ["--scale", "128", "--app", "lu"]
                .into_iter()
                .map(String::from),
        );
        let report = o.experiment("probe").cores(2).schedulers(["pdf"]).run();
        assert_eq!(report.scale, 128);
        assert_eq!(report.workloads(), vec!["lu".to_string()]);
    }
}
