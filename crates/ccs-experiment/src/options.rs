//! Command-line options shared by every experiment binary.
//!
//! Moved here from `ccs-bench` so the flags and the [`Experiment`] layer stay
//! in one place; `ccs-bench` re-exports this type for compatibility.

use std::path::PathBuf;

use ccs_sched::spec::split_spec_list;
use ccs_sim::SimEngine;
use ccs_workloads::Benchmark;

use crate::{Experiment, WorkloadSpec};

/// Options every experiment binary accepts:
///
/// * `--scale N` — divide the paper's input sizes *and* all cache capacities
///   by `N` (default 32) so the full sweep runs on a laptop while preserving
///   every capacity ratio;
/// * `--quick` — run a reduced sweep (used by the integration smoke tests);
/// * `--workloads <spec,...>` — select workloads from the open
///   [`WorkloadRegistry`](ccs_workloads::WorkloadRegistry) by spec string
///   (`--workloads mergesort,heat:rows=256,cols=256`; a comma-segment
///   containing `=` continues the previous spec's parameters).  Unknown
///   names are rejected up front with a did-you-mean listing of the
///   registered workloads.  May be repeated;
/// * `--app lu|hashjoin|mergesort` — restrict to one *paper* benchmark
///   (predates `--workloads`, kept as a compatibility alias for the closed
///   three-benchmark list; ignored whenever `--workloads` is given);
/// * `--parallel N` — fan experiment sweeps across `N` threads of the
///   `ccs-runtime` pool ([`Experiment::parallelism`]); `0` means one thread
///   per available core, the default (1) is sequential;
/// * `--json PATH` — additionally write the run's [`Report`](crate::Report)
///   as JSON to `PATH` (`-` for stdout);
/// * `--store PATH` — root directory of the persistent result store (the
///   `serve` daemon's memo layer; batch binaries ignore it);
/// * `--engine event|reference` — select the simulator engine (default: the
///   event-driven production engine; `reference` runs the retained
///   cycle-stepper, metrics-identical but much slower);
/// * `--bench` — benchmark mode: `run_all` substitutes the timed
///   `ccs-bench` harness for its normal sweeps and emits `BENCH_sim.json`
///   (other binaries ignore the flag);
/// * `--trials N` — in benchmark mode, repeat every timed pass `N` times
///   and keep the fastest wall time (the default is harness-chosen: 3 for
///   quick sweeps, 1 for full sweeps, 5 for the raw-simulator
///   microbenches);
/// * binary-specific flags are collected in [`Options::rest`].
#[derive(Clone, Debug)]
pub struct Options {
    /// Input/cache scale divisor (1 = the paper's sizes).
    pub scale: u64,
    /// Reduced sweep for smoke tests.
    pub quick: bool,
    /// Optional paper-benchmark filter (`--app lu|hashjoin|mergesort`;
    /// superseded by the open `--workloads` list).
    pub app: Option<Benchmark>,
    /// Registry-backed workload selection (`--workloads <spec,...>`); empty
    /// means "the default selection" (see [`Options::workload_specs`]).
    pub workloads: Vec<WorkloadSpec>,
    /// Worker threads for sweep execution (`--parallel N`; 1 = sequential).
    pub parallel: usize,
    /// Where to write the JSON report, if requested (`--json PATH`, `-` for
    /// stdout).
    pub json: Option<PathBuf>,
    /// Directory of the persistent [`ResultStore`](crate::ResultStore)
    /// (`--store PATH`); used by the `serve` daemon and client binaries,
    /// ignored by the batch binaries.
    pub store: Option<PathBuf>,
    /// Simulator engine selection (`--engine event|reference`).
    pub engine: SimEngine,
    /// Benchmark mode (`--bench`): `run_all` runs the timed harness and
    /// emits `BENCH_sim.json` instead of the plain sweeps.
    pub bench: bool,
    /// Benchmark trial count override (`--trials N`, min 1); `None` uses
    /// the harness defaults.
    pub trials: Option<u32>,
    /// Remaining unrecognised flags (binary-specific).
    pub rest: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 32,
            quick: false,
            app: None,
            workloads: Vec::new(),
            parallel: 1,
            json: None,
            store: None,
            engine: SimEngine::default(),
            bench: false,
            trials: None,
            rest: Vec::new(),
        }
    }
}

impl Options {
    /// Parse options from `std::env::args`.
    pub fn from_env() -> Options {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse options from an explicit iterator (used by tests).
    ///
    /// # Panics
    /// Panics with a descriptive message on malformed values — including
    /// `--workloads` specs whose name is not in the global registry, which
    /// report a did-you-mean listing of the registered workloads.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Options {
        let mut opts = Options::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = iter.next().expect("--scale requires a value");
                    opts.scale = v.parse().expect("--scale must be an integer");
                }
                "--quick" => opts.quick = true,
                "--app" => {
                    let v = iter.next().expect("--app requires a value");
                    opts.app = Some(match v.as_str() {
                        "lu" => Benchmark::Lu,
                        "hashjoin" => Benchmark::HashJoin,
                        "mergesort" => Benchmark::Mergesort,
                        other => panic!(
                            "unknown app {other:?} (lu|hashjoin|mergesort; \
                             use --workloads for the open registry)"
                        ),
                    });
                }
                "--workloads" => {
                    let v = iter.next().expect("--workloads requires a value");
                    for part in split_spec_list(&v) {
                        opts.workloads.push(resolve_workload(&part));
                    }
                }
                "--parallel" => {
                    let v = iter.next().expect("--parallel requires a value");
                    let n: usize = v.parse().expect("--parallel must be an integer");
                    opts.parallel = if n == 0 {
                        std::thread::available_parallelism()
                            .map(std::num::NonZeroUsize::get)
                            .unwrap_or(1)
                    } else {
                        n
                    };
                }
                "--json" => {
                    let v = iter.next().expect("--json requires a path (or '-')");
                    opts.json = Some(PathBuf::from(v));
                }
                "--store" => {
                    let v = iter.next().expect("--store requires a directory path");
                    opts.store = Some(PathBuf::from(v));
                }
                "--engine" => {
                    let v = iter
                        .next()
                        .expect("--engine requires a value (event|reference)");
                    opts.engine = v.parse().unwrap_or_else(|e| panic!("--engine: {e}"));
                }
                "--bench" => opts.bench = true,
                "--trials" => {
                    let v = iter.next().expect("--trials requires a count");
                    let n: u32 = v.parse().expect("--trials must be a positive integer");
                    assert!(n >= 1, "--trials must be at least 1");
                    opts.trials = Some(n);
                }
                other => opts.rest.push(other.to_string()),
            }
        }
        opts
    }

    /// The *paper* benchmarks selected by the options: the paper benchmarks
    /// named in `--workloads` (which supersedes `--app` everywhere), else
    /// the `--app` filter, else all three.  The figure sweeps use this — the
    /// paper's figures only cover LU, Hash Join and Mergesort.
    ///
    /// Only *bare* specs match: a parameterised spec like `mergesort:ws=8192`
    /// is not the paper's benchmark, and treating it as one would silently
    /// drop its parameters, so it selects no figure panel (figure binaries
    /// then print an empty report with a note, the same as `--app lu` on a
    /// figure without an LU panel).
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        let all = [Benchmark::Lu, Benchmark::HashJoin, Benchmark::Mergesort];
        if !self.workloads.is_empty() {
            return all
                .into_iter()
                .filter(|b| {
                    self.workloads.iter().any(|w| match w {
                        WorkloadSpec::Registry { name, params } => {
                            name == b.name() && params.is_empty()
                        }
                        WorkloadSpec::Fixed { .. } => false,
                    })
                })
                .collect();
        }
        if let Some(app) = self.app {
            return vec![app];
        }
        all.to_vec()
    }

    /// The full workload selection: the `--workloads` specs verbatim, or the
    /// [`Options::benchmarks`] fallback when none were given.
    pub fn workload_specs(&self) -> Vec<WorkloadSpec> {
        if self.workloads.is_empty() {
            self.benchmarks().into_iter().map(Into::into).collect()
        } else {
            self.workloads.clone()
        }
    }

    /// In quick mode shrink the workloads further so smoke tests stay fast
    /// (same clamp as [`crate::experiment::effective_scale`]).
    pub fn effective_scale(&self) -> u64 {
        crate::experiment::effective_scale(self.scale, self.quick)
    }

    /// Start an [`Experiment`] named `name` with this scale/quick/parallel
    /// setting and the selected workloads.
    pub fn experiment(&self, name: impl Into<String>) -> Experiment {
        Experiment::named(name)
            .workloads(self.workload_specs())
            .scale(self.scale)
            .quick(self.quick)
            .parallelism(self.parallel)
            .engine(self.engine)
    }

    /// Whether `--json -` directed the JSON report to stdout (in which case
    /// binaries route their human-readable tables to stderr, keeping stdout
    /// machine-parseable).
    pub fn json_to_stdout(&self) -> bool {
        self.json.as_deref().is_some_and(|p| p.as_os_str() == "-")
    }

    /// Emit `report` as requested by `--json` (writes the file, or prints to
    /// stdout for `-`).  Returns whether anything was emitted.
    pub fn emit_json(&self, report: &crate::Report) -> std::io::Result<bool> {
        match &self.json {
            None => Ok(false),
            Some(path) if path.as_os_str() == "-" => {
                print!("{}", report.to_json());
                Ok(true)
            }
            Some(path) => {
                report.write_json(path)?;
                eprintln!("# wrote {}", path.display());
                Ok(true)
            }
        }
    }
}

/// Parse one `--workloads` spec and reject names missing from the global
/// registry with the registry's did-you-mean listing.  The CLI boundary is
/// the one place the typed [`WorkloadSpec::resolve`] error still panics.
fn resolve_workload(spec: &str) -> WorkloadSpec {
    WorkloadSpec::resolve(spec).unwrap_or_else(|e| panic!("--workloads: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parsing() {
        let o = Options::parse(
            [
                "--scale",
                "64",
                "--quick",
                "--app",
                "mergesort",
                "--parallel",
                "4",
                "--json",
                "out.json",
                "--foo",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(o.scale, 64);
        assert!(o.quick);
        assert_eq!(o.app, Some(Benchmark::Mergesort));
        assert_eq!(o.parallel, 4);
        assert_eq!(o.json, Some(PathBuf::from("out.json")));
        assert_eq!(o.rest, vec!["--foo".to_string()]);
        assert_eq!(o.benchmarks(), vec![Benchmark::Mergesort]);
        assert_eq!(o.effective_scale(), 256);
    }

    #[test]
    fn defaults() {
        let o = Options::default();
        assert_eq!(o.scale, 32);
        assert_eq!(o.benchmarks().len(), 3);
        assert_eq!(o.workload_specs().len(), 3);
        assert_eq!(o.parallel, 1);
        assert_eq!(o.effective_scale(), 32);
        assert_eq!(o.json, None);
        assert_eq!(o.engine, SimEngine::EventDriven);
        assert!(!o.bench);
        assert_eq!(o.trials, None);
    }

    #[test]
    fn engine_and_bench_flags() {
        let o = Options::parse(
            ["--engine", "reference", "--bench", "--trials", "7"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(o.engine, SimEngine::Reference);
        assert!(o.bench);
        assert_eq!(o.trials, Some(7));
        assert!(o.rest.is_empty());

        let bad = std::panic::catch_unwind(|| {
            Options::parse(["--trials", "0"].into_iter().map(String::from))
        });
        assert!(bad.is_err(), "--trials 0 must be rejected");

        let bad = std::panic::catch_unwind(|| {
            Options::parse(["--engine", "quantum"].into_iter().map(String::from))
        });
        assert!(bad.is_err(), "unknown engine must be rejected");
    }

    #[test]
    fn workloads_flag_selects_registry_specs() {
        let o = Options::parse(
            [
                "--workloads",
                "heat:rows=64,cols=64,matmul:n=128",
                "--workloads",
                "lu",
            ]
            .into_iter()
            .map(String::from),
        );
        let labels: Vec<String> = o.workload_specs().iter().map(|w| w.label()).collect();
        assert_eq!(labels, vec!["heat:cols=64,rows=64", "matmul:n=128", "lu"]);
        // Only the paper benchmarks among them reach the figure sweeps.
        assert_eq!(o.benchmarks(), vec![Benchmark::Lu]);
    }

    #[test]
    fn workloads_supersede_app_and_parameterised_specs_skip_figure_panels() {
        // --workloads wins over --app, in every binary.
        let o = Options::parse(
            ["--app", "lu", "--workloads", "mergesort"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(o.benchmarks(), vec![Benchmark::Mergesort]);
        assert_eq!(
            o.workload_specs(),
            vec![WorkloadSpec::registry("mergesort")]
        );

        // A parameterised paper spec is not the paper benchmark: it must not
        // reach the figure sweeps with its parameters silently stripped.
        let o = Options::parse(
            ["--workloads", "mergesort:ws=8192"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(o.benchmarks(), vec![]);
        assert_eq!(o.workload_specs()[0].label(), "mergesort:ws=8192");
    }

    #[test]
    fn unknown_workload_is_rejected_with_suggestion() {
        let result = std::panic::catch_unwind(|| {
            Options::parse(["--workloads", "mergsort"].into_iter().map(String::from))
        });
        let message = match result {
            Ok(_) => panic!("unknown workload must be rejected"),
            Err(payload) => *payload.downcast::<String>().expect("string panic payload"),
        };
        assert!(message.contains("did you mean \"mergesort\""), "{message}");
        assert!(message.contains("registered:"), "{message}");
        assert!(message.contains("quicksort"), "{message}");
    }

    #[test]
    fn experiment_inherits_scale_and_workloads() {
        let o = Options::parse(
            ["--scale", "128", "--app", "lu"]
                .into_iter()
                .map(String::from),
        );
        let report = o.experiment("probe").cores(2).schedulers(["pdf"]).run();
        assert_eq!(report.scale, 128);
        assert_eq!(report.workloads(), vec!["lu".to_string()]);
    }
}
