//! Command-line options shared by every experiment binary.
//!
//! Moved here from `ccs-bench` so the flags and the [`Experiment`] layer stay
//! in one place; `ccs-bench` re-exports this type for compatibility.

use std::path::PathBuf;

use ccs_workloads::Benchmark;

use crate::Experiment;

/// Options every experiment binary accepts:
///
/// * `--scale N` — divide the paper's input sizes *and* all cache capacities
///   by `N` (default 32) so the full sweep runs on a laptop while preserving
///   every capacity ratio;
/// * `--quick` — run a reduced sweep (used by the integration smoke tests);
/// * `--app lu|hashjoin|mergesort` — restrict to one benchmark;
/// * `--json PATH` — additionally write the run's [`Report`](crate::Report)
///   as JSON to `PATH` (`-` for stdout);
/// * binary-specific flags are collected in [`Options::rest`].
#[derive(Clone, Debug)]
pub struct Options {
    /// Input/cache scale divisor (1 = the paper's sizes).
    pub scale: u64,
    /// Reduced sweep for smoke tests.
    pub quick: bool,
    /// Optional benchmark filter (`--app lu|hashjoin|mergesort`).
    pub app: Option<Benchmark>,
    /// Where to write the JSON report, if requested (`--json PATH`, `-` for
    /// stdout).
    pub json: Option<PathBuf>,
    /// Remaining unrecognised flags (binary-specific).
    pub rest: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 32,
            quick: false,
            app: None,
            json: None,
            rest: Vec::new(),
        }
    }
}

impl Options {
    /// Parse options from `std::env::args`.
    pub fn from_env() -> Options {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse options from an explicit iterator (used by tests).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Options {
        let mut opts = Options::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = iter.next().expect("--scale requires a value");
                    opts.scale = v.parse().expect("--scale must be an integer");
                }
                "--quick" => opts.quick = true,
                "--app" => {
                    let v = iter.next().expect("--app requires a value");
                    opts.app = Some(match v.as_str() {
                        "lu" => Benchmark::Lu,
                        "hashjoin" => Benchmark::HashJoin,
                        "mergesort" => Benchmark::Mergesort,
                        other => panic!("unknown app {other:?} (lu|hashjoin|mergesort)"),
                    });
                }
                "--json" => {
                    let v = iter.next().expect("--json requires a path (or '-')");
                    opts.json = Some(PathBuf::from(v));
                }
                other => opts.rest.push(other.to_string()),
            }
        }
        opts
    }

    /// The benchmarks selected by `--app` (or all three).
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        match self.app {
            Some(b) => vec![b],
            None => vec![Benchmark::Lu, Benchmark::HashJoin, Benchmark::Mergesort],
        }
    }

    /// In quick mode shrink the workloads further so smoke tests stay fast
    /// (same clamp as [`crate::experiment::effective_scale`]).
    pub fn effective_scale(&self) -> u64 {
        crate::experiment::effective_scale(self.scale, self.quick)
    }

    /// Start an [`Experiment`] named `name` with this scale/quick setting and
    /// the selected benchmarks as workloads.
    pub fn experiment(&self, name: impl Into<String>) -> Experiment {
        Experiment::named(name)
            .workloads(self.benchmarks())
            .scale(self.scale)
            .quick(self.quick)
    }

    /// Whether `--json -` directed the JSON report to stdout (in which case
    /// binaries route their human-readable tables to stderr, keeping stdout
    /// machine-parseable).
    pub fn json_to_stdout(&self) -> bool {
        self.json.as_deref().is_some_and(|p| p.as_os_str() == "-")
    }

    /// Emit `report` as requested by `--json` (writes the file, or prints to
    /// stdout for `-`).  Returns whether anything was emitted.
    pub fn emit_json(&self, report: &crate::Report) -> std::io::Result<bool> {
        match &self.json {
            None => Ok(false),
            Some(path) if path.as_os_str() == "-" => {
                print!("{}", report.to_json());
                Ok(true)
            }
            Some(path) => {
                report.write_json(path)?;
                eprintln!("# wrote {}", path.display());
                Ok(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parsing() {
        let o = Options::parse(
            [
                "--scale",
                "64",
                "--quick",
                "--app",
                "mergesort",
                "--json",
                "out.json",
                "--foo",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(o.scale, 64);
        assert!(o.quick);
        assert_eq!(o.app, Some(Benchmark::Mergesort));
        assert_eq!(o.json, Some(PathBuf::from("out.json")));
        assert_eq!(o.rest, vec!["--foo".to_string()]);
        assert_eq!(o.benchmarks(), vec![Benchmark::Mergesort]);
        assert_eq!(o.effective_scale(), 256);
    }

    #[test]
    fn defaults() {
        let o = Options::default();
        assert_eq!(o.scale, 32);
        assert_eq!(o.benchmarks().len(), 3);
        assert_eq!(o.effective_scale(), 32);
        assert_eq!(o.json, None);
    }

    #[test]
    fn experiment_inherits_scale_and_workloads() {
        let o = Options::parse(
            ["--scale", "128", "--app", "lu"]
                .into_iter()
                .map(String::from),
        );
        let report = o.experiment("probe").cores(2).schedulers(["pdf"]).run();
        assert_eq!(report.scale, 128);
        assert_eq!(report.workloads(), vec!["lu".to_string()]);
    }
}
