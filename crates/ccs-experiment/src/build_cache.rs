//! Process-global cache of built workload computations.
//!
//! Registry workloads are **deterministic** functions of `(spec label,
//! scale, scaled L2 capacity, cores)` — PR 4 exploited that *within* one
//! sweep by building each distinct computation once per
//! [`Experiment::run`](crate::Experiment::run).  But a session rarely runs
//! one sweep: the figure binaries share workloads across sweeps (fig 2 and
//! fig 4 both build the default-point mergesort), and the bench harness
//! re-runs whole sweep passes back-to-back for noise-resistant minima —
//! each pass paying the full trace-generation, DAG-flattening and
//! stream/geometry-compilation cost again for byte-identical results.
//!
//! This module hoists the reuse to the process level: one bounded,
//! least-recently-used map from build key to the shared
//! `(computation, DAG)` pair.  Because the line streams and geometry lanes
//! are memoised *on* the computation, a cache hit also reuses every
//! compiled stream and set-index table — the whole "compile once per sweep
//! configuration" artifact chain survives across sweeps and trials.
//!
//! Correctness is untouched: builders are pure, so a cached computation is
//! byte-identical to a rebuilt one (the `bench_gate` determinism columns
//! and the parallel-vs-sequential CI `cmp` would catch any drift), and
//! only *registry* specs are cached — `Fixed` specs stay keyed by `Arc`
//! identity inside each run.  The cache is bounded by the estimated heap
//! footprint of its entries ([`BUDGET_BYTES`]); full-scale sweeps evict
//! oldest-used entries instead of accumulating gigabytes.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use ccs_dag::{Computation, Dag};

/// Eviction budget: the summed footprint estimate of cached builds is kept
/// at or below this.  Quick-mode builds are a few MB each, so the whole
/// quick sweep fits; a full-scale (scale 1) build can exceed the budget on
/// its own, in which case it is cached alone and evicted by the next
/// insertion — exactly the old build-per-sweep behaviour.
pub const BUDGET_BYTES: u64 = 256 * 1024 * 1024;

/// One cached build: the shared pair every sweep point of a matching key
/// clones, plus bookkeeping for the LRU budget.
struct Entry {
    built: Arc<(Arc<Computation>, Arc<Dag>)>,
    /// Footprint estimate: trace arena + CSR DAG (compiled streams/lanes
    /// grow this lazily, but they are proportional to the arena).
    bytes: u64,
    last_used: u64,
}

/// Key: `(spec label, scale, scaled L2 bytes, cores)` — the same
/// determinism contract the per-run map of PR 4 relied on.
type Key = (String, u64, u64, usize);

#[derive(Default)]
struct BuildCache {
    entries: HashMap<Key, Entry>,
    tick: u64,
}

fn cache() -> &'static Mutex<BuildCache> {
    static CACHE: OnceLock<Mutex<BuildCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BuildCache::default()))
}

/// Fetch the shared build for `key`, building it with `build` on a miss.
///
/// The builder runs *outside* the cache lock, so concurrent sweep points
/// (`Experiment::parallelism`) never serialise on each other's builds; if
/// two threads race on the same key the first inserted entry wins and the
/// loser's duplicate is dropped (builders are pure, so both are
/// identical).
pub(crate) fn get_or_build(
    key: Key,
    build: impl FnOnce() -> (Arc<Computation>, Arc<Dag>),
) -> Arc<(Arc<Computation>, Arc<Dag>)> {
    {
        let mut cache = cache().lock().unwrap_or_else(|e| e.into_inner());
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(entry) = cache.entries.get_mut(&key) {
            entry.last_used = tick;
            return Arc::clone(&entry.built);
        }
    }
    let (comp, dag) = build();
    let bytes = comp.trace_arena_bytes() + dag.heap_bytes();
    let built = Arc::new((comp, dag));
    let mut cache = cache().lock().unwrap_or_else(|e| e.into_inner());
    cache.tick += 1;
    let tick = cache.tick;
    if let Some(entry) = cache.entries.get_mut(&key) {
        // Lost a build race: share the winner.
        entry.last_used = tick;
        return Arc::clone(&entry.built);
    }
    cache.entries.insert(
        key,
        Entry {
            built: Arc::clone(&built),
            bytes,
            last_used: tick,
        },
    );
    // Enforce the budget, never evicting the entry just inserted.
    let mut total: u64 = cache.entries.values().map(|e| e.bytes).sum();
    while total > BUDGET_BYTES && cache.entries.len() > 1 {
        let oldest = cache
            .entries
            .iter()
            .filter(|(_, e)| e.last_used != tick)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        match oldest {
            Some(k) => {
                if let Some(evicted) = cache.entries.remove(&k) {
                    total -= evicted.bytes;
                }
            }
            None => break,
        }
    }
    built
}

/// Number of builds currently cached (diagnostics/tests).
pub fn cached_builds() -> usize {
    cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .entries
        .len()
}

/// Drop every cached build (tests, or to release memory mid-process).
pub fn clear() {
    cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .entries
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny(comp_work: u64) -> (Arc<Computation>, Arc<Dag>) {
        let mut b = ccs_dag::ComputationBuilder::new(128);
        let leaf = b.strand_with(|t| {
            t.compute(comp_work).read(0x1000, 64);
        });
        let comp = Arc::new(b.finish(leaf));
        let dag = Arc::new(Dag::from_computation(&comp));
        (comp, dag)
    }

    #[test]
    fn second_lookup_shares_the_first_build() {
        clear();
        let calls = AtomicUsize::new(0);
        let key = ("bc-test-a".to_string(), 1, 1024, 2);
        let a = get_or_build(key.clone(), || {
            calls.fetch_add(1, Ordering::SeqCst);
            tiny(5)
        });
        let b = get_or_build(key, || {
            calls.fetch_add(1, Ordering::SeqCst);
            tiny(5)
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "second lookup is a hit");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cached_builds() >= 1);
        clear();
        assert_eq!(cached_builds(), 0);
    }

    #[test]
    fn distinct_keys_build_separately() {
        clear();
        let a = get_or_build(("bc-test-b".into(), 1, 1024, 2), || tiny(5));
        let b = get_or_build(("bc-test-b".into(), 1, 2048, 2), || tiny(5));
        assert!(
            !Arc::ptr_eq(&a, &b),
            "different L2 capacity, different build"
        );
        clear();
    }
}
