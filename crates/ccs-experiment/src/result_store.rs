//! A persistent, on-disk memo store of completed [`RunRecord`]s.
//!
//! This is the durable layer the ROADMAP's sweep-service item asked for on
//! top of PR 5's in-memory [`build_cache`](crate::build_cache): where the
//! build cache shares *computations* within one process, the result store
//! shares finished *records* across processes and restarts.  The `ccs-serve`
//! daemon fronts every sweep point with it, so a repeated request is served
//! from disk byte-identical to a fresh run.
//!
//! # Correctness
//!
//! Every record is a deterministic function of its canonical key
//! ([`crate::canon::record_key`]), and record JSON serialisation is
//! lossless for all serialised fields ([`RunRecord::to_json`] /
//! [`RunRecord::from_json`]; the wall-clock `compile_ms` annotation is
//! excluded from JSON *and* equality by design).  A stored record therefore
//! reserialises to exactly the bytes a cold run would produce — the
//! property the daemon's `cmp`-based CI smoke and e2e tests pin.
//!
//! # On-disk format and integrity
//!
//! One file per record under the store directory:
//!
//! ```text
//! <fnv1a64(key) as 16 hex digits>.json
//! { "ccs-store": 2, "key": "<full canonical key>", "sum": "<16 hex digits>", "record": { ... } }
//! ```
//!
//! The full key is stored in the file and compared on every read, so an
//! FNV collision (or a key-grammar change, see
//! [`canon::KEY_VERSION`](crate::canon::KEY_VERSION)) is detected and
//! treated as a miss rather than served wrong.  `sum` is the FNV-1a hash
//! ([`canon::fnv1a64`](crate::canon::fnv1a64)) of the stored key plus the
//! record's compact JSON, so silent corruption of either is caught.
//! Writes go through a process-unique temporary file that is `sync_all`ed
//! and then atomically renamed into place, so concurrent writers (daemon
//! workers, parallel daemons sharing a store directory) can never expose a
//! torn file, and a crash cannot leave a half-written entry behind the
//! rename; racing writers of the same key produce identical bytes, so
//! last-rename-wins is harmless.
//!
//! Reads distinguish three outcomes: *miss* (no file, a stale-version
//! entry, or a key mismatch), *hit*, and *corrupt* (unreadable,
//! unparseable, checksum mismatch).  Corrupt entries are quarantined —
//! renamed once to `<hash>.corrupt` with a stderr note — instead of being
//! silently recomputed forever; opening a store also runs a recovery scan
//! that deletes stale `.tmp-*` writer files and quarantines corrupt
//! entries up front, so a `kill -9`'d daemon restarts onto a clean store.
//!
//! A small in-memory map fronts the disk so repeated hits in one process
//! skip the file system after the first read.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ccs_runtime::fault::{self, FaultKind};

use crate::canon::{fnv1a64, key_hash_hex};
use crate::json::{self, Json};
use crate::RunRecord;

/// Version tag of the file format (the `"ccs-store"` field).  Version 2
/// added the embedded `"sum"` checksum; version-1 files read as stale
/// misses and are overwritten by the next put of their key.
pub const STORE_VERSION: u64 = 2;

/// A durable key → [`RunRecord`] store rooted at one directory, optionally
/// byte-bounded with LRU-by-mtime eviction (see
/// [`ResultStore::open_bounded`]).
pub struct ResultStore {
    dir: PathBuf,
    /// Disk byte budget; `None` grows unboundedly (the historical default).
    max_bytes: Option<u64>,
    /// In-memory front: canonical key → record, filled by hits and puts.
    mem: Mutex<HashMap<String, RunRecord>>,
    /// Distinguishes concurrent writers' temporary files within the process.
    tmp_seq: AtomicU64,
}

impl ResultStore {
    /// Open (creating if needed) the store rooted at `dir`, unbounded.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        Self::open_bounded(dir, None)
    }

    /// Open the store with an optional disk budget.  When `max_bytes` is
    /// `Some`, every [`ResultStore::put`] that leaves the entry files over
    /// budget evicts least-recently-used entries (by file mtime — disk read
    /// hits and rewrites both refresh it) until the store fits, never
    /// evicting the entry just written.  Eviction is crash-safe by
    /// construction: an entry either exists whole or not at all, and a
    /// re-run of an evicted key deterministically regenerates its record.
    pub fn open_bounded(
        dir: impl Into<PathBuf>,
        max_bytes: Option<u64>,
    ) -> io::Result<ResultStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = ResultStore {
            dir,
            max_bytes,
            mem: Mutex::new(HashMap::new()),
            tmp_seq: AtomicU64::new(0),
        };
        store.recover();
        Ok(store)
    }

    /// Startup recovery scan: delete stale `.tmp-*` files a crashed writer
    /// left behind and quarantine corrupt entries, so damage is surfaced
    /// once at open instead of re-read on every miss.  Best-effort — scan
    /// failures leave the files for the per-read quarantine path.
    ///
    /// (A *live* concurrent daemon's in-flight `.tmp-*` file can be swept
    /// here too; its rename then fails and it loses only that one
    /// memoisation, which a later run regenerates deterministically.)
    fn recover(&self) {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for item in dir.flatten() {
            let path = item.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with(".tmp-") {
                let _ = std::fs::remove_file(&path);
                continue;
            }
            if path.extension().is_some_and(|ext| ext == "json") {
                let outcome = match std::fs::read_to_string(&path) {
                    Ok(text) => check_entry(&text).map(|_| ()),
                    Err(e) => Err(format!("unreadable: {e}")),
                };
                if let Err(reason) = outcome {
                    quarantine(&path, &reason);
                }
            }
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured disk budget, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Look up the record stored under `key`, if any.  Disk hits are
    /// promoted into the in-memory front and have their file mtime
    /// refreshed (so a bounded store's eviction order tracks use, not just
    /// write age).  Missing files, stale-version entries and key
    /// mismatches are misses; unreadable or corrupt files are quarantined
    /// (renamed to `<hash>.corrupt`, once, with a stderr note) and then
    /// miss.
    pub fn get(&self, key: &str) -> Option<RunRecord> {
        if let Some(hit) = self
            .mem
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
        {
            return Some(hit);
        }
        let path = self.entry_path(key);
        let record = match read_entry(&path, key) {
            ReadOutcome::Hit(record) => *record,
            ReadOutcome::Miss => return None,
            ReadOutcome::Corrupt(reason) => {
                quarantine(&path, &reason);
                return None;
            }
        };
        touch(&path);
        self.mem
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.to_string(), record.clone());
        Some(record)
    }

    /// Persist `record` under `key` (memory + synced atomic disk write),
    /// then enforce the disk budget when one was configured.  A disk
    /// failure leaves the in-memory front intact, so the running process
    /// keeps serving the record; only durability is lost.
    pub fn put(&self, key: &str, record: &RunRecord) -> io::Result<()> {
        self.mem
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.to_string(), record.clone());
        if let Some(err) = fault::injected_io_error(FaultKind::StoreIo) {
            return Err(err);
        }
        let record_json = record.to_json();
        let doc = Json::object([
            ("ccs-store", STORE_VERSION.into()),
            ("key", key.into()),
            ("sum", entry_checksum(key, &record_json).into()),
            ("record", record_json),
        ]);
        let text = doc.to_string_pretty();
        let path = self.entry_path(key);
        if fault::should_inject(FaultKind::TornWrite) {
            // Simulate a writer that died mid-write *without* the
            // tmp+rename protocol (a crashed legacy daemon, a failing
            // disk): truncated bytes land at the entry path directly, for
            // the recovery scan and quarantine path to find.
            return std::fs::write(&path, &text.as_bytes()[..text.len() / 2]);
        }
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        {
            use std::io::Write as _;
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            // Data must be on disk before the rename publishes the entry,
            // or a crash could expose a whole-looking but empty file.
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        if let Some(max) = self.max_bytes {
            self.evict_to_fit(max, &path);
        }
        Ok(())
    }

    /// Number of records in the in-memory front (not a disk census).
    pub fn cached_records(&self) -> usize {
        self.mem.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Total bytes of entry files currently on disk (temporary files
    /// excluded) — what [`ResultStore::put`] bounds against `max_bytes`.
    pub fn disk_bytes(&self) -> u64 {
        self.entry_files().into_iter().map(|e| e.bytes).sum()
    }

    /// Delete oldest-mtime entries until the entry files fit in `budget`,
    /// sparing `keep` (the entry just written).  Best-effort: scan or
    /// remove failures (e.g. a concurrent daemon already evicted the file)
    /// are skipped, never surfaced — the store stays a cache either way.
    fn evict_to_fit(&self, budget: u64, keep: &Path) {
        let mut entries = self.entry_files();
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        if total <= budget {
            return;
        }
        // Oldest first; equal mtimes (coarse clocks) break by file name so
        // concurrent evictors converge on the same victims.
        entries.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
        for entry in entries {
            if total <= budget {
                break;
            }
            if entry.path == keep {
                continue;
            }
            if std::fs::remove_file(&entry.path).is_ok() {
                total = total.saturating_sub(entry.bytes);
            }
        }
    }

    /// The store's current entry files (`<hash>.json`; in-flight `.tmp-*`
    /// writer files are not entries and are skipped).
    fn entry_files(&self) -> Vec<EntryFile> {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        dir.filter_map(|item| {
            let item = item.ok()?;
            let path = item.path();
            if path.extension().is_none_or(|ext| ext != "json") {
                return None;
            }
            let meta = item.metadata().ok()?;
            if !meta.is_file() {
                return None;
            }
            Some(EntryFile {
                bytes: meta.len(),
                mtime: meta.modified().ok()?,
                path,
            })
        })
        .collect()
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.json", key_hash_hex(key)))
    }
}

/// One on-disk entry, as seen by the eviction scan.
struct EntryFile {
    path: PathBuf,
    bytes: u64,
    mtime: std::time::SystemTime,
}

/// Refresh `path`'s mtime (best-effort; a vanished file is fine).
fn touch(path: &Path) {
    if let Ok(file) = std::fs::File::options().write(true).open(path) {
        let _ = file.set_modified(std::time::SystemTime::now());
    }
}

/// Result of reading one store file.
enum ReadOutcome {
    /// No usable entry for this key: absent file, stale version (to be
    /// overwritten by the next put) or a stored-key mismatch (FNV
    /// collision — a *valid* entry for a different key, not damage).
    Miss,
    /// A verified current-version entry for this key.  Boxed: a
    /// `RunRecord` dwarfs the other variants.
    Hit(Box<RunRecord>),
    /// The file is damaged (unreadable, unparseable, failed checksum):
    /// real I/O trouble the caller must quarantine, not silently retry.
    Corrupt(String),
}

/// Read and verify one store file against `key`.
fn read_entry(path: &Path, key: &str) -> ReadOutcome {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return ReadOutcome::Miss,
        Err(e) => return ReadOutcome::Corrupt(format!("unreadable: {e}")),
    };
    match check_entry(&text) {
        Ok(Some((stored_key, record))) if stored_key == key => ReadOutcome::Hit(Box::new(record)),
        Ok(_) => ReadOutcome::Miss,
        Err(reason) => ReadOutcome::Corrupt(reason),
    }
}

/// Validate one store document: `Ok(Some((key, record)))` for a verified
/// current-version entry, `Ok(None)` for a stale (older-version) one, and
/// `Err(reason)` for damage.
fn check_entry(text: &str) -> Result<Option<(String, RunRecord)>, String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
    let version = doc
        .get("ccs-store")
        .and_then(Json::as_u64)
        .ok_or_else(|| "no \"ccs-store\" version field".to_string())?;
    if version != STORE_VERSION {
        return Ok(None);
    }
    let stored_key = doc
        .get("key")
        .and_then(Json::as_str)
        .ok_or_else(|| "no \"key\" field".to_string())?;
    let sum = doc
        .get("sum")
        .and_then(Json::as_str)
        .ok_or_else(|| "no \"sum\" field".to_string())?;
    let record_json = doc
        .get("record")
        .ok_or_else(|| "no \"record\" field".to_string())?;
    if sum != entry_checksum(stored_key, record_json) {
        return Err("checksum mismatch".to_string());
    }
    let record = RunRecord::from_json(record_json).map_err(|e| format!("bad record: {e}"))?;
    Ok(Some((stored_key.to_string(), record)))
}

/// The embedded integrity checksum: FNV-1a over the stored key and the
/// record's compact JSON.  Compact serialisation is deterministic and
/// round-trips through parse, so the hash is independent of the pretty
/// formatting the file uses.
fn entry_checksum(key: &str, record_json: &Json) -> String {
    let material = format!("{key}\n{}", record_json.to_string_compact());
    format!("{:016x}", fnv1a64(material.as_bytes()))
}

/// Move a damaged entry aside to `<hash>.corrupt` so it is inspected (or
/// deleted) by an operator instead of being re-read on every miss.  The
/// rename makes the stderr note once-per-file by construction.
fn quarantine(path: &Path, reason: &str) {
    let target = path.with_extension("corrupt");
    match std::fs::rename(path, &target) {
        Ok(()) => eprintln!(
            "ccs-store: quarantined corrupt entry {} -> {} ({reason})",
            path.display(),
            target.display(),
        ),
        // A concurrent reader may have quarantined it first; anything else
        // is still worth a note, but never fatal — the record regenerates.
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => eprintln!(
            "ccs-store: failed to quarantine {} ({reason}): {e}",
            path.display(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_sched::SchedulerSpec;

    fn unique_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "ccs-store-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ))
    }

    fn sample_record() -> RunRecord {
        let report = crate::Experiment::new("mergesort")
            .cores(2)
            .scale(1024)
            .schedulers(["pdf"])
            .run();
        report.records[0].clone()
    }

    #[test]
    fn put_get_round_trips_across_store_instances() {
        let dir = unique_dir("roundtrip");
        let record = sample_record();
        let key = crate::canon::record_key(
            "mergesort",
            &ccs_sim::CmpConfig::default_with_cores(2).unwrap(),
            1024,
            ccs_sim::SimEngine::EventDriven,
            &SchedulerSpec::new("pdf"),
            true,
        );
        {
            let store = ResultStore::open(&dir).unwrap();
            assert!(store.get(&key).is_none());
            store.put(&key, &record).unwrap();
            assert_eq!(store.get(&key).unwrap(), record);
        }
        // A fresh instance (fresh process, in spirit) reads it from disk —
        // and the stored record reserialises byte-identically.
        let store = ResultStore::open(&dir).unwrap();
        let stored = store.get(&key).expect("persisted record");
        assert_eq!(stored, record);
        assert_eq!(
            stored.to_json().to_string_pretty(),
            record.to_json().to_string_pretty()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_mismatches_miss() {
        let dir = unique_dir("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        let record = sample_record();
        store.put("key-a", &record).unwrap();

        // A different key hashing to a different file: plain miss, and
        // nothing gets quarantined.
        assert!(store.get("key-b").is_none());

        // Overwrite key-a's file with garbage; a fresh store's recovery
        // scan must quarantine it to `<hash>.corrupt`, and the key misses.
        let path = dir.join(format!("{}.json", key_hash_hex("key-a")));
        std::fs::write(&path, "not json at all").unwrap();
        let fresh = ResultStore::open(&dir).unwrap();
        assert!(fresh.get("key-a").is_none());
        assert!(!path.exists(), "corrupt file moved aside");
        assert!(path.with_extension("corrupt").exists(), "quarantine file");
        std::fs::remove_file(path.with_extension("corrupt")).unwrap();

        // A checksum that does not match the payload: quarantined, this
        // time via the read path of an already-open store.
        let store = ResultStore::open(&dir).unwrap();
        let doc = Json::object([
            ("ccs-store", STORE_VERSION.into()),
            ("key", "key-a".into()),
            ("sum", "0000000000000000".into()),
            ("record", record.to_json()),
        ]);
        std::fs::write(&path, doc.to_string_pretty()).unwrap();
        assert!(store.get("key-a").is_none());
        assert!(path.with_extension("corrupt").exists());
        std::fs::remove_file(path.with_extension("corrupt")).unwrap();

        // A well-formed, correctly-checksummed file whose *stored key*
        // disagrees (hash collision stand-in): a miss, but NOT damage —
        // it must survive unquarantined.
        let other_json = record.to_json();
        let doc = Json::object([
            ("ccs-store", STORE_VERSION.into()),
            ("key", "some-other-key".into()),
            ("sum", entry_checksum("some-other-key", &other_json).into()),
            ("record", other_json),
        ]);
        std::fs::write(&path, doc.to_string_pretty()).unwrap();
        let fresh = ResultStore::open(&dir).unwrap();
        assert!(fresh.get("key-a").is_none());
        assert!(path.exists(), "collision entry is not quarantined");

        // A stale-version entry: a miss (the next put overwrites it), and
        // also not quarantined.
        let doc = Json::object([
            ("ccs-store", 1u64.into()),
            ("key", "key-a".into()),
            ("record", record.to_json()),
        ]);
        std::fs::write(&path, doc.to_string_pretty()).unwrap();
        let fresh = ResultStore::open(&dir).unwrap();
        assert!(fresh.get("key-a").is_none());
        assert!(path.exists(), "stale entry is not quarantined");
        fresh.put("key-a", &record).unwrap();
        assert_eq!(fresh.get("key-a").unwrap(), record);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_scan_sweeps_tmp_files_and_torn_writes() {
        let dir = unique_dir("recover");
        let record = sample_record();
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put("key-a", &record).unwrap();
        }
        // Simulate a crashed writer: a leftover tmp file plus an entry
        // whose bytes stop mid-document.
        std::fs::write(dir.join(".tmp-99999-0"), "half a docum").unwrap();
        let torn = dir.join(format!("{}.json", key_hash_hex("key-b")));
        let whole =
            std::fs::read_to_string(dir.join(format!("{}.json", key_hash_hex("key-a")))).unwrap();
        std::fs::write(&torn, &whole[..whole.len() / 2]).unwrap();

        let store = ResultStore::open(&dir).unwrap();
        assert!(!dir.join(".tmp-99999-0").exists(), "tmp file swept");
        assert!(!torn.exists(), "torn entry quarantined at open");
        assert!(torn.with_extension("corrupt").exists());
        // The intact entry survived recovery and still round-trips.
        assert_eq!(store.get("key-a").unwrap(), record);
        // Quarantine files are invisible to the entry census.
        assert_eq!(
            store.disk_bytes(),
            std::fs::metadata(dir.join(format!("{}.json", key_hash_hex("key-a"))))
                .unwrap()
                .len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Backdate an entry's mtime so eviction order is deterministic even on
    /// coarse-clock file systems.
    fn set_age(store: &ResultStore, key: &str, seconds_old: u64) {
        let path = store.dir().join(format!("{}.json", key_hash_hex(key)));
        let when = std::time::SystemTime::now() - std::time::Duration::from_secs(seconds_old);
        std::fs::File::options()
            .write(true)
            .open(path)
            .unwrap()
            .set_modified(when)
            .unwrap();
    }

    fn on_disk(store: &ResultStore, key: &str) -> bool {
        store
            .dir()
            .join(format!("{}.json", key_hash_hex(key)))
            .exists()
    }

    #[test]
    fn bounded_store_evicts_lru_by_mtime() {
        let dir = unique_dir("evict");
        let record = sample_record();
        let entry_bytes = {
            let probe = ResultStore::open(&dir).unwrap();
            probe.put("probe", &record).unwrap();
            probe.disk_bytes()
        };
        std::fs::remove_dir_all(&dir).unwrap();

        // Budget for three entries: the fourth put must evict exactly one.
        let store = ResultStore::open_bounded(&dir, Some(3 * entry_bytes)).unwrap();
        assert_eq!(store.max_bytes(), Some(3 * entry_bytes));
        store.put("key-a", &record).unwrap();
        store.put("key-b", &record).unwrap();
        store.put("key-c", &record).unwrap();
        set_age(&store, "key-a", 300);
        set_age(&store, "key-b", 200);
        set_age(&store, "key-c", 100);
        store.put("key-d", &record).unwrap();
        assert!(!on_disk(&store, "key-a"), "oldest entry is the victim");
        for key in ["key-b", "key-c", "key-d"] {
            assert!(on_disk(&store, key), "{key} survives");
        }
        assert!(store.disk_bytes() <= 3 * entry_bytes);

        // A disk read refreshes the entry's mtime, so the *unread* one is
        // now the LRU victim.
        set_age(&store, "key-b", 200);
        set_age(&store, "key-c", 100);
        let fresh = ResultStore::open_bounded(&dir, Some(3 * entry_bytes)).unwrap();
        assert!(fresh.get("key-b").is_some(), "read promotes key-b");
        fresh.put("key-e", &record).unwrap();
        assert!(!on_disk(&fresh, "key-c"), "unread entry is the victim");
        assert!(on_disk(&fresh, "key-b"), "recently read entry survives");
        assert!(on_disk(&fresh, "key-e"), "just-written entry never evicted");

        // The unbounded default never evicts.
        let unbounded = ResultStore::open(&dir).unwrap();
        assert_eq!(unbounded.max_bytes(), None);
        unbounded.put("key-f", &record).unwrap();
        unbounded.put("key-g", &record).unwrap();
        assert!(unbounded.disk_bytes() > 3 * entry_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }
}
