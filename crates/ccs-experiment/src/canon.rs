//! Canonical run-point keys and their stable hash.
//!
//! The persistent result store ([`crate::result_store`]) and the `ccs-serve`
//! daemon memoise completed [`RunRecord`](crate::RunRecord)s across requests
//! and process restarts.  That only works if two requests that *mean* the
//! same run produce the same key, however they were spelled: `"matmul:n=512"`
//! and a spec built with `with_param("n", "512")` must collide, and parameter
//! order must not matter.
//!
//! [`record_key`] therefore builds the key from *canonical* forms only:
//!
//! * the workload's [`label`](crate::WorkloadSpec::label) (parameters in
//!   sorted key order — the same string `parse → format` normalises to);
//! * the scheduler spec's `Display` form (`"pdf"`, `"ws-rand@7"`);
//! * every field of the (unscaled) [`CmpConfig`] — the config *name* is
//!   included because it appears verbatim in the record, so two configs
//!   with equal geometry but different names are different runs;
//! * the scale divisor, engine and baseline flag, which all shape the
//!   record bytes.
//!
//! [`key_hash`] maps a key to the 64-bit FNV-1a hash used as the on-disk
//! file name.  The full key string is stored *inside* the file, so a hash
//! collision is detected (and treated as a miss) rather than served.

use ccs_sched::SchedulerSpec;
use ccs_sim::{CmpConfig, SimEngine};

/// Version prefix of the key grammar.  Bump when the key composition
/// changes so stale store entries miss instead of mismatching.
/// `/2`: added the cluster count and the optional L3 to the config axes.
pub const KEY_VERSION: &str = "ccs-key/2";

/// The canonical key of one run record: one simulated
/// (workload, config, scale, engine, scheduler, baseline?) point.
///
/// Every record an [`Experiment`](crate::Experiment) produces is a
/// deterministic function of this key (schedulers are deterministic given
/// their spec — randomised ones carry their seed in the spec).  The engine
/// is normalised with [`SimEngine::canonical`]: the batch engine is the
/// event engine's metrics byte-for-byte, so batched and event runs share
/// one key (and therefore one store entry), while the reference engine —
/// kept deliberately distinct as the A/B foil — keeps its own.
pub fn record_key(
    workload_label: &str,
    config: &CmpConfig,
    scale: u64,
    engine: SimEngine,
    scheduler: &SchedulerSpec,
    baseline: bool,
) -> String {
    let engine = engine.canonical();
    format!(
        "{KEY_VERSION}|workload={workload_label}|{}|scale={scale}|engine={}|sched={scheduler}|baseline={}",
        config_key(config),
        engine.name(),
        u8::from(baseline),
    )
}

/// The canonical form of a design point: every field that can influence a
/// simulation, pipe-separated.
fn config_key(config: &CmpConfig) -> String {
    let l3 = match &config.l3 {
        Some(l3) => format!(
            "{}/{}/{}/{}",
            l3.capacity, l3.line_size, l3.associativity, l3.hit_latency
        ),
        None => "none".to_string(),
    };
    format!(
        "config={}|cores={}|clusters={}|tech={:?}|l1={}/{}/{}/{}|l2={}/{}/{}/{}|l3={l3}|mem={}/{}",
        config.name,
        config.num_cores,
        config.clusters,
        config.technology,
        config.l1.capacity,
        config.l1.line_size,
        config.l1.associativity,
        config.l1.hit_latency,
        config.l2.capacity,
        config.l2.line_size,
        config.l2.associativity,
        config.l2.hit_latency,
        config.memory.latency,
        config.memory.service_interval,
    )
}

/// 64-bit FNV-1a over `key`'s bytes — the stable, dependency-free hash the
/// result store derives file names from ([`key_hash_hex`]).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// [`fnv1a64`] of a key string.
pub fn key_hash(key: &str) -> u64 {
    fnv1a64(key.as_bytes())
}

/// The fixed-width hex spelling of [`key_hash`] — the result store's file
/// stem for this key.
pub fn key_hash_hex(key: &str) -> String {
    format!("{:016x}", key_hash(key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn equivalent_spellings_share_a_key() {
        let config = CmpConfig::default_with_cores(2).unwrap();
        let sched = SchedulerSpec::new("pdf");
        let a = WorkloadSpec::from("heat:rows=64,cols=32");
        let b = WorkloadSpec::registry("heat")
            .with_param("cols", "32")
            .with_param("rows", "64");
        assert_eq!(
            record_key(
                &a.label(),
                &config,
                64,
                SimEngine::EventDriven,
                &sched,
                true
            ),
            record_key(
                &b.label(),
                &config,
                64,
                SimEngine::EventDriven,
                &sched,
                true
            ),
        );
    }

    #[test]
    fn every_axis_separates_keys() {
        let config = CmpConfig::default_with_cores(2).unwrap();
        let base = record_key(
            "mergesort",
            &config,
            64,
            SimEngine::EventDriven,
            &SchedulerSpec::new("pdf"),
            true,
        );
        let variants = [
            record_key(
                "lu",
                &config,
                64,
                SimEngine::EventDriven,
                &SchedulerSpec::new("pdf"),
                true,
            ),
            record_key(
                "mergesort",
                &CmpConfig::default_with_cores(4).unwrap(),
                64,
                SimEngine::EventDriven,
                &SchedulerSpec::new("pdf"),
                true,
            ),
            record_key(
                "mergesort",
                &config,
                128,
                SimEngine::EventDriven,
                &SchedulerSpec::new("pdf"),
                true,
            ),
            record_key(
                "mergesort",
                &config,
                64,
                SimEngine::Reference,
                &SchedulerSpec::new("pdf"),
                true,
            ),
            record_key(
                "mergesort",
                &config,
                64,
                SimEngine::EventDriven,
                &SchedulerSpec::new("ws-rand").with_seed(7),
                true,
            ),
            record_key(
                "mergesort",
                &config,
                64,
                SimEngine::EventDriven,
                &SchedulerSpec::new("pdf"),
                false,
            ),
            // Same geometry, different config name: the name lands in the
            // record's `config` field, so it must separate keys too.
            {
                let mut renamed = config.clone();
                renamed.name = "renamed".to_string();
                record_key(
                    "mergesort",
                    &renamed,
                    64,
                    SimEngine::EventDriven,
                    &SchedulerSpec::new("pdf"),
                    true,
                )
            },
            // The three-level axes: cluster count and L3 geometry.
            {
                let mut clustered = config.clone();
                clustered.clusters = 2;
                record_key(
                    "mergesort",
                    &clustered,
                    64,
                    SimEngine::EventDriven,
                    &SchedulerSpec::new("pdf"),
                    true,
                )
            },
            {
                // Undo the builder's rename so only the L3 axis differs.
                let mut with_l3 = config.clone().with_l3_mb(1);
                with_l3.name = config.name.clone();
                record_key(
                    "mergesort",
                    &with_l3,
                    64,
                    SimEngine::EventDriven,
                    &SchedulerSpec::new("pdf"),
                    true,
                )
            },
        ];
        for v in &variants {
            assert_ne!(&base, v);
            assert_ne!(key_hash(&base), key_hash(v));
        }
        assert_eq!(key_hash_hex(&base).len(), 16);
        // The batch engine is NOT an axis: its records are the event
        // engine's byte-for-byte, so the keys collide by design and a
        // batched sweep hits the store entries an event sweep populated.
        assert_eq!(
            base,
            record_key(
                "mergesort",
                &config,
                64,
                SimEngine::Batch,
                &SchedulerSpec::new("pdf"),
                true,
            )
        );
    }
}
