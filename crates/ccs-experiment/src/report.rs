//! Run records and serialisable experiment reports.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

use ccs_sched::SchedulerSpec;
use ccs_sim::SimResult;

use crate::json::{self, Json, JsonError};

/// One measured point: a workload simulated on one configuration under one
/// scheduler.
///
/// Every field is a deterministic function of the simulated configuration
/// *except* the execution annotations [`compile_ms`](RunRecord::compile_ms)
/// (wall-clock timing) and [`batch_width`](RunRecord::batch_width) (how the
/// batch engine grouped the point): they are carried in memory and in the
/// CSV emission, but excluded from equality and from the JSON trajectory so
/// reports stay byte-identical across repeat, parallel and cross-engine
/// runs (a guarantee CI and the test suite compare literally).
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Workload name (`"mergesort"`, `"lu"`, a custom name, …).
    pub workload: String,
    /// Configuration name (after scaling, e.g. `"default-16/64"`).
    pub config: String,
    /// Number of cores in the configuration.
    pub cores: usize,
    /// Number of L2 clusters (1 = one L2 shared by every core).
    pub clusters: usize,
    /// Scheduler registry name (`"pdf"`, `"ws"`, `"ws-rand"`, custom).
    pub scheduler: String,
    /// RNG seed the scheduler was instantiated with, if any.
    pub seed: Option<u64>,
    /// Execution time in cycles.
    pub cycles: u64,
    /// Total instructions executed.
    pub instructions: u64,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Aggregate L1 accesses (all cores).
    pub l1_accesses: u64,
    /// Aggregate L1 misses (all cores).
    pub l1_misses: u64,
    /// Shared-L2 accesses.
    pub l2_accesses: u64,
    /// Shared-L2 misses.
    pub l2_misses: u64,
    /// L2 misses per 1000 instructions — the paper's main cache metric.
    pub l2_mpki: f64,
    /// Shared-L3 accesses (0 when the configuration has no L3).
    pub l3_accesses: u64,
    /// Shared-L3 misses (0 when the configuration has no L3).
    pub l3_misses: u64,
    /// Fraction of cycles the memory controller was busy.
    pub bandwidth_utilization: f64,
    /// Off-chip traffic in bytes (fills + write-backs).
    pub off_chip_bytes: u64,
    /// Heap footprint of the simulated computation's trace arena
    /// (structure-of-arrays op lanes) in bytes.  Deterministic per build.
    pub trace_bytes: u64,
    /// Estimated peak host allocation for this run: trace arena + compiled
    /// line stream + geometry lanes + CSR DAG.  Deterministic per build
    /// and engine-independent (both engines share the same inputs).
    pub peak_alloc_estimate: u64,
    /// Milliseconds this record spent compiling the line stream and the
    /// geometry set lanes before simulating — the *incremental* cost
    /// (≈ 0 when an earlier record of the same build already compiled
    /// them; see DESIGN.md §9).  Wall-clock: excluded from equality and
    /// JSON (see the type docs), emitted in the CSV.
    pub compile_ms: f64,
    /// How many sweep points shared this record's batched group under the
    /// batch engine (0 = not batched, 1 = a singleton group).  An execution
    /// annotation like `compile_ms`: the simulated metrics are engine-
    /// independent, so this is excluded from equality and JSON and emitted
    /// in the CSV only (see DESIGN.md §11).
    pub batch_width: u64,
    /// Speedup over the matching sequential baseline, when one was run.
    pub speedup_over_seq: Option<f64>,
}

impl RunRecord {
    /// Build a record from a simulation result.
    pub fn from_sim(
        workload: impl Into<String>,
        spec: &SchedulerSpec,
        result: &SimResult,
        sequential: Option<&SimResult>,
    ) -> RunRecord {
        RunRecord {
            workload: workload.into(),
            config: result.config_name.clone(),
            cores: result.num_cores,
            clusters: result.clusters,
            scheduler: spec.name.clone(),
            seed: spec.params.seed,
            cycles: result.cycles,
            instructions: result.instructions,
            tasks: result.tasks,
            l1_accesses: result.l1.accesses,
            l1_misses: result.l1.misses,
            l2_accesses: result.l2.accesses,
            l2_misses: result.l2.misses,
            l2_mpki: result.l2_mpki(),
            l3_accesses: result.l3.accesses,
            l3_misses: result.l3.misses,
            bandwidth_utilization: result.bandwidth_utilization,
            off_chip_bytes: result.off_chip_bytes(),
            trace_bytes: 0,
            peak_alloc_estimate: 0,
            compile_ms: 0.0,
            batch_width: 0,
            speedup_over_seq: sequential.map(|seq| result.speedup_over(seq)),
        }
    }

    /// Attach the memory-footprint metrics (filled in by the experiment
    /// layer, which owns the built computation).
    pub fn with_footprint(mut self, trace_bytes: u64, peak_alloc_estimate: u64) -> RunRecord {
        self.trace_bytes = trace_bytes;
        self.peak_alloc_estimate = peak_alloc_estimate;
        self
    }

    /// Attach the stream/geometry compilation time (filled in by the
    /// experiment layer, which performs the prebuild).
    pub fn with_compile_ms(mut self, compile_ms: f64) -> RunRecord {
        self.compile_ms = compile_ms;
        self
    }

    /// Attach the batched-group width (filled in by the experiment layer's
    /// sweep planner when the batch engine grouped this record's point).
    pub fn with_batch_width(mut self, batch_width: u64) -> RunRecord {
        self.batch_width = batch_width;
        self
    }

    /// Display label for tables: the scheduler name, with the seed attached
    /// when there is one (`"ws-rand@7"`).
    pub fn scheduler_label(&self) -> String {
        match self.seed {
            Some(seed) => format!("{}@{}", self.scheduler, seed),
            None => self.scheduler.clone(),
        }
    }

    /// Percentage reduction of L2 MPKI relative to another record (positive =
    /// this record misses less), the Section 5.1 headline metric.  Returns
    /// 0.0 when `other` has no misses at all.
    pub fn mpki_reduction_vs(&self, other: &RunRecord) -> f64 {
        if other.l2_mpki == 0.0 {
            0.0
        } else {
            (other.l2_mpki - self.l2_mpki) / other.l2_mpki * 100.0
        }
    }

    /// The record as a JSON value — the element shape of
    /// [`Report::to_json`]'s `records` array.  `compile_ms` is excluded
    /// (see the type docs), so serialisation is deterministic per
    /// simulated point.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("workload", self.workload.as_str().into()),
            ("config", self.config.as_str().into()),
            ("cores", self.cores.into()),
            ("clusters", self.clusters.into()),
            ("scheduler", self.scheduler.as_str().into()),
            ("seed", self.seed.into()),
            ("cycles", self.cycles.into()),
            ("instructions", self.instructions.into()),
            ("tasks", self.tasks.into()),
            ("l1_accesses", self.l1_accesses.into()),
            ("l1_misses", self.l1_misses.into()),
            ("l2_accesses", self.l2_accesses.into()),
            ("l2_misses", self.l2_misses.into()),
            ("l2_mpki", self.l2_mpki.into()),
            ("l3_accesses", self.l3_accesses.into()),
            ("l3_misses", self.l3_misses.into()),
            ("bandwidth_utilization", self.bandwidth_utilization.into()),
            ("off_chip_bytes", self.off_chip_bytes.into()),
            ("trace_bytes", self.trace_bytes.into()),
            ("peak_alloc_estimate", self.peak_alloc_estimate.into()),
            ("speedup_over_seq", self.speedup_over_seq.into()),
        ])
    }

    /// Parse a record back from [`RunRecord::to_json`] output
    /// (`to_json(from_json(v)) == v` — the round-trip is lossless for every
    /// serialised field; `compile_ms` comes back as 0.0).
    pub fn from_json(value: &Json) -> Result<RunRecord, JsonError> {
        let str_field = |key: &str| -> Result<String, JsonError> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| field_error(key, "string"))
        };
        let u64_field = |key: &str| -> Result<u64, JsonError> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| field_error(key, "u64"))
        };
        let f64_field = |key: &str| -> Result<f64, JsonError> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| field_error(key, "number"))
        };
        let opt = |key: &str, of: fn(&Json) -> Option<f64>| -> Option<f64> {
            value.get(key).filter(|v| !v.is_null()).and_then(of)
        };
        Ok(RunRecord {
            workload: str_field("workload")?,
            config: str_field("config")?,
            cores: u64_field("cores")? as usize,
            clusters: u64_field("clusters")? as usize,
            scheduler: str_field("scheduler")?,
            seed: value
                .get("seed")
                .filter(|v| !v.is_null())
                .and_then(Json::as_u64),
            cycles: u64_field("cycles")?,
            instructions: u64_field("instructions")?,
            tasks: u64_field("tasks")? as usize,
            l1_accesses: u64_field("l1_accesses")?,
            l1_misses: u64_field("l1_misses")?,
            l2_accesses: u64_field("l2_accesses")?,
            l2_misses: u64_field("l2_misses")?,
            l2_mpki: f64_field("l2_mpki")?,
            l3_accesses: u64_field("l3_accesses")?,
            l3_misses: u64_field("l3_misses")?,
            bandwidth_utilization: f64_field("bandwidth_utilization")?,
            off_chip_bytes: u64_field("off_chip_bytes")?,
            trace_bytes: u64_field("trace_bytes")?,
            peak_alloc_estimate: u64_field("peak_alloc_estimate")?,
            // Not serialised (see the type docs): a parsed record carries
            // no execution annotations.
            compile_ms: 0.0,
            batch_width: 0,
            speedup_over_seq: opt("speedup_over_seq", Json::as_f64),
        })
    }
}

impl PartialEq for RunRecord {
    /// Equality over the *deterministic* fields only: `compile_ms` is a
    /// wall-clock annotation (see the type docs) and must not make two
    /// records of the same simulated point compare unequal.
    fn eq(&self, other: &RunRecord) -> bool {
        self.workload == other.workload
            && self.config == other.config
            && self.cores == other.cores
            && self.clusters == other.clusters
            && self.scheduler == other.scheduler
            && self.seed == other.seed
            && self.cycles == other.cycles
            && self.instructions == other.instructions
            && self.tasks == other.tasks
            && self.l1_accesses == other.l1_accesses
            && self.l1_misses == other.l1_misses
            && self.l2_accesses == other.l2_accesses
            && self.l2_misses == other.l2_misses
            && self.l2_mpki == other.l2_mpki
            && self.l3_accesses == other.l3_accesses
            && self.l3_misses == other.l3_misses
            && self.bandwidth_utilization == other.bandwidth_utilization
            && self.off_chip_bytes == other.off_chip_bytes
            && self.trace_bytes == other.trace_bytes
            && self.peak_alloc_estimate == other.peak_alloc_estimate
            && self.speedup_over_seq == other.speedup_over_seq
    }
}

fn field_error(key: &str, expected: &str) -> JsonError {
    JsonError {
        message: format!("record field {key:?} missing or not a {expected}"),
        offset: 0,
    }
}

/// The aggregated outcome of an [`Experiment`](crate::Experiment) run:
/// experiment metadata plus one [`RunRecord`] per measured point, with
/// JSON/CSV emission for machine-readable trajectories.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Experiment name (e.g. `"fig2"`).
    pub name: String,
    /// The input/cache scale divisor the runs used (1 = paper sizes).
    pub scale: u64,
    /// The measured points, in run order.
    pub records: Vec<RunRecord>,
}

impl Report {
    /// An empty report.
    pub fn new(name: impl Into<String>, scale: u64) -> Report {
        Report {
            name: name.into(),
            scale,
            records: Vec::new(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the report has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append another report's records (metadata keeps `self`'s name).
    ///
    /// # Panics
    /// Panics if both reports carry records and their scales disagree —
    /// records from different scales describe different input/cache sizes
    /// and must not be silently pooled under one `scale` field.
    pub fn merge(&mut self, other: Report) {
        if self.records.is_empty() && self.scale == 0 {
            self.scale = other.scale;
        }
        assert!(
            other.records.is_empty() || self.scale == other.scale,
            "merging reports with different scales ({} vs {})",
            self.scale,
            other.scale
        );
        self.records.extend(other.records);
    }

    /// Records for one workload.
    pub fn for_workload<'a>(&'a self, workload: &'a str) -> impl Iterator<Item = &'a RunRecord> {
        self.records.iter().filter(move |r| r.workload == workload)
    }

    /// Records for one scheduler (registry name).
    pub fn for_scheduler<'a>(&'a self, scheduler: &'a str) -> impl Iterator<Item = &'a RunRecord> {
        self.records
            .iter()
            .filter(move |r| r.scheduler == scheduler)
    }

    /// The distinct workload names, sorted.
    pub fn workloads(&self) -> Vec<String> {
        let set: BTreeSet<_> = self.records.iter().map(|r| r.workload.clone()).collect();
        set.into_iter().collect()
    }

    /// The distinct scheduler names, sorted.
    pub fn schedulers(&self) -> Vec<String> {
        let set: BTreeSet<_> = self.records.iter().map(|r| r.scheduler.clone()).collect();
        set.into_iter().collect()
    }

    /// Serialise to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        Json::object([
            ("name", self.name.as_str().into()),
            ("scale", self.scale.into()),
            (
                "records",
                Json::Array(self.records.iter().map(RunRecord::to_json).collect()),
            ),
        ])
        .to_string_pretty()
    }

    /// Parse a report back from [`Report::to_json`] output.
    pub fn from_json(text: &str) -> Result<Report, JsonError> {
        let doc = json::parse(text)?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| field_error("name", "string"))?
            .to_string();
        let scale = doc
            .get("scale")
            .and_then(Json::as_u64)
            .ok_or_else(|| field_error("scale", "u64"))?;
        let records = doc
            .get("records")
            .and_then(Json::as_array)
            .ok_or_else(|| field_error("records", "array"))?
            .iter()
            .map(RunRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Report {
            name,
            scale,
            records,
        })
    }

    /// Write [`Report::to_json`] to a file.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Serialise all fields as CSV (header + one line per record).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "workload,config,cores,clusters,scheduler,seed,cycles,instructions,tasks,\
             l1_accesses,l1_misses,l2_accesses,l2_misses,l2_mpki,\
             l3_accesses,l3_misses,\
             bandwidth_utilization,off_chip_bytes,trace_bytes,\
             peak_alloc_estimate,compile_ms,batch_width,speedup_over_seq\n",
        );
        for r in &self.records {
            let seed = r.seed.map(|s| s.to_string()).unwrap_or_default();
            let speedup = r
                .speedup_over_seq
                .map(|s| format!("{s:.6}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{:.6},{},{},{},{:.3},{},{}\n",
                csv_escape(&r.workload),
                csv_escape(&r.config),
                r.cores,
                r.clusters,
                csv_escape(&r.scheduler),
                seed,
                r.cycles,
                r.instructions,
                r.tasks,
                r.l1_accesses,
                r.l1_misses,
                r.l2_accesses,
                r.l2_misses,
                r.l2_mpki,
                r.l3_accesses,
                r.l3_misses,
                r.bandwidth_utilization,
                r.off_chip_bytes,
                r.trace_bytes,
                r.peak_alloc_estimate,
                r.compile_ms,
                r.batch_width,
                speedup,
            ));
        }
        out
    }

    /// The standard tab-separated table the experiment binaries print — the
    /// same columns the seed harness used, one row per record.
    pub fn to_tsv(&self) -> String {
        let mut out =
            String::from("workload\tconfig\tcores\tsched\tcycles\tspeedup\tl2_mpki\tbw_util\n");
        for r in &self.records {
            let speedup = r
                .speedup_over_seq
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{:.4}\t{:.3}\n",
                r.workload,
                r.config,
                r.cores,
                r.scheduler_label(),
                r.cycles,
                speedup,
                r.l2_mpki,
                r.bandwidth_utilization,
            ));
        }
        out
    }
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(scheduler: &str, seed: Option<u64>) -> RunRecord {
        RunRecord {
            workload: "mergesort".into(),
            config: "default-8/64".into(),
            cores: 8,
            clusters: 1,
            scheduler: scheduler.into(),
            seed,
            cycles: 123_456_789,
            instructions: 987_654,
            tasks: 321,
            l1_accesses: 1_000_000,
            l1_misses: 50_000,
            l2_accesses: 50_000,
            l2_misses: 7_500,
            l2_mpki: 7.593,
            l3_accesses: 0,
            l3_misses: 0,
            bandwidth_utilization: 0.25,
            off_chip_bytes: 960_000,
            trace_bytes: 48_000,
            peak_alloc_estimate: 96_000,
            compile_ms: 0.0,
            batch_width: 0,
            speedup_over_seq: Some(5.5),
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut report = Report::new("fig2", 32);
        report.records.push(sample_record("pdf", None));
        report.records.push(sample_record("ws-rand", Some(7)));
        let mut no_baseline = sample_record("ws", None);
        no_baseline.speedup_over_seq = None;
        report.records.push(no_baseline);

        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn compile_ms_is_an_annotation_not_an_identity() {
        // Two records of the same simulated point must compare equal and
        // serialise identically even when their wall-clock compile costs
        // differ (one paid the compile, the other reused the memo) — the
        // byte-identity of reports across repeat/parallel/engine runs
        // depends on it.  The CSV, which carries no identity guarantee,
        // does include the column.
        let cold = sample_record("pdf", None)
            .with_compile_ms(12.5)
            .with_batch_width(9);
        let warm = sample_record("pdf", None).with_compile_ms(0.001);
        assert_eq!(cold, warm);
        let mut a = Report::new("x", 1);
        a.records.push(cold);
        let mut b = Report::new("x", 1);
        b.records.push(warm);
        assert_eq!(a.to_json(), b.to_json());
        assert!(!a.to_json().contains("compile_ms"));
        assert!(!a.to_json().contains("batch_width"));
        assert!(a.to_csv().starts_with("workload,"));
        assert!(a.to_csv().contains(",12.500,9,"));
        // Parsed records carry no annotations.
        let parsed = Report::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed.records[0].compile_ms, 0.0);
        assert_eq!(parsed.records[0].batch_width, 0);
    }

    #[test]
    fn csv_and_tsv_have_one_line_per_record_plus_header() {
        let mut report = Report::new("x", 1);
        report.records.push(sample_record("pdf", None));
        report.records.push(sample_record("ws-rand", Some(3)));
        assert_eq!(report.to_csv().lines().count(), 3);
        assert_eq!(report.to_tsv().lines().count(), 3);
        assert!(report.to_tsv().contains("ws-rand@3"));
        assert!(report.to_csv().starts_with("workload,"));
    }

    #[test]
    fn merge_concatenates_records() {
        let mut a = Report::new("all", 32);
        a.records.push(sample_record("pdf", None));
        let mut b = Report::new("other", 32);
        b.records.push(sample_record("ws", None));
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.name, "all");
        assert_eq!(a.schedulers(), vec!["pdf".to_string(), "ws".to_string()]);
    }

    #[test]
    fn filters_and_label() {
        let mut report = Report::new("x", 1);
        report.records.push(sample_record("pdf", None));
        report.records.push(sample_record("ws-rand", Some(9)));
        assert_eq!(report.for_scheduler("pdf").count(), 1);
        assert_eq!(report.for_workload("mergesort").count(), 2);
        assert_eq!(report.for_workload("lu").count(), 0);
        assert_eq!(report.records[1].scheduler_label(), "ws-rand@9");
        assert_eq!(report.workloads(), vec!["mergesort".to_string()]);
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        assert!(Report::from_json("{}").is_err());
        assert!(Report::from_json("not json").is_err());
        assert!(Report::from_json(r#"{"name": "x", "scale": 1, "records": [{}]}"#).is_err());
    }
}
