//! The unified experiment layer for the CCS reproduction — the canonical
//! entry point for running PDF-vs-WS comparisons across CMP design points.
//!
//! The paper's contribution is a *comparison harness*: schedulers swept over
//! workloads and design points, reported as figures.  This crate packages
//! that harness as a composable API:
//!
//! * [`Experiment`] — a builder describing a sweep (workloads × schedulers ×
//!   configurations, plus a scale divisor), whose [`Experiment::run`] fans
//!   the cross-product into measurements — across the `ccs-runtime`
//!   fork-join pool when [`Experiment::parallelism`] is raised, with
//!   deterministic record order either way;
//! * [`WorkloadSpec`] — a parseable "which workload" value
//!   (`"mergesort"`, `"matmul:n=512"`,
//!   `"heat:rows=1024,cols=1024,steps=8"`) resolved through the open
//!   [`WorkloadRegistry`](ccs_workloads::WorkloadRegistry), plus fixed
//!   caller-built computations;
//! * [`RunRecord`] / [`Report`] — one record per measured point, aggregated
//!   into a report with JSON/CSV/TSV emission and parsing
//!   ([`Report::to_json`] / [`Report::from_json`]);
//! * [`build_cache`] — the process-global, byte-bounded cache of built
//!   registry computations (and, through their memoisation, of every
//!   compiled line stream and geometry lane), shared across sweeps and
//!   repeat trials;
//! * [`canon`] — canonical run-point keys and their stable FNV-1a hash:
//!   the identity a [`RunRecord`] is a deterministic function of;
//! * [`ResultStore`] — the durable on-disk record memo keyed by those
//!   hashes, extending the build cache across processes and restarts (the
//!   `ccs-serve` daemon's persistent layer);
//! * [`Options`] — the command-line harness the experiment binaries share;
//! * [`json`] — the small self-contained JSON layer backing report
//!   serialisation (the offline stand-in for `serde_json`; see
//!   `shims/README.md`).
//!
//! Both axes are open: schedulers are identified by
//! [`SchedulerSpec`](ccs_sched::SchedulerSpec) registry names, and workloads
//! by [`WorkloadSpec`] registry names, so user-defined schedulers
//! (registered with
//! [`SchedulerRegistry::global`](ccs_sched::SchedulerRegistry::global)) and
//! user-defined workloads (registered with
//! [`WorkloadRegistry::global`](ccs_workloads::WorkloadRegistry::global))
//! participate in experiments exactly like the built-ins.
//!
//! # Quick start
//!
//! ```
//! use ccs_experiment::Experiment;
//! use ccs_sched::SchedulerKind;
//! use ccs_workloads::Benchmark;
//!
//! let report = Experiment::new(Benchmark::Mergesort)
//!     .cores(8)
//!     .scale(512)
//!     .schedulers([SchedulerKind::Pdf, SchedulerKind::WorkStealing])
//!     .run();
//!
//! // Machine-readable trajectory…
//! let json = report.to_json();
//! // …that parses back losslessly.
//! assert_eq!(ccs_experiment::Report::from_json(&json).unwrap(), report);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod build_cache;
pub mod canon;
pub mod experiment;
pub mod json;
pub mod options;
pub mod report;
pub mod result_store;

pub use experiment::{CoreSelection, Experiment, SweepPoint, WorkloadSpec};
pub use options::{Options, OptionsError};
pub use report::{Report, RunRecord};
pub use result_store::ResultStore;
