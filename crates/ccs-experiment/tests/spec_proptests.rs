//! Property tests for the shared spec-string grammar: formatting a workload
//! or scheduler spec and parsing it back is the identity, for arbitrary
//! names and parameter sets.

use ccs_experiment::WorkloadSpec;
use ccs_sched::spec::{format_spec, parse_spec, split_spec_list};
use ccs_sched::SchedulerSpec;
use proptest::prelude::*;

/// The word alphabet of the spec grammar (names, keys and values).
const WORD_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_.-/";

/// A distinct-key pool for parameter maps (duplicate keys are a parse
/// error, so the generator samples a subset of these).
const KEYS: [&str; 8] = [
    "n", "rows", "cols", "steps", "block", "ws", "split", "seed-ish",
];

fn word(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| WORD_CHARS[i % WORD_CHARS.len()] as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn workload_spec_format_parse_round_trips(
        name_idx in prop::collection::vec(0usize..40, 1..12),
        key_mask in 0u64..256,
        values in prop::collection::vec(0u64..1_000_000, 8..9),
    ) {
        let mut spec = WorkloadSpec::registry(word(&name_idx));
        for (bit, key) in KEYS.iter().enumerate() {
            if key_mask & (1 << bit) != 0 {
                spec = spec.with_param(*key, values[bit].to_string());
            }
        }
        let label = spec.label();
        let parsed = WorkloadSpec::parse(&label);
        prop_assert!(parsed.is_ok(), "label {label:?} failed to parse: {parsed:?}");
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &spec);
        // Formatting is canonical: parse → label is idempotent.
        prop_assert_eq!(parsed.label(), label);
    }

    #[test]
    fn raw_spec_format_parse_round_trips(
        name_idx in prop::collection::vec(0usize..40, 1..10),
        key_mask in 0u64..256,
        value_idx in prop::collection::vec(0usize..40, 1..6),
    ) {
        let name = word(&name_idx);
        let value = word(&value_idx);
        let params: Vec<(&str, &str)> = KEYS
            .iter()
            .enumerate()
            .filter(|(bit, _)| key_mask & (1 << bit) != 0)
            .map(|(_, k)| (*k, value.as_str()))
            .collect();
        let formatted = format_spec(&name, params.iter().copied());
        let parsed = parse_spec(&formatted);
        prop_assert!(parsed.is_ok(), "{formatted:?}: {parsed:?}");
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed.name, &name);
        let got: Vec<(&str, &str)> = parsed
            .params
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        prop_assert_eq!(got, params);
    }

    #[test]
    fn scheduler_spec_display_parse_round_trips(
        name_idx in prop::collection::vec(0usize..40, 1..10),
        seed in 0u64..1_000_000,
        with_seed in 0u64..2,
    ) {
        let mut spec = SchedulerSpec::new(word(&name_idx));
        if with_seed == 1 {
            spec = spec.with_seed(seed);
        }
        // Both the display form ("name@seed") and the grammar form
        // ("name:seed=N") parse back to the same spec.
        prop_assert_eq!(&SchedulerSpec::parse(&spec.to_string()).unwrap(), &spec);
        let grammar = match spec.params.seed {
            Some(s) => format!("{}:seed={s}", spec.name),
            None => spec.name.clone(),
        };
        prop_assert_eq!(&SchedulerSpec::parse(&grammar).unwrap(), &spec);
    }

    #[test]
    fn spec_lists_split_then_parse(
        count in 1usize..5,
        name_idx in prop::collection::vec(0usize..40, 1..6),
        key_mask in 0u64..256,
    ) {
        // A list of `count` copies of the same parameterised spec must split
        // back into `count` parseable segments regardless of param commas.
        let mut spec = WorkloadSpec::registry(word(&name_idx));
        for (bit, key) in KEYS.iter().enumerate() {
            if key_mask & (1 << bit) != 0 {
                spec = spec.with_param(*key, "17");
            }
        }
        let list = vec![spec.label(); count].join(",");
        let split = split_spec_list(&list);
        prop_assert!(split.len() == count, "{list:?} split into {split:?}");
        for part in &split {
            prop_assert_eq!(&WorkloadSpec::parse(part).unwrap(), &spec);
        }
    }
}
