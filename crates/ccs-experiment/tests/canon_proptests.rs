//! Property tests for the canonical run-point keys: the key — and therefore
//! the result store's hash — is a function of what a spec *means*, not how
//! it was spelled.  Parameter order, builder order vs. parse order, and the
//! display/grammar spellings of a scheduler seed must all collide.

use ccs_experiment::canon::{key_hash, record_key};
use ccs_experiment::WorkloadSpec;
use ccs_sched::SchedulerSpec;
use ccs_sim::{CmpConfig, SimEngine};
use proptest::prelude::*;

/// A distinct-key pool for parameter maps (duplicate keys are a parse
/// error, so the generator samples a subset of these).
const KEYS: [&str; 8] = [
    "n", "rows", "cols", "steps", "block", "ws", "split", "seed-ish",
];

/// Apply `params` to `spec` in the order given by `perm` (a Lehmer-style
/// index sequence: element `i` picks from the not-yet-used remainder).
fn with_params_in_order(
    mut spec: WorkloadSpec,
    params: &[(&str, String)],
    perm: &[usize],
) -> WorkloadSpec {
    let mut remaining: Vec<&(&str, String)> = params.iter().collect();
    for &index in perm {
        if remaining.is_empty() {
            break;
        }
        let (key, value) = remaining.remove(index % remaining.len());
        spec = spec.with_param(*key, value.clone());
    }
    for (key, value) in remaining {
        spec = spec.with_param(*key, value.clone());
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Two spellings of the same workload — parameters applied in two
    /// different orders, or round-tripped through the label grammar — hash
    /// to the same store key; and changing any single parameter changes it.
    #[test]
    fn canonical_key_is_param_order_invariant(
        key_mask in 1u64..256,
        values in prop::collection::vec(0u64..1_000_000, 8..9),
        perm_a in prop::collection::vec(0usize..8, 8..9),
        perm_b in prop::collection::vec(0usize..8, 8..9),
        seed in 0u64..1_000_000,
        scale in 1u64..4096,
    ) {
        let params: Vec<(&str, String)> = KEYS
            .iter()
            .enumerate()
            .filter(|(bit, _)| key_mask & (1 << bit) != 0)
            .map(|(bit, key)| (*key, values[bit].to_string()))
            .collect();
        let a = with_params_in_order(WorkloadSpec::registry("heat"), &params, &perm_a);
        let b = with_params_in_order(WorkloadSpec::registry("heat"), &params, &perm_b);
        // And a third spelling: through the parse grammar.
        let c = WorkloadSpec::parse(&a.label()).unwrap();

        let config = CmpConfig::default_with_cores(2).unwrap();
        let sched = SchedulerSpec::new("ws-rand").with_seed(seed);
        let key = |w: &WorkloadSpec| {
            record_key(&w.label(), &config, scale, SimEngine::EventDriven, &sched, true)
        };
        prop_assert_eq!(key(&a), key(&b));
        prop_assert_eq!(key(&a), key(&c));
        prop_assert_eq!(key_hash(&key(&a)), key_hash(&key(&b)));

        // Perturbing any one parameter value must move the key.
        for (bit, k) in KEYS.iter().enumerate() {
            if key_mask & (1 << bit) != 0 {
                let perturbed = a.clone().with_param(*k, (values[bit] + 1).to_string());
                prop_assert!(key(&a) != key(&perturbed), "param {} did not separate", k);
            }
        }
    }

    /// The scheduler's two spellings ("name@seed" display form vs.
    /// "name:seed=N" grammar form) resolve to the same spec and key, and
    /// the seed itself separates keys.
    #[test]
    fn scheduler_spellings_share_a_key(seed in 0u64..1_000_000) {
        let display = SchedulerSpec::parse(&format!("ws-rand@{seed}")).unwrap();
        let grammar = SchedulerSpec::parse(&format!("ws-rand:seed={seed}")).unwrap();
        let config = CmpConfig::default_with_cores(4).unwrap();
        let key = |s: &SchedulerSpec| {
            record_key("mergesort", &config, 64, SimEngine::EventDriven, s, false)
        };
        prop_assert_eq!(key(&display), key(&grammar));
        let other = SchedulerSpec::new("ws-rand").with_seed(seed + 1);
        prop_assert!(key(&display) != key(&other));
    }
}
