//! Simulation results and the metrics the paper reports.

use ccs_cache::{CacheStats, MemoryStats};

/// The outcome of one trace-driven CMP simulation.
///
/// `PartialEq` compares every field exactly (simulations are deterministic,
/// so even the derived `f64` metrics match bit-for-bit between runs); the
/// engine-equivalence tests rely on this to pin the event-driven core to the
/// reference cycle-stepper.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// Configuration name (e.g. `"default-16"`).
    pub config_name: String,
    /// Scheduler name (`"pdf"`, `"ws"`, ...).
    pub scheduler: String,
    /// Number of cores.
    pub num_cores: usize,
    /// Number of L2 clusters the cores were partitioned into (1 = one
    /// L2 shared by every core).
    pub clusters: usize,
    /// Execution time in cycles (completion of the last task).
    pub cycles: u64,
    /// Total instructions executed (all tasks).
    pub instructions: u64,
    /// Aggregated private-L1 statistics (summed over cores).
    pub l1: CacheStats,
    /// L2 statistics (summed over clusters when the L2 is clustered).
    pub l2: CacheStats,
    /// Shared-L3 statistics (all zeros when the configuration has no L3).
    pub l3: CacheStats,
    /// Off-chip memory statistics.
    pub memory: MemoryStats,
    /// Fraction of cycles the memory controller was busy (the paper's
    /// "memory bandwidth utilization").
    pub bandwidth_utilization: f64,
    /// Busy cycles per core (time between a task's dispatch and completion,
    /// including memory stalls).
    pub core_busy: Vec<u64>,
    /// Number of tasks executed.
    pub tasks: usize,
    /// L2 line size in bytes (for off-chip traffic accounting).
    pub l2_line_size: u64,
}

impl SimResult {
    /// L2 misses per 1000 instructions — the paper's main cache metric
    /// (Fig. 2 right-hand column, Fig. 6a).
    pub fn l2_mpki(&self) -> f64 {
        self.l2.misses_per_kilo_instruction(self.instructions)
    }

    /// L1 misses per 1000 instructions.
    pub fn l1_mpki(&self) -> f64 {
        self.l1.misses_per_kilo_instruction(self.instructions)
    }

    /// L3 misses per 1000 instructions (zero without an L3).
    pub fn l3_mpki(&self) -> f64 {
        self.l3.misses_per_kilo_instruction(self.instructions)
    }

    /// Off-chip traffic in bytes: line fills plus write-backs of the last
    /// cache level before memory.  An L3 that was never accessed is
    /// indistinguishable from no L3 here, but then the L2 saw no misses
    /// either and both readings are zero.
    pub fn off_chip_bytes(&self) -> u64 {
        if self.l3.accesses > 0 {
            (self.l3.misses + self.l3.writebacks) * self.l2_line_size
        } else {
            (self.l2.misses + self.l2.writebacks) * self.l2_line_size
        }
    }

    /// Speedup of this run over a (sequential) baseline run, computed from
    /// execution cycles (Fig. 2 left-hand column).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Relative speedup of this run over another run of the same workload
    /// (e.g. PDF over WS).
    pub fn relative_speedup(&self, other: &SimResult) -> f64 {
        self.speedup_over(other)
    }

    /// Average instructions per cycle over the whole chip.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Average core utilisation (busy fraction).
    pub fn core_utilization(&self) -> f64 {
        if self.cycles == 0 || self.num_cores == 0 {
            return 0.0;
        }
        let busy: u64 = self.core_busy.iter().sum();
        busy as f64 / (self.cycles as f64 * self.num_cores as f64)
    }

    /// Percentage reduction of L2 misses-per-instruction relative to another
    /// result (positive = this result misses less), as reported in
    /// Section 5.1 ("PDF reduces 13.2%–38.5% L2 misses per instruction
    /// compared to WS").
    pub fn mpki_reduction_vs(&self, other: &SimResult) -> f64 {
        let o = other.l2_mpki();
        if o == 0.0 {
            0.0
        } else {
            (o - self.l2_mpki()) / o * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(cycles: u64, instructions: u64, l2_misses: u64) -> SimResult {
        let mut l2 = CacheStats::default();
        for _ in 0..l2_misses {
            l2.record(false, false);
        }
        SimResult {
            config_name: "test".into(),
            scheduler: "pdf".into(),
            num_cores: 4,
            clusters: 1,
            cycles,
            instructions,
            l1: CacheStats::default(),
            l2,
            l3: CacheStats::default(),
            memory: MemoryStats::default(),
            bandwidth_utilization: 0.5,
            core_busy: vec![cycles / 2; 4],
            tasks: 10,
            l2_line_size: 128,
        }
    }

    #[test]
    fn mpki_and_speedup() {
        let a = result(1000, 100_000, 50);
        let b = result(2000, 100_000, 80);
        assert!((a.l2_mpki() - 0.5).abs() < 1e-12);
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-12);
        assert!((b.relative_speedup(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mpki_reduction() {
        let pdf = result(1000, 100_000, 60);
        let ws = result(1000, 100_000, 100);
        assert!((pdf.mpki_reduction_vs(&ws) - 40.0).abs() < 1e-9);
        assert_eq!(ws.mpki_reduction_vs(&result(1000, 100_000, 0)), 0.0);
    }

    #[test]
    fn off_chip_traffic_and_utilisation() {
        let r = result(1000, 50_000, 10);
        assert_eq!(r.off_chip_bytes(), 10 * 128);
        assert!((r.ipc() - 50.0).abs() < 1e-12);
        assert!((r.core_utilization() - 0.5).abs() < 1e-12);
    }
}
