//! The trace-driven, cycle-level CMP simulator (Section 4.1).
//!
//! The machine model follows Table 1: single-threaded in-order scalar cores
//! (one instruction per cycle), private L1 caches, a shared L2, and an
//! off-chip memory with fixed latency and bounded bandwidth.  Execution is
//! trace-driven: every task carries its memory-reference trace, and the
//! simulator interleaves the per-core traces cycle-accurately while a
//! [`Scheduler`] decides which task each core runs next — exactly the
//! methodology of the paper ("executing the DAG on the simulated CMP in
//! accordance with the scheduler").
//!
//! Timing model per memory reference:
//!
//! 1. the preceding compute instructions retire at 1 instruction/cycle;
//! 2. the L1 is probed (its hit latency is charged always; an L1 hit
//!    completes the reference);
//! 3. on an L1 miss the shared L2 is probed after the L2 hit latency;
//! 4. on an L2 miss a request is issued to the memory controller, which
//!    accepts at most one request per `service_interval` cycles (queueing
//!    delay) and returns data `latency` cycles after accepting it.
//!
//! Simplifications (documented in DESIGN.md): misses allocate immediately
//! (no MSHR modelling), the L2 is not strictly inclusive of the L1s, and
//! coherence is modelled as write-invalidation of remote L1 copies with no
//! timing cost.  These choices do not affect the L2 miss counts that drive
//! the paper's results.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ccs_cache::{MainMemory, SetAssocCache};
use ccs_dag::{AccessKind, Computation, Dag, TaskId};
use ccs_sched::{Scheduler, SchedulerSpec};

use crate::config::CmpConfig;
use crate::metrics::SimResult;

/// What a core is currently doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Ready to start (or continue) the current op of the current task.
    NextOp,
    /// An L1 miss is probing the shared L2; resolves at the core's `time`.
    L2Probe { line: u64, is_write: bool },
    /// An L2 miss is waiting for main memory; data arrives at the core's
    /// `time`.
    MemFill { line: u64, is_write: bool },
}

#[derive(Clone, Debug)]
struct Core {
    task: Option<TaskId>,
    /// Index of the current trace op.
    op_idx: usize,
    /// Index of the current line within the current op (for references that
    /// straddle cache lines).
    line_idx: u64,
    phase: Phase,
    /// The next simulation time this core needs attention.
    time: u64,
    /// When the current task was dispatched.
    task_started: u64,
    busy: u64,
}

impl Core {
    fn new() -> Self {
        Core {
            task: None,
            op_idx: 0,
            line_idx: 0,
            phase: Phase::NextOp,
            time: 0,
            task_started: 0,
            busy: 0,
        }
    }
}

/// Run `comp` on the CMP described by `config` under the selected scheduler.
///
/// The scheduler is resolved through the [global
/// registry](ccs_sched::SchedulerRegistry::global): pass a
/// [`SchedulerKind`](ccs_sched::SchedulerKind), a registered name (`"pdf"`),
/// or a full [`SchedulerSpec`] — user-registered schedulers work unmodified.
pub fn simulate(
    comp: &Computation,
    config: &CmpConfig,
    sched: impl Into<SchedulerSpec>,
) -> SimResult {
    let dag = Dag::from_computation(comp);
    let mut sched = sched.into().build();
    simulate_with(comp, &dag, config, sched.as_mut())
}

/// Run `comp` (with its pre-built `dag`) under an externally constructed
/// scheduler.
pub fn simulate_with(
    comp: &Computation,
    dag: &Dag,
    config: &CmpConfig,
    sched: &mut dyn Scheduler,
) -> SimResult {
    let p = config.num_cores;
    assert!(p > 0, "need at least one core");
    let n = comp.num_tasks();
    let line_size = config.l2.line_size;
    assert_eq!(
        config.l1.line_size, line_size,
        "L1 and L2 must use the same line size"
    );

    let mut l1s: Vec<SetAssocCache> = (0..p).map(|_| SetAssocCache::new(config.l1)).collect();
    let mut l2 = SetAssocCache::new(config.l2);
    let mut memory = MainMemory::new(config.memory);

    let mut cores: Vec<Core> = (0..p).map(|_| Core::new()).collect();
    let mut in_deg: Vec<u32> = (0..n as u32)
        .map(|t| dag.in_degree(TaskId(t)) as u32)
        .collect();
    let mut completed = 0usize;

    sched.init(dag, p);
    // Roots and newly-ready siblings are enabled in *reverse* sequential
    // order so deque-based schedulers, which push each enabled task on top,
    // end up with the earliest-sequential task on top (the order a work-first
    // fork-join runtime reaches them).
    let mut roots: Vec<TaskId> = dag.sources();
    roots.sort_by_key(|t| std::cmp::Reverse(dag.seq_rank(*t)));
    for r in roots {
        sched.task_enabled(r, None);
    }

    // Cores with work in flight, keyed by (time, core id) for deterministic
    // ordering.  Idle cores are tracked separately and woken on completions.
    let mut active: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut idle: Vec<usize> = Vec::new();

    // Dispatch as much ready work as possible at `now`, preferring `first`.
    fn dispatch(
        now: u64,
        first: Option<usize>,
        sched: &mut dyn Scheduler,
        cores: &mut [Core],
        idle: &mut Vec<usize>,
        active: &mut BinaryHeap<Reverse<(u64, usize)>>,
    ) {
        idle.sort_unstable();
        if let Some(f) = first {
            if let Some(pos) = idle.iter().position(|&c| c == f) {
                idle.remove(pos);
                idle.insert(0, f);
            }
        }
        let mut i = 0;
        while i < idle.len() {
            if sched.ready_count() == 0 {
                break;
            }
            let core_id = idle[i];
            match sched.next_task(core_id) {
                Some(task) => {
                    idle.remove(i);
                    let core = &mut cores[core_id];
                    core.task = Some(task);
                    core.op_idx = 0;
                    core.line_idx = 0;
                    core.phase = Phase::NextOp;
                    core.time = now;
                    core.task_started = now;
                    active.push(Reverse((now, core_id)));
                }
                None => {
                    i += 1;
                }
            }
        }
    }

    // Initial dispatch at time 0.
    idle.extend(0..p);
    dispatch(0, None, sched, &mut cores, &mut idle, &mut active);

    let mut makespan = 0u64;

    while completed < n {
        let Reverse((now, core_id)) = active
            .pop()
            .expect("simulator deadlock: tasks remain but no core is active");
        makespan = makespan.max(now);
        let core = &mut cores[core_id];
        debug_assert_eq!(core.time, now);
        let task_id = core.task.expect("active core without a task");
        let trace = &comp.task(task_id).trace;

        match core.phase {
            Phase::NextOp => {
                if core.op_idx < trace.ops().len() {
                    let op = &trace.ops()[core.op_idx];
                    if core.line_idx == 0 {
                        // Charge the compute preceding this reference once.
                        core.time += op.pre_compute as u64;
                    }
                    let first_line = op.mem.addr & !(line_size - 1);
                    let last_line =
                        (op.mem.addr + op.mem.size.max(1) as u64 - 1) & !(line_size - 1);
                    let num_lines = (last_line - first_line) / line_size + 1;
                    let line = first_line + core.line_idx * line_size;
                    let is_write = op.mem.kind.is_write();
                    // L1 probe (always pays the L1 hit latency).
                    core.time += config.l1.hit_latency;
                    let l1_hit = l1s[core_id].access_line(line, op.mem.kind).hit;
                    if is_write {
                        // Write-invalidate the line in every other L1.
                        for (other, l1) in l1s.iter_mut().enumerate() {
                            if other != core_id {
                                l1.invalidate_line(line);
                            }
                        }
                    }
                    if l1_hit {
                        core.line_idx += 1;
                        if core.line_idx == num_lines {
                            core.line_idx = 0;
                            core.op_idx += 1;
                        }
                        // stay in NextOp
                    } else {
                        core.phase = Phase::L2Probe { line, is_write };
                        core.time += config.l2.hit_latency;
                    }
                    active.push(Reverse((core.time, core_id)));
                } else {
                    // Task body finished: trailing compute, then completion.
                    core.time += trace.post_compute();
                    let finish = core.time;
                    makespan = makespan.max(finish);
                    core.busy += finish - core.task_started;
                    core.task = None;
                    completed += 1;
                    // Enable newly ready successors in reverse sequential
                    // order (see the root-enabling comment above).
                    let mut newly: Vec<TaskId> = Vec::new();
                    for &s in dag.successors(task_id) {
                        in_deg[s.index()] -= 1;
                        if in_deg[s.index()] == 0 {
                            newly.push(s);
                        }
                    }
                    newly.sort_by_key(|t| std::cmp::Reverse(dag.seq_rank(*t)));
                    for s in newly {
                        sched.task_enabled(s, Some(core_id));
                    }
                    idle.push(core_id);
                    dispatch(
                        finish,
                        Some(core_id),
                        sched,
                        &mut cores,
                        &mut idle,
                        &mut active,
                    );
                }
            }
            Phase::L2Probe { line, is_write } => {
                let kind = if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let hit = l2.access_line(line, kind).hit;
                if hit {
                    l1s[core_id].fill_line(line, is_write);
                    core.advance_line(trace, line_size);
                    core.phase = Phase::NextOp;
                    active.push(Reverse((core.time, core_id)));
                } else {
                    let done = memory.request(core.time);
                    core.time = done;
                    core.phase = Phase::MemFill { line, is_write };
                    active.push(Reverse((core.time, core_id)));
                }
            }
            Phase::MemFill { line, is_write } => {
                // Data returned: fill the private L1 (the shared L2 was
                // already allocated when the miss was detected).
                l1s[core_id].fill_line(line, is_write);
                core.advance_line(trace, line_size);
                core.phase = Phase::NextOp;
                active.push(Reverse((core.time, core_id)));
            }
        }
    }

    let mut l1_total = ccs_cache::CacheStats::default();
    for l1 in &l1s {
        l1_total.merge(l1.stats());
    }

    SimResult {
        config_name: config.name.clone(),
        scheduler: sched.name().to_string(),
        num_cores: p,
        cycles: makespan,
        instructions: comp.total_work(),
        l1: l1_total,
        l2: *l2.stats(),
        memory: *memory.stats(),
        bandwidth_utilization: memory.utilization(makespan),
        core_busy: cores.iter().map(|c| c.busy).collect(),
        tasks: n,
        l2_line_size: line_size,
    }
}

impl Core {
    /// Advance past the line just serviced, moving to the next line of the
    /// same reference or to the next op.
    fn advance_line(&mut self, trace: &ccs_dag::TaskTrace, line_size: u64) {
        let op = &trace.ops()[self.op_idx];
        let first_line = op.mem.addr & !(line_size - 1);
        let last_line = (op.mem.addr + op.mem.size.max(1) as u64 - 1) & !(line_size - 1);
        let num_lines = (last_line - first_line) / line_size + 1;
        self.line_idx += 1;
        if self.line_idx >= num_lines {
            self.line_idx = 0;
            self.op_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::{ComputationBuilder, GroupMeta};
    use ccs_sched::SchedulerKind;

    /// A computation of `width` strands each streaming over its own
    /// `bytes_per_task`-byte array, followed by a join strand.
    fn disjoint_streams(width: usize, bytes_per_task: u64) -> Computation {
        let mut b = ComputationBuilder::new(128);
        let mut space = ccs_dag::AddressSpace::new();
        let leaves: Vec<_> = (0..width)
            .map(|_| {
                let region = space.alloc(bytes_per_task);
                b.strand_with(|t| {
                    t.read_range(region.base, region.bytes, 3);
                })
            })
            .collect();
        let par = b.par(leaves, GroupMeta::labeled("streams"));
        let join = b.strand_with(|t| {
            t.compute(10);
        });
        let root = b.seq(vec![par, join], GroupMeta::labeled("root"));
        b.finish(root)
    }

    /// A computation where every strand re-reads the same shared array.
    fn shared_streams(width: usize, bytes: u64) -> Computation {
        let mut b = ComputationBuilder::new(128);
        let mut space = ccs_dag::AddressSpace::new();
        let region = space.alloc(bytes);
        let leaves: Vec<_> = (0..width)
            .map(|_| {
                b.strand_with(|t| {
                    t.read_range(region.base, region.bytes, 3);
                })
            })
            .collect();
        let par = b.par(leaves, GroupMeta::labeled("shared"));
        let comp_root = b.seq(vec![par], GroupMeta::labeled("root"));
        b.finish(comp_root)
    }

    fn tiny_config(cores: usize, l2_kb: u64) -> CmpConfig {
        let mut cfg = CmpConfig::default_with_cores(if cores <= 1 { 1 } else { 16 }).unwrap();
        cfg.num_cores = cores;
        cfg.name = format!("tiny-{cores}");
        cfg.l1 = ccs_cache::CacheConfig::new(4 * 1024, 128, 4, 1);
        cfg.l2 = ccs_cache::CacheConfig::new(l2_kb * 1024, 128, 16, 13);
        cfg
    }

    #[test]
    fn single_core_executes_all_instructions() {
        let comp = disjoint_streams(4, 16 * 1024);
        let cfg = tiny_config(1, 64);
        let r = simulate(&comp, &cfg, SchedulerKind::Pdf);
        assert_eq!(r.instructions, comp.total_work());
        assert_eq!(r.tasks, comp.num_tasks());
        // Every cycle accounted: cycles >= instructions (1 IPC peak).
        assert!(r.cycles >= r.instructions);
        assert!(r.l2.misses > 0, "cold misses must reach memory");
        assert_eq!(r.l2.misses, r.memory.requests);
    }

    #[test]
    fn parallel_run_is_faster_but_not_superlinear() {
        let comp = disjoint_streams(8, 8 * 1024);
        let seq = simulate(&comp, &tiny_config(1, 512), SchedulerKind::Pdf);
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
            let par = simulate(&comp, &tiny_config(4, 512), kind);
            let speedup = par.speedup_over(&seq);
            assert!(speedup > 1.5, "{kind}: speedup {speedup}");
            assert!(speedup < 4.5, "{kind}: speedup {speedup} super-linear");
        }
    }

    #[test]
    fn schedulers_execute_same_work_with_same_total_references() {
        let comp = disjoint_streams(6, 4 * 1024);
        let cfg = tiny_config(3, 128);
        let pdf = simulate(&comp, &cfg, SchedulerKind::Pdf);
        let ws = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
        assert_eq!(pdf.instructions, ws.instructions);
        assert_eq!(pdf.l1.accesses, ws.l1.accesses);
        assert_eq!(pdf.tasks, ws.tasks);
    }

    #[test]
    fn shared_working_set_hits_in_l2() {
        // 8 tasks re-reading one 32 KB array on a 256 KB L2: after the cold
        // pass everything hits in L2 (or L1).
        let comp = shared_streams(8, 32 * 1024);
        let cfg = tiny_config(4, 256);
        let r = simulate(&comp, &cfg, SchedulerKind::Pdf);
        let cold = 32 * 1024 / 128;
        assert_eq!(r.l2.misses, cold, "only compulsory misses expected");
    }

    #[test]
    fn disjoint_working_sets_thrash_small_l2() {
        // 8 tasks × 32 KB each = 256 KB aggregate on a 64 KB L2: running them
        // in parallel with disjoint working sets must miss far more than the
        // shared case.
        let comp = disjoint_streams(8, 32 * 1024);
        let cfg = tiny_config(4, 64);
        let r = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
        let cold = 8 * 32 * 1024 / 128;
        assert!(r.l2.misses >= cold, "at least all compulsory misses");
    }

    #[test]
    fn memory_bandwidth_utilization_is_bounded() {
        let comp = disjoint_streams(8, 16 * 1024);
        let cfg = tiny_config(8, 64);
        let r = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
        assert!(r.bandwidth_utilization > 0.0);
        assert!(r.bandwidth_utilization <= 1.0);
        assert!(r.core_utilization() <= 1.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let comp = disjoint_streams(5, 8 * 1024);
        let cfg = tiny_config(3, 128);
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
            let a = simulate(&comp, &cfg, kind);
            let b = simulate(&comp, &cfg, kind);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.l2.misses, b.l2.misses);
        }
    }

    #[test]
    fn zero_reference_tasks_complete() {
        let mut b = ComputationBuilder::new(128);
        let l = b.strand_with(|t| {
            t.compute(100);
        });
        let r2 = b.nop();
        let p = b.par(vec![l, r2], GroupMeta::default());
        let comp = b.finish(p);
        let cfg = tiny_config(2, 64);
        let r = simulate(&comp, &cfg, SchedulerKind::Pdf);
        assert_eq!(r.tasks, 2);
        assert_eq!(r.cycles, 100);
    }

    #[test]
    fn more_cores_than_tasks_is_fine() {
        let comp = disjoint_streams(2, 4 * 1024);
        let cfg = tiny_config(8, 128);
        let r = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
        assert_eq!(r.tasks, 3);
        assert!(r.cycles > 0);
    }
}
