//! The trace-driven, event-driven CMP simulator (Section 4.1).
//!
//! The machine model follows Table 1: single-threaded in-order scalar cores
//! (one instruction per cycle), private L1 caches, a shared L2, and an
//! off-chip memory with fixed latency and bounded bandwidth.  Execution is
//! trace-driven: every task carries its memory-reference trace, and the
//! simulator interleaves the per-core traces cycle-accurately while a
//! [`Scheduler`] decides which task each core runs next — exactly the
//! methodology of the paper ("executing the DAG on the simulated CMP in
//! accordance with the scheduler").
//!
//! Timing model per memory reference:
//!
//! 1. the preceding compute instructions retire at 1 instruction/cycle;
//! 2. the L1 is probed (its hit latency is charged always; an L1 hit
//!    completes the reference);
//! 3. on an L1 miss the shared L2 is probed after the L2 hit latency;
//! 4. on an L2 miss a request is issued to the memory controller, which
//!    accepts at most one request per `service_interval` cycles (queueing
//!    delay) and returns data `latency` cycles after accepting it.
//!
//! # Engines
//!
//! Two engines implement this model (selected by [`SimEngine`]):
//!
//! * the **event-driven** production engine (this module): a min-heap of
//!   `(ready_time, core)` events orders the cores, and the core at the head
//!   keeps executing micro-steps *inline* — jumping its local clock forward
//!   over compute runs and L1 hits — for as long as it remains the globally
//!   earliest event.  The heap is only touched when another core's pending
//!   event sorts first, so the common case (a core streaming through L1
//!   hits, or any single-core run) costs zero heap traffic.  Stores
//!   invalidate remote L1 copies through a flat line-id-indexed sharer
//!   directory in `O(sharers)` instead of broadcasting to all `p` L1s.
//!   Traces are consumed through
//!   the computation's precompiled [`LineStream`]: addresses are resolved
//!   to dense line ids once per `(computation, line size)` pair and the hot
//!   loop iterates flat `u32` lanes — no per-access line masking, straddle
//!   division or per-task pointer chasing — with a one-entry **MRU line
//!   filter** in front of each L1 (a read of the line a core touched last
//!   is a guaranteed hit on the MRU way, a state no-op that only the
//!   statistics need to see; see DESIGN.md §8).  The cache hierarchy
//!   itself is **id-native**: per-geometry [`GeometryLanes`] compiled on
//!   the stream map each line id straight to its L1/L2 set index, line ids
//!   double as `u32` cache tags, and the L1s/L2 are
//!   [`CompiledCache`]s probed by `(set, tag)` — the hot loop never
//!   materialises an address (DESIGN.md §9);
//! * the **reference** cycle-stepper (`reference` module): the seed loop,
//!   one heap round-trip per micro-step and a broadcast per store, retained
//!   as the executable specification (it reads per-task [`TaskTrace`]s
//!   materialised from the pool through a thin adapter);
//! * the **batched** multi-config engine ([`crate::batch`]): configurations
//!   differing only in latencies share one recorded event-engine pass and
//!   are re-timed per configuration where the schedule is provably
//!   latency-independent (single core), falling back to full event runs
//!   otherwise.  A single-config `SimEngine::Batch` run *is* the event
//!   engine.
//!
//! [`LineStream`]: ccs_dag::LineStream
//! [`GeometryLanes`]: ccs_dag::GeometryLanes
//! [`CompiledCache`]: ccs_cache::CompiledCache
//! [`TaskTrace`]: ccs_dag::TaskTrace
//!
//! The two engines are *metrics-identical* — same cycles, same hit/miss/
//! eviction counts — for every computation, configuration and scheduler;
//! see DESIGN.md §7 for the argument and `tests/engine_equivalence.rs` for
//! the property pinning it.
//!
//! Simplifications (documented in DESIGN.md): misses allocate immediately
//! (no MSHR modelling), the L2 is not strictly inclusive of the L1s, and
//! coherence is modelled as write-invalidation of remote L1 copies with no
//! timing cost.  These choices do not affect the L2 miss counts that drive
//! the paper's results.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ccs_cache::{line_tag, CompiledCache, MainMemory};
use ccs_dag::stream::{PairedSetLanes, TripleSetLanes};
use ccs_dag::{CacheGeometry, Computation, Dag, LineStream, TaskId, STEP_ID_MASK, STEP_WRITE_BIT};
use ccs_sched::{Scheduler, SchedulerSpec};

use crate::config::CmpConfig;
use crate::metrics::SimResult;

/// Which simulator engine to run.
///
/// All engines implement the identical machine model and report identical
/// metrics; they differ only in wall-clock cost.  The CLI form (accepted by
/// `--engine`) is `"event"` / `"reference"` / `"batch"`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimEngine {
    /// The production engine: event-heap time jumps, inline micro-step
    /// batching, directory-based invalidation.
    #[default]
    EventDriven,
    /// The retained seed loop: one heap round-trip per micro-step, broadcast
    /// invalidation.  Slow; kept as the executable specification for
    /// equivalence tests and as a `--engine reference` escape hatch.
    Reference,
    /// The batched multi-config engine ([`crate::batch`]): sweep points
    /// differing only in latencies share one recorded event-engine pass and
    /// are re-timed per configuration.  A single-config run is exactly the
    /// event engine; the experiment layer groups points before dispatching.
    Batch,
}

impl SimEngine {
    /// The CLI name (`"event"` / `"reference"` / `"batch"`).
    pub fn name(self) -> &'static str {
        match self {
            SimEngine::EventDriven => "event",
            SimEngine::Reference => "reference",
            SimEngine::Batch => "batch",
        }
    }

    /// The engine whose *results* this engine reproduces byte for byte.
    /// `Batch` is a scheduling strategy over the event engine, not a
    /// different simulator, so canonical run-point keys (and therefore the
    /// result store) fold it onto `EventDriven` — a batched record and an
    /// event record of the same point are interchangeable by construction.
    pub fn canonical(self) -> SimEngine {
        match self {
            SimEngine::Batch => SimEngine::EventDriven,
            other => other,
        }
    }
}

impl std::fmt::Display for SimEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SimEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<SimEngine, String> {
        match s {
            "event" | "event-driven" => Ok(SimEngine::EventDriven),
            "reference" | "ref" | "cycle-stepped" => Ok(SimEngine::Reference),
            "batch" | "batched" => Ok(SimEngine::Batch),
            other => Err(format!("unknown engine {other:?} (event|reference|batch)")),
        }
    }
}

/// Observation hooks of the event engine, used by the batched engine
/// ([`crate::batch`]) to record one pass for replay.
///
/// The engine is generic over the recorder and the no-op implementation
/// ([`NoRecord`]) inlines to nothing, so the plain [`simulate`] path
/// monomorphises to exactly the uninstrumented hot loop.
pub(crate) trait Record {
    /// A task was handed to a core (in dispatch order — on one core this is
    /// the execution order).
    fn task_dispatched(&mut self, task: TaskId);
    /// An L1 miss probed the shared L2 at stream step `step`; `l2_hit` says
    /// whether it was served there or went to main memory.
    fn l1_miss(&mut self, step: usize, l2_hit: bool);
}

/// The recorder of the plain (non-batched) engine: records nothing.
pub(crate) struct NoRecord;

impl Record for NoRecord {
    #[inline(always)]
    fn task_dispatched(&mut self, _task: TaskId) {}
    #[inline(always)]
    fn l1_miss(&mut self, _step: usize, _l2_hit: bool) {}
}

/// What a core is currently doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Ready to start (or continue) the current step of the current task.
    NextOp,
    /// An L1 miss is probing the (cluster's) L2; resolves at the core's
    /// `time`.
    L2Probe { id: u32, is_write: bool },
    /// An L2 miss is probing the shared L3 (three-level hierarchies only);
    /// resolves at the core's `time`.
    L3Probe { id: u32, is_write: bool },
    /// A last-level miss is waiting for main memory; data arrives at the
    /// core's `time`.
    MemFill { id: u32, is_write: bool },
}

/// The event engine's sharer-tracking structure, picked by core count (see
/// DESIGN.md §8 and §12).  All variants maintain the same one-directional
/// invariant — core `c`'s L1 holds a line ⇒ the line's mask has `c`'s bit —
/// and tolerate stale bits, so they are interchangeable metrics-wise; they
/// differ only in the cost of a store.
enum Directory {
    /// One core: no remote copy can exist, so fills and stores skip the
    /// directory entirely.
    Single,
    /// 2–64 cores: one sharer word per line id, indexed flat.
    Flat(Vec<u64>),
    /// 65–[`ccs_cache::directory::MAX_DIRECTORY_CORES`] cores: per line id,
    /// a *summary word* (bit `w` = "core word `w` is non-zero") followed by
    /// `ceil(p/64)` core words.  A store walks only the set summary bits
    /// and the set core bits, keeping invalidation `O(sharers)` instead of
    /// the former `O(p)` broadcast.
    Hier {
        /// Words per line: `1 + ceil(p/64)`.
        stride: usize,
        words: Vec<u64>,
    },
    /// Wider than the hierarchical mask supports: broadcast every store to
    /// all other L1s (the pre-§12 fallback, now effectively unreachable
    /// below 4097 cores).
    Broadcast,
}

#[derive(Clone, Copy, Debug)]
struct Core {
    task: Option<TaskId>,
    /// Index of the current step in the precompiled line stream.
    step: usize,
    phase: Phase,
    /// The next simulation time this core needs attention.
    time: u64,
    /// When the current task was dispatched.
    task_started: u64,
    busy: u64,
}

impl Core {
    fn new() -> Self {
        Core {
            task: None,
            step: 0,
            phase: Phase::NextOp,
            time: 0,
            task_started: 0,
            busy: 0,
        }
    }
}

/// Run `comp` on the CMP described by `config` under the selected scheduler,
/// using the default (event-driven) engine.
///
/// The scheduler is resolved through the [global
/// registry](ccs_sched::SchedulerRegistry::global): pass a
/// [`SchedulerKind`](ccs_sched::SchedulerKind), a registered name (`"pdf"`),
/// or a full [`SchedulerSpec`] — user-registered schedulers work unmodified.
pub fn simulate(
    comp: &Computation,
    config: &CmpConfig,
    sched: impl Into<SchedulerSpec>,
) -> SimResult {
    simulate_engine(comp, config, sched, SimEngine::default())
}

/// [`simulate`], with an explicit engine choice.
pub fn simulate_engine(
    comp: &Computation,
    config: &CmpConfig,
    sched: impl Into<SchedulerSpec>,
    engine: SimEngine,
) -> SimResult {
    let dag = Dag::from_computation(comp);
    let mut sched = sched.into().build();
    simulate_with_engine(comp, &dag, config, sched.as_mut(), engine)
}

/// Run `comp` (with its pre-built `dag`) under an externally constructed
/// scheduler, using the default (event-driven) engine.
pub fn simulate_with(
    comp: &Computation,
    dag: &Dag,
    config: &CmpConfig,
    sched: &mut dyn Scheduler,
) -> SimResult {
    simulate_with_engine(comp, dag, config, sched, SimEngine::default())
}

/// [`simulate_with`], with an explicit engine choice.
pub fn simulate_with_engine(
    comp: &Computation,
    dag: &Dag,
    config: &CmpConfig,
    sched: &mut dyn Scheduler,
    engine: SimEngine,
) -> SimResult {
    match engine {
        SimEngine::EventDriven => event_driven(comp, dag, config, sched),
        SimEngine::Reference => crate::reference::simulate_reference(comp, dag, config, sched),
        // A batch of one is the event engine; multi-config batches enter
        // through `crate::batch::simulate_batch`, which owns the grouping.
        SimEngine::Batch => event_driven(comp, dag, config, sched),
    }
}

/// The event-driven production engine.
///
/// Ordering invariant: micro-steps are applied in exactly the ascending
/// `(time, core)` order of the reference cycle-stepper.  Pending events
/// live in a `(time, core)` min-heap that is touched once per *park*, not
/// once per micro-step, and the heap top after each pop is the earliest
/// *other* pending event — which makes the continuation check a single
/// comparison: the running core keeps stepping inline while
/// `(core.time, core_id)` sorts before that frozen top, which cannot
/// change while the core runs (other cores only mutate state when they
/// themselves are stepped).  That is precisely the condition under which
/// the reference would pop this same continuation event next, so shared
/// state (L2, memory controller, remote-L1 invalidations) is touched in an
/// identical sequence and the two engines are metrics-identical by
/// construction.
///
/// Traces are consumed through the computation's precompiled
/// [`LineStream`]: each core walks a contiguous `u32` window of
/// line-granular steps, so the per-access work is three streaming lane
/// loads plus the cache probes — the line masking, straddle division and
/// per-task `Vec` indirection of the seed are all gone from the hot loop.
fn event_driven(
    comp: &Computation,
    dag: &Dag,
    config: &CmpConfig,
    sched: &mut dyn Scheduler,
) -> SimResult {
    event_driven_rec(comp, dag, config, sched, &mut NoRecord)
}

/// [`event_driven`], generic over a [`Record`] observer.  With [`NoRecord`]
/// this monomorphises to the uninstrumented engine; the batched engine
/// passes a tape recorder to capture the dispatch and miss sequence of one
/// pass for per-config re-timing.
pub(crate) fn event_driven_rec<R: Record>(
    comp: &Computation,
    dag: &Dag,
    config: &CmpConfig,
    sched: &mut dyn Scheduler,
    rec: &mut R,
) -> SimResult {
    // Monomorphise the hot loop per hierarchy depth: the two-level variant
    // compiles to exactly the pre-L3 engine (paired lanes, no L3 branch in
    // any path), the three-level variant decodes the triple lanes and
    // probes the L3 between an L2 miss and memory.
    if config.l3.is_some() {
        event_loop::<R, true>(comp, dag, config, sched, rec)
    } else {
        event_loop::<R, false>(comp, dag, config, sched, rec)
    }
}

/// The engine body, monomorphised over `HAS_L3` (see [`event_driven_rec`]).
fn event_loop<R: Record, const HAS_L3: bool>(
    comp: &Computation,
    dag: &Dag,
    config: &CmpConfig,
    sched: &mut dyn Scheduler,
    rec: &mut R,
) -> SimResult {
    let p = config.num_cores;
    assert!(p > 0, "need at least one core");
    debug_assert_eq!(config.l3.is_some(), HAS_L3);
    let clusters = config.clusters;
    assert!(
        clusters >= 1 && p.is_multiple_of(clusters),
        "{p} cores cannot be split into {clusters} equal clusters"
    );
    let cores_per_cluster = p / clusters;
    let n = comp.num_tasks();
    let line_size = config.l2.line_size;
    assert_eq!(
        config.l1.line_size, line_size,
        "L1 and L2 must use the same line size"
    );
    // Resolve addresses to dense line ids once per (computation, line
    // size); every simulation of this sweep point shares the compiled
    // stream through the computation's cache.
    let stream_arc = comp.line_stream(line_size);
    let stream: &LineStream = &stream_arc;
    let stream_packed = stream.packed();
    // Geometry-compiled lanes: line id → packed set indices, one table per
    // distinct geometry tuple, memoised on the stream so every scheduler ×
    // core-count point of a sweep shares it.  Together with the id-as-tag
    // convention (`line_tag`) the hot loop below never touches a 64-bit
    // address: probes are (u32 set, u32 tag) pairs, and the lower-level
    // sets ride in the high bits of the word the L1 probe already loaded —
    // an L1 (or L2) miss costs no extra lane traffic.  Two-level machines
    // use the full-width [`PairedSetLanes`]; an L3 re-cuts the word into
    // three fields ([`TripleSetLanes`], DESIGN.md §12).
    let l1_geometry = CacheGeometry::new(line_size, config.l1.num_sets());
    let l2_geometry = CacheGeometry::new(line_size, config.l2.num_sets());
    let (pair_lanes, triple_lanes) = if HAS_L3 {
        let l3_cfg = config.l3.as_ref().expect("HAS_L3 implies an L3 config");
        assert_eq!(
            l3_cfg.line_size, line_size,
            "L3 must use the same line size as the L2"
        );
        let triple = stream.geometry_triple(
            l1_geometry,
            l2_geometry,
            CacheGeometry::new(line_size, l3_cfg.num_sets()),
        );
        (None, Some(triple))
    } else {
        (Some(stream.geometry_pair(l1_geometry, l2_geometry)), None)
    };
    let set_lane: &[u64] = match (&pair_lanes, &triple_lanes) {
        (Some(pair), None) => pair.packed(),
        (None, Some(triple)) => triple.packed(),
        _ => unreachable!(),
    };
    // Lane decoders, const-folded per monomorphisation.
    let lane_l1_set = |word: u64| {
        if HAS_L3 {
            TripleSetLanes::l1_set(word)
        } else {
            PairedSetLanes::l1_set(word)
        }
    };
    let lane_l2_set = |word: u64| {
        if HAS_L3 {
            TripleSetLanes::l2_set(word)
        } else {
            PairedSetLanes::l2_set(word)
        }
    };

    let l1_hit_latency = config.l1.hit_latency;
    let l2_hit_latency = config.l2.hit_latency;
    let l3_hit_latency = config.l3.as_ref().map_or(0, |c| c.hit_latency);
    let mut l1s: Vec<CompiledCache> = (0..p)
        .map(|_| CompiledCache::new(config.l1.num_sets(), config.l1.associativity))
        .collect();
    // One L2 per cluster (`clusters == 1` is the paper's single shared L2);
    // a core probes the L2 of cluster `core_id / cores_per_cluster`.
    let mut l2s: Vec<CompiledCache> = (0..clusters)
        .map(|_| CompiledCache::new(config.l2.num_sets(), config.l2.associativity))
        .collect();
    let mut l3 = config
        .l3
        .as_ref()
        .map(|c| CompiledCache::new(c.num_sets(), c.associativity));
    let mut memory = MainMemory::new(config.memory);
    // Line-ownership directory: stores invalidate only the L1s that may
    // hold a copy (`O(sharers)`), instead of broadcasting to all `p`.  With
    // the stream's dense line ids the directory is a *flat sharer-mask
    // array indexed by line id* — one indexed load instead of the open-
    // addressing probe sequence a line-address map needs.  Bits are set on
    // every L1 allocation and only pruned by stores, so the mask is a
    // superset of the true holders (a stale bit costs one no-op
    // invalidation — metrics-identical to the broadcast).  A single core
    // has no remote copies to invalidate; past 64 cores the mask goes
    // hierarchical — a summary word over `ceil(p/64)` core words per line
    // (DESIGN.md §12) — so invalidation stays `O(sharers)` all the way to
    // `MAX_DIRECTORY_CORES`, beyond which the broadcast remains as a
    // fallback.
    let mut directory = if p == 1 {
        Directory::Single
    } else if p <= 64 {
        Directory::Flat(vec![0u64; stream.num_lines()])
    } else if p <= ccs_cache::directory::MAX_DIRECTORY_CORES {
        let stride = 1 + p.div_ceil(64);
        Directory::Hier {
            stride,
            words: vec![0u64; stream.num_lines() * stride],
        }
    } else {
        Directory::Broadcast
    };
    // One-entry MRU filter per core: the line id this core's last completed
    // access left at the MRU position of its L1 (`NO_LINE` = unknown).  A
    // read matching the filter is a guaranteed L1 hit on the MRU way — a
    // pure state no-op — so only the statistics are recorded.  Remote
    // stores clear the victimised cores' entries, keeping the guarantee
    // exact (see DESIGN.md §8 for the argument).
    const NO_LINE: u32 = u32::MAX;
    let mut mru: Vec<u32> = vec![NO_LINE; p];

    let mut cores: Vec<Core> = (0..p).map(|_| Core::new()).collect();
    let mut in_deg: Vec<u32> = (0..n as u32)
        .map(|t| dag.in_degree(TaskId(t)) as u32)
        .collect();
    let mut completed = 0usize;

    sched.init(dag, p);
    // Roots and newly-ready siblings are enabled in *reverse* sequential
    // order so deque-based schedulers, which push each enabled task on top,
    // end up with the earliest-sequential task on top (the order a work-first
    // fork-join runtime reaches them).
    let mut roots: Vec<TaskId> = dag.sources();
    roots.sort_by_key(|t| std::cmp::Reverse(dag.seq_rank(*t)));
    for r in roots {
        sched.task_enabled(r, None);
    }

    // Pending events, keyed by `(time, core)` for deterministic ordering —
    // the same min-heap discipline as the reference, but pushed/popped once
    // per *park* (a blocked miss or a lost yield race), not once per
    // micro-step, so heap traffic is orders of magnitude lower.  Idle cores
    // are tracked separately and woken on completions.
    let mut active: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(p + 1);
    let mut idle: Vec<usize> = Vec::new();

    // Dispatch as much ready work as possible at `now`.  `first` is the
    // core that just completed a task (not yet back in `idle`): it is
    // offered work before the others — the reference's dispatch
    // preference — and binary-inserted into the sorted idle list if the
    // scheduler has nothing for it.  The remaining idle cores are offered
    // work in ascending id order through one forward compaction pass.
    //
    // `idle` is kept sorted **by construction** (cores only enter through
    // the binary insert below), so there is no per-dispatch
    // `sort_unstable` and no `remove`/`insert(0, ..)` churn — O(p) array
    // work per dispatch instead of O(p²).  The sequence of `next_task`
    // calls (which drives scheduler-internal state such as steal RNGs) is
    // exactly the reference's: `first`, then the rest ascending, with the
    // `ready_count` cut-off checked before every offer — so schedules,
    // and therefore metrics, cannot move.
    #[allow(clippy::too_many_arguments)]
    fn dispatch<R: Record>(
        now: u64,
        first: Option<usize>,
        sched: &mut dyn Scheduler,
        stream: &LineStream,
        cores: &mut [Core],
        idle: &mut Vec<usize>,
        active: &mut BinaryHeap<Reverse<(u64, usize)>>,
        rec: &mut R,
    ) {
        debug_assert!(idle.windows(2).all(|w| w[0] < w[1]), "idle list unsorted");
        let mut activate = |core_id: usize, task: TaskId| {
            rec.task_dispatched(task);
            let core = &mut cores[core_id];
            core.task = Some(task);
            core.step = stream.range(task).0;
            core.phase = Phase::NextOp;
            core.time = now;
            core.task_started = now;
            active.push(Reverse((now, core_id)));
        };
        // The completing core gets first refusal; if it parks, it must
        // not be offered work again below, so its insert waits until
        // after the pass.
        let mut park_first = None;
        if let Some(f) = first {
            match if sched.ready_count() > 0 {
                sched.next_task(f)
            } else {
                None
            } {
                Some(task) => activate(f, task),
                None => park_first = Some(f),
            }
        }
        // One forward pass: assigned cores are dropped, still-idle cores
        // are compacted in place (ascending order preserved); the
        // unvisited tail after a ready-count cut-off is shifted down.
        let n_idle = idle.len();
        let mut write = 0;
        let mut read = 0;
        while read < n_idle {
            if sched.ready_count() == 0 {
                break;
            }
            let core_id = idle[read];
            read += 1;
            match sched.next_task(core_id) {
                Some(task) => activate(core_id, task),
                None => {
                    idle[write] = core_id;
                    write += 1;
                }
            }
        }
        idle.copy_within(read..n_idle, write);
        idle.truncate(write + (n_idle - read));
        if let Some(f) = park_first {
            let pos = idle.partition_point(|&c| c < f);
            idle.insert(pos, f);
        }
    }

    // Initial dispatch at time 0.
    idle.extend(0..p);
    dispatch(
        0,
        None,
        sched,
        stream,
        &mut cores,
        &mut idle,
        &mut active,
        rec,
    );

    // The reference also folds every popped event time into the makespan,
    // but a core's event times never exceed the finish time of the task it
    // is running, so max-over-finishes is the same value.
    let mut makespan = 0u64;
    // Scratch for newly enabled successors, reused across completions.
    let mut newly: Vec<TaskId> = Vec::new();

    while completed < n {
        // Pop the earliest event; the heap top after the pop is the
        // earliest event any *other* core holds.  The latter is frozen for
        // the whole inline run: other cores' times only change when they
        // are stepped, and dispatch only runs at this core's task
        // completion (which ends the run).  `(yt, yc)` = "yield to core
        // `yc` at time `yt`"; `u64::MAX`/`usize::MAX` when this core is
        // alone.
        let Reverse((now, core_id)) = active
            .pop()
            .expect("simulator deadlock: tasks remain but no core is active");
        let (yt, yc) = match active.peek() {
            Some(&Reverse((t, c))) => (t, c),
            None => (u64::MAX, usize::MAX),
        };
        debug_assert_eq!(cores[core_id].time, now);
        // Hoisted per run: the core state lives in a local (register-
        // resident, written back on exit), the task's stream window is
        // resolved once (the task cannot change mid-run), and this core's
        // L1 is split out of the slice so probes skip the per-call
        // indexing.
        let mut core = cores[core_id];
        let task_id = core.task.expect("active core without a task");
        let task_end = stream.range(task_id).1;
        let (l1s_below, rest) = l1s.split_at_mut(core_id);
        let (my_l1, l1s_above) = rest.split_first_mut().expect("core id in range");
        let my_l2 = &mut l2s[core_id / cores_per_cluster];

        // Yield check: does `(yt, yc)` sort before this core at `time`?
        macro_rules! yields {
            ($time:expr) => {
                yt < $time || (yt == $time && yc < core_id)
            };
        }
        // A lower-level hit or a returning memory fill: install the line in
        // this core's L1 and move on to the next step.  The miss already
        // allocated the line at the MRU position with the right dirty bit,
        // and this core makes no other L1 accesses while blocked, so the
        // fill is a state no-op *unless* a remote store invalidated the
        // line in flight.  For the in-flight line the directory is exact
        // (stale bits only arise from evictions, and a blocked core evicts
        // nothing), so the sharer bit decides; with one core no remote
        // store exists at all.  Only the past-`MAX_DIRECTORY_CORES`
        // broadcast fallback still has to re-probe unconditionally.  Either
        // way the line ends at the MRU position of this L1, so the filter
        // latches it.
        macro_rules! fill_and_advance {
            ($id:expr, $is_write:expr) => {
                match &mut directory {
                    Directory::Single => {}
                    Directory::Flat(dir) => {
                        let slot = &mut dir[$id as usize];
                        if *slot & (1u64 << core_id) == 0 {
                            my_l1.fill_compiled(
                                lane_l1_set(set_lane[$id as usize]),
                                line_tag($id),
                                $is_write,
                            );
                            *slot |= 1u64 << core_id;
                        }
                    }
                    Directory::Hier { stride, words } => {
                        let base = $id as usize * *stride;
                        let bit = 1u64 << (core_id % 64);
                        let word = &mut words[base + 1 + core_id / 64];
                        if *word & bit == 0 {
                            my_l1.fill_compiled(
                                lane_l1_set(set_lane[$id as usize]),
                                line_tag($id),
                                $is_write,
                            );
                            *word |= bit;
                            words[base] |= 1u64 << (core_id / 64);
                        }
                    }
                    Directory::Broadcast => {
                        my_l1.fill_compiled(
                            lane_l1_set(set_lane[$id as usize]),
                            line_tag($id),
                            $is_write,
                        );
                    }
                }
                mru[core_id] = $id;
                core.step += 1;
                core.phase = Phase::NextOp;
            };
        }

        // Step this core inline while it remains the globally earliest
        // event; yield the moment another core sorts first.  The resume
        // arms (`L2Probe`/`MemFill`) only run after such a yield — on the
        // all-inline path every phase of a reference is fused into the
        // `NextOp` arm.
        loop {
            match core.phase {
                Phase::NextOp => {
                    if core.step < task_end {
                        // One packed lane word holds both the preceding
                        // compute (charged once; zero on the trailing lines
                        // of a straddling reference) and the step, so the
                        // per-access stream traffic is a single load; the
                        // L1 probe latency is always paid.
                        let word = stream_packed[core.step];
                        core.time += LineStream::pre_of(word) as u64 + l1_hit_latency;
                        let step = LineStream::step_of(word);
                        let id = step & STEP_ID_MASK;
                        let is_write = step & STEP_WRITE_BIT != 0;
                        if !is_write && mru[core_id] == id {
                            // MRU filter: this core's last completed access
                            // left `id` at the MRU way of its L1 and no
                            // remote store invalidated it since, so the
                            // probe would be a hit that changes no cache
                            // state — record the hit and move on.
                            my_l1.record_mru_read_hit();
                            core.step += 1;
                        } else {
                            // Id-native probe: one packed lane word gives
                            // every set index, the id doubles as the u32
                            // tag — no address is ever formed.
                            let tag = line_tag(id);
                            let sets = set_lane[id as usize];
                            let l1_set = lane_l1_set(sets);
                            let hit = my_l1.access_compiled(l1_set, tag, is_write);
                            match &mut directory {
                                Directory::Single => {}
                                Directory::Flat(dir) => {
                                    let slot = &mut dir[id as usize];
                                    if !hit {
                                        // The probe allocated the line: record
                                        // the copy.  The evicted victim's bit is
                                        // left stale on purpose (see the
                                        // directory comment above).
                                        *slot |= 1u64 << core_id;
                                    }
                                    if is_write {
                                        // Write-invalidate the sharing L1s only,
                                        // dropping their MRU-filter entries for
                                        // this line.  Private L1s share one
                                        // geometry, so the victim's set index is
                                        // this core's.
                                        let mut others = *slot & !(1u64 << core_id);
                                        *slot &= 1u64 << core_id;
                                        while others != 0 {
                                            let other = others.trailing_zeros() as usize;
                                            others &= others - 1;
                                            if other < core_id {
                                                l1s_below[other].invalidate_compiled(l1_set, tag);
                                            } else {
                                                l1s_above[other - core_id - 1]
                                                    .invalidate_compiled(l1_set, tag);
                                            }
                                            if mru[other] == id {
                                                mru[other] = NO_LINE;
                                            }
                                        }
                                    }
                                }
                                Directory::Hier { stride, words } => {
                                    // The hierarchical form of the flat arm
                                    // above: the summary word steers the walk
                                    // to the non-empty core words, so a store
                                    // visits O(sharers) words regardless of p.
                                    let base = id as usize * *stride;
                                    let my_word = core_id / 64;
                                    let my_bit = 1u64 << (core_id % 64);
                                    if !hit {
                                        words[base + 1 + my_word] |= my_bit;
                                        words[base] |= 1u64 << my_word;
                                    }
                                    if is_write {
                                        let mut summary = words[base];
                                        while summary != 0 {
                                            let w = summary.trailing_zeros() as usize;
                                            summary &= summary - 1;
                                            let mut others = words[base + 1 + w];
                                            if w == my_word {
                                                others &= !my_bit;
                                            }
                                            while others != 0 {
                                                let other =
                                                    w * 64 + others.trailing_zeros() as usize;
                                                others &= others - 1;
                                                if other < core_id {
                                                    l1s_below[other]
                                                        .invalidate_compiled(l1_set, tag);
                                                } else {
                                                    l1s_above[other - core_id - 1]
                                                        .invalidate_compiled(l1_set, tag);
                                                }
                                                if mru[other] == id {
                                                    mru[other] = NO_LINE;
                                                }
                                            }
                                            words[base + 1 + w] = if w == my_word {
                                                words[base + 1 + w] & my_bit
                                            } else {
                                                0
                                            };
                                        }
                                        words[base] = if words[base + 1 + my_word] != 0 {
                                            1u64 << my_word
                                        } else {
                                            0
                                        };
                                    }
                                }
                                Directory::Broadcast => {
                                    if is_write {
                                        // Wider than the hierarchical mask:
                                        // broadcast to every other L1.
                                        for l1 in l1s_below.iter_mut().chain(l1s_above.iter_mut()) {
                                            l1.invalidate_compiled(l1_set, tag);
                                        }
                                        for (other, slot) in mru.iter_mut().enumerate() {
                                            if other != core_id && *slot == id {
                                                *slot = NO_LINE;
                                            }
                                        }
                                    }
                                }
                            }
                            if hit {
                                mru[core_id] = id;
                                core.step += 1;
                                // stay in NextOp
                            } else {
                                // L1 miss: the L2 probe resolves after the L2
                                // hit latency.  Fused fast path — run the
                                // probe (and, on a deeper miss, the L3 probe
                                // and memory fill) right now unless another
                                // core's event interleaves.
                                core.time += l2_hit_latency;
                                if yields!(core.time) {
                                    core.phase = Phase::L2Probe { id, is_write };
                                    active.push(Reverse((core.time, core_id)));
                                    cores[core_id] = core;
                                    break;
                                }
                                let l2_hit =
                                    my_l2.access_compiled(lane_l2_set(sets), tag, is_write);
                                rec.l1_miss(core.step, l2_hit);
                                if l2_hit {
                                    fill_and_advance!(id, is_write);
                                } else if HAS_L3 {
                                    core.time += l3_hit_latency;
                                    if yields!(core.time) {
                                        core.phase = Phase::L3Probe { id, is_write };
                                        active.push(Reverse((core.time, core_id)));
                                        cores[core_id] = core;
                                        break;
                                    }
                                    let l3_hit = l3.as_mut().expect("HAS_L3").access_compiled(
                                        TripleSetLanes::l3_set(sets),
                                        tag,
                                        is_write,
                                    );
                                    if l3_hit {
                                        fill_and_advance!(id, is_write);
                                    } else {
                                        core.time = memory.request(core.time);
                                        if yields!(core.time) {
                                            core.phase = Phase::MemFill { id, is_write };
                                            active.push(Reverse((core.time, core_id)));
                                            cores[core_id] = core;
                                            break;
                                        }
                                        fill_and_advance!(id, is_write);
                                    }
                                } else {
                                    core.time = memory.request(core.time);
                                    if yields!(core.time) {
                                        core.phase = Phase::MemFill { id, is_write };
                                        active.push(Reverse((core.time, core_id)));
                                        cores[core_id] = core;
                                        break;
                                    }
                                    fill_and_advance!(id, is_write);
                                }
                            }
                        }
                    } else {
                        // Task body finished: trailing compute, then
                        // completion.
                        core.time += comp.task(task_id).post_compute;
                        let finish = core.time;
                        makespan = makespan.max(finish);
                        core.busy += finish - core.task_started;
                        core.task = None;
                        cores[core_id] = core;
                        completed += 1;
                        // Enable newly ready successors in reverse sequential
                        // order (see the root-enabling comment above).
                        newly.clear();
                        for &s in dag.successors(task_id) {
                            in_deg[s.index()] -= 1;
                            if in_deg[s.index()] == 0 {
                                newly.push(s);
                            }
                        }
                        newly.sort_by_key(|t| std::cmp::Reverse(dag.seq_rank(*t)));
                        for &s in &newly {
                            sched.task_enabled(s, Some(core_id));
                        }
                        // This core is handed to dispatch as `first`: it
                        // gets the work preference and parks into the
                        // sorted idle list only if nothing fits.
                        dispatch(
                            finish,
                            Some(core_id),
                            sched,
                            stream,
                            &mut cores,
                            &mut idle,
                            &mut active,
                            rec,
                        );
                        // The core went idle (any new task it was handed is
                        // a fresh pending event): leave the inline loop.
                        break;
                    }
                }
                Phase::L2Probe { id, is_write } => {
                    let l2_set = lane_l2_set(set_lane[id as usize]);
                    let l2_hit = my_l2.access_compiled(l2_set, line_tag(id), is_write);
                    rec.l1_miss(core.step, l2_hit);
                    if l2_hit {
                        fill_and_advance!(id, is_write);
                    } else if HAS_L3 {
                        core.time += l3_hit_latency;
                        core.phase = Phase::L3Probe { id, is_write };
                    } else {
                        core.time = memory.request(core.time);
                        core.phase = Phase::MemFill { id, is_write };
                    }
                }
                Phase::L3Probe { id, is_write } => {
                    let l3_set = TripleSetLanes::l3_set(set_lane[id as usize]);
                    let l3_hit = l3.as_mut().expect("HAS_L3").access_compiled(
                        l3_set,
                        line_tag(id),
                        is_write,
                    );
                    if l3_hit {
                        fill_and_advance!(id, is_write);
                    } else {
                        core.time = memory.request(core.time);
                        core.phase = Phase::MemFill { id, is_write };
                    }
                }
                Phase::MemFill { id, is_write } => {
                    fill_and_advance!(id, is_write);
                }
            }

            // The core wants to continue at its (possibly advanced) local
            // time.  If the earliest other pending event now sorts first,
            // yield to it; otherwise this core is still the globally
            // earliest event and steps again inline.
            if yields!(core.time) {
                active.push(Reverse((core.time, core_id)));
                cores[core_id] = core;
                break;
            }
        }
    }

    let mut l1_total = ccs_cache::CacheStats::default();
    for l1 in &l1s {
        l1_total.merge(l1.stats());
    }
    let mut l2_total = ccs_cache::CacheStats::default();
    for l2 in &l2s {
        l2_total.merge(l2.stats());
    }

    SimResult {
        config_name: config.name.clone(),
        scheduler: sched.name().to_string(),
        num_cores: p,
        clusters: config.clusters,
        cycles: makespan,
        instructions: comp.total_work(),
        l1: l1_total,
        l2: l2_total,
        l3: l3.map(|c| *c.stats()).unwrap_or_default(),
        memory: *memory.stats(),
        bandwidth_utilization: memory.utilization(makespan),
        core_busy: cores.iter().map(|c| c.busy).collect(),
        tasks: n,
        l2_line_size: line_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_dag::{ComputationBuilder, GroupMeta};
    use ccs_sched::SchedulerKind;

    /// A computation of `width` strands each streaming over its own
    /// `bytes_per_task`-byte array, followed by a join strand.
    fn disjoint_streams(width: usize, bytes_per_task: u64) -> Computation {
        let mut b = ComputationBuilder::new(128);
        let mut space = ccs_dag::AddressSpace::new();
        let leaves: Vec<_> = (0..width)
            .map(|_| {
                let region = space.alloc(bytes_per_task);
                b.strand_with(|t| {
                    t.read_range(region.base, region.bytes, 3);
                })
            })
            .collect();
        let par = b.par(leaves, GroupMeta::labeled("streams"));
        let join = b.strand_with(|t| {
            t.compute(10);
        });
        let root = b.seq(vec![par, join], GroupMeta::labeled("root"));
        b.finish(root)
    }

    /// A computation where every strand re-reads the same shared array.
    fn shared_streams(width: usize, bytes: u64) -> Computation {
        let mut b = ComputationBuilder::new(128);
        let mut space = ccs_dag::AddressSpace::new();
        let region = space.alloc(bytes);
        let leaves: Vec<_> = (0..width)
            .map(|_| {
                b.strand_with(|t| {
                    t.read_range(region.base, region.bytes, 3);
                })
            })
            .collect();
        let par = b.par(leaves, GroupMeta::labeled("shared"));
        let comp_root = b.seq(vec![par], GroupMeta::labeled("root"));
        b.finish(comp_root)
    }

    /// A computation whose strands interleave writes to a shared array with
    /// private reads (exercises the invalidation/directory path).
    fn shared_writers(width: usize, bytes: u64) -> Computation {
        let mut b = ComputationBuilder::new(128);
        let mut space = ccs_dag::AddressSpace::new();
        let region = space.alloc(bytes);
        let leaves: Vec<_> = (0..width)
            .map(|_| {
                let private = space.alloc(bytes);
                b.strand_with(|t| {
                    t.read_range(region.base, region.bytes, 2);
                    t.write_range(region.base, region.bytes / 2, 2);
                    t.read_range(private.base, private.bytes, 2);
                    t.write_range(region.base + region.bytes / 2, region.bytes / 2, 2);
                })
            })
            .collect();
        let par = b.par(leaves, GroupMeta::labeled("writers"));
        let comp_root = b.seq(vec![par], GroupMeta::labeled("root"));
        b.finish(comp_root)
    }

    fn tiny_config(cores: usize, l2_kb: u64) -> CmpConfig {
        let mut cfg = CmpConfig::default_with_cores(if cores <= 1 { 1 } else { 16 }).unwrap();
        cfg.num_cores = cores;
        cfg.name = format!("tiny-{cores}");
        cfg.l1 = ccs_cache::CacheConfig::new(4 * 1024, 128, 4, 1);
        cfg.l2 = ccs_cache::CacheConfig::new(l2_kb * 1024, 128, 16, 13);
        cfg
    }

    #[test]
    fn single_core_executes_all_instructions() {
        let comp = disjoint_streams(4, 16 * 1024);
        let cfg = tiny_config(1, 64);
        let r = simulate(&comp, &cfg, SchedulerKind::Pdf);
        assert_eq!(r.instructions, comp.total_work());
        assert_eq!(r.tasks, comp.num_tasks());
        // Every cycle accounted: cycles >= instructions (1 IPC peak).
        assert!(r.cycles >= r.instructions);
        assert!(r.l2.misses > 0, "cold misses must reach memory");
        assert_eq!(r.l2.misses, r.memory.requests);
    }

    #[test]
    fn parallel_run_is_faster_but_not_superlinear() {
        let comp = disjoint_streams(8, 8 * 1024);
        let seq = simulate(&comp, &tiny_config(1, 512), SchedulerKind::Pdf);
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
            let par = simulate(&comp, &tiny_config(4, 512), kind);
            let speedup = par.speedup_over(&seq);
            assert!(speedup > 1.5, "{kind}: speedup {speedup}");
            assert!(speedup < 4.5, "{kind}: speedup {speedup} super-linear");
        }
    }

    #[test]
    fn schedulers_execute_same_work_with_same_total_references() {
        let comp = disjoint_streams(6, 4 * 1024);
        let cfg = tiny_config(3, 128);
        let pdf = simulate(&comp, &cfg, SchedulerKind::Pdf);
        let ws = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
        assert_eq!(pdf.instructions, ws.instructions);
        assert_eq!(pdf.l1.accesses, ws.l1.accesses);
        assert_eq!(pdf.tasks, ws.tasks);
    }

    #[test]
    fn shared_working_set_hits_in_l2() {
        // 8 tasks re-reading one 32 KB array on a 256 KB L2: after the cold
        // pass everything hits in L2 (or L1).
        let comp = shared_streams(8, 32 * 1024);
        let cfg = tiny_config(4, 256);
        let r = simulate(&comp, &cfg, SchedulerKind::Pdf);
        let cold = 32 * 1024 / 128;
        assert_eq!(r.l2.misses, cold, "only compulsory misses expected");
    }

    #[test]
    fn disjoint_working_sets_thrash_small_l2() {
        // 8 tasks × 32 KB each = 256 KB aggregate on a 64 KB L2: running them
        // in parallel with disjoint working sets must miss far more than the
        // shared case.
        let comp = disjoint_streams(8, 32 * 1024);
        let cfg = tiny_config(4, 64);
        let r = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
        let cold = 8 * 32 * 1024 / 128;
        assert!(r.l2.misses >= cold, "at least all compulsory misses");
    }

    #[test]
    fn memory_bandwidth_utilization_is_bounded() {
        let comp = disjoint_streams(8, 16 * 1024);
        let cfg = tiny_config(8, 64);
        let r = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
        assert!(r.bandwidth_utilization > 0.0);
        assert!(r.bandwidth_utilization <= 1.0);
        assert!(r.core_utilization() <= 1.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let comp = disjoint_streams(5, 8 * 1024);
        let cfg = tiny_config(3, 128);
        for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
            let a = simulate(&comp, &cfg, kind);
            let b = simulate(&comp, &cfg, kind);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.l2.misses, b.l2.misses);
        }
    }

    #[test]
    fn zero_reference_tasks_complete() {
        let mut b = ComputationBuilder::new(128);
        let l = b.strand_with(|t| {
            t.compute(100);
        });
        let r2 = b.nop();
        let p = b.par(vec![l, r2], GroupMeta::default());
        let comp = b.finish(p);
        let cfg = tiny_config(2, 64);
        let r = simulate(&comp, &cfg, SchedulerKind::Pdf);
        assert_eq!(r.tasks, 2);
        assert_eq!(r.cycles, 100);
    }

    #[test]
    fn more_cores_than_tasks_is_fine() {
        let comp = disjoint_streams(2, 4 * 1024);
        let cfg = tiny_config(8, 128);
        let r = simulate(&comp, &cfg, SchedulerKind::WorkStealing);
        assert_eq!(r.tasks, 3);
        assert!(r.cycles > 0);
    }

    #[test]
    fn engines_agree_on_stream_scenarios() {
        let scenarios: Vec<(&str, Computation)> = vec![
            ("disjoint", disjoint_streams(6, 8 * 1024)),
            ("shared", shared_streams(6, 16 * 1024)),
            ("writers", shared_writers(6, 8 * 1024)),
        ];
        for (name, comp) in &scenarios {
            for cores in [1usize, 2, 4] {
                for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
                    let cfg = tiny_config(cores, 128);
                    let fast = simulate_engine(comp, &cfg, kind, SimEngine::EventDriven);
                    let slow = simulate_engine(comp, &cfg, kind, SimEngine::Reference);
                    assert_eq!(fast, slow, "{name}/{kind}/{cores} cores");
                }
            }
        }
    }

    /// Dispatch-churn pin for the compacting idle-list dispatch: hundreds
    /// of short tasks over more cores than parallelism, so cores park and
    /// wake constantly and the scheduler sees a long sequence of
    /// `next_task` offers.  The results must be deterministic across
    /// repeats *and* byte-identical to the reference engine — which
    /// retains the seed's sort + remove/insert dispatch verbatim — for
    /// both schedulers and a seeded random-victim work stealer (whose RNG
    /// consumption pins the exact offer order, not just the outcome).
    #[test]
    fn dispatch_rework_preserves_offer_order_and_results() {
        let mut b = ComputationBuilder::new(128);
        let mut space = ccs_dag::AddressSpace::new();
        let shared = space.alloc(8 * 1024);
        let leaves: Vec<_> = (0..96)
            .map(|i| {
                b.strand_with(|t| {
                    t.compute(i % 7 + 1).read(shared.base + (i % 16) * 128, 8);
                    if i % 5 == 0 {
                        t.write(shared.base + (i % 16) * 128, 8);
                    }
                })
            })
            .collect();
        let par = b.par(leaves, GroupMeta::labeled("churn"));
        let comp = b.finish(par);
        for cores in [3usize, 8, 16] {
            let cfg = tiny_config(cores, 128);
            for kind in [
                SchedulerKind::Pdf,
                SchedulerKind::WorkStealing,
                SchedulerKind::WorkStealingRandom(9),
            ] {
                let fast = simulate_engine(&comp, &cfg, kind, SimEngine::EventDriven);
                let again = simulate_engine(&comp, &cfg, kind, SimEngine::EventDriven);
                assert_eq!(fast, again, "{kind} / {cores} cores must be deterministic");
                let slow = simulate_engine(&comp, &cfg, kind, SimEngine::Reference);
                assert_eq!(fast, slow, "{kind} / {cores} cores vs reference");
            }
        }
    }

    /// Three-level and clustered topologies: the event engine's packed
    /// triple lanes, per-cluster L2s and hierarchical sharer masks (96
    /// cores exercises the multi-word `Directory::Hier` arm) must stay
    /// byte-identical to the reference cycle-stepper.
    #[test]
    fn engines_agree_with_l3_clusters_and_hier_masks() {
        let scenarios: Vec<(&str, Computation)> = vec![
            ("shared", shared_streams(12, 8 * 1024)),
            ("writers", shared_writers(12, 4 * 1024)),
        ];
        for (name, comp) in &scenarios {
            for (cores, clusters) in [(4usize, 2usize), (8, 4), (96, 4)] {
                for kind in [SchedulerKind::Pdf, SchedulerKind::WorkStealing] {
                    let cfg = tiny_config(cores, 64).clustered(clusters).with_l3_mb(1);
                    let fast = simulate_engine(comp, &cfg, kind, SimEngine::EventDriven);
                    let slow = simulate_engine(comp, &cfg, kind, SimEngine::Reference);
                    assert_eq!(
                        fast, slow,
                        "{name}/{kind}/{cores} cores/{clusters} clusters"
                    );
                }
            }
        }
    }

    #[test]
    fn l3_absorbs_l2_misses() {
        // 8 tasks re-reading one 32 KB array: a 16 KB L2 thrashes, the 1 MB
        // L3 behind it catches the reuse.
        let comp = shared_streams(8, 32 * 1024);
        let cfg = tiny_config(4, 16).with_l3_mb(1);
        let r = simulate(&comp, &cfg, SchedulerKind::Pdf);
        assert!(r.l3.accesses > 0);
        assert_eq!(r.l3.accesses, r.l2.misses, "every L2 miss probes the L3");
        assert!(r.l3.misses < r.l3.accesses, "warm reuse hits in the L3");
        assert_eq!(r.l3.misses, r.memory.requests, "only L3 misses go off-chip");
        assert!(r.l3_mpki() > 0.0);
        let flat = simulate(&comp, &tiny_config(4, 16), SchedulerKind::Pdf);
        assert_eq!(flat.l3, ccs_cache::CacheStats::default());
        assert!(
            flat.memory.requests > r.memory.requests,
            "the L3 filters traffic"
        );
    }

    #[test]
    fn clustered_l2_misses_more_than_one_shared_l2() {
        // 8 tasks sharing one 32 KB array: with one shared 64 KB L2 only the
        // cold pass misses; split into 4×16 KB cluster slices, each cluster
        // re-fetches the array for itself.
        let comp = shared_streams(8, 32 * 1024);
        let shared = simulate(&comp, &tiny_config(8, 64), SchedulerKind::Pdf);
        let clustered = simulate(&comp, &tiny_config(8, 64).clustered(4), SchedulerKind::Pdf);
        assert_eq!(shared.instructions, clustered.instructions);
        assert!(
            clustered.l2.misses > shared.l2.misses,
            "partitioned slices lose constructive sharing: {} vs {}",
            clustered.l2.misses,
            shared.l2.misses
        );
    }

    #[test]
    fn engine_parses_and_prints() {
        assert_eq!("event".parse::<SimEngine>(), Ok(SimEngine::EventDriven));
        assert_eq!("reference".parse::<SimEngine>(), Ok(SimEngine::Reference));
        assert_eq!("batch".parse::<SimEngine>(), Ok(SimEngine::Batch));
        assert_eq!(SimEngine::default(), SimEngine::EventDriven);
        assert_eq!(SimEngine::Reference.to_string(), "reference");
        assert_eq!(SimEngine::Batch.to_string(), "batch");
        assert_eq!(SimEngine::Batch.canonical(), SimEngine::EventDriven);
        assert_eq!(SimEngine::Reference.canonical(), SimEngine::Reference);
        assert!("quantum".parse::<SimEngine>().is_err());
    }

    /// A single-config run through `SimEngine::Batch` is exactly the event
    /// engine (the batch grouping lives in the experiment layer).
    #[test]
    fn batch_engine_on_one_config_is_the_event_engine() {
        let comp = shared_writers(6, 8 * 1024);
        let cfg = tiny_config(4, 128);
        let event = simulate_engine(&comp, &cfg, SchedulerKind::Pdf, SimEngine::EventDriven);
        let batch = simulate_engine(&comp, &cfg, SchedulerKind::Pdf, SimEngine::Batch);
        assert_eq!(event, batch);
    }
}
